//! Synchronous vs event-driven stepping on the duty-cycle world.
//!
//! The paper's devices decide on their own cadence; the engine's
//! [`step_events`](smartexp3_engine::FleetEngine::step_events) path honours
//! that by materialising only the timestamps at which anything happens.
//! This experiment runs the scenario library's [`duty_cycle`] world twice
//! from the same root seed — once slot-synchronously through `run_env`
//! (which ignores cadences: every session decides every slot) and once
//! event-driven through `run_until` — and reports the decision counts and
//! throughput of both, plus the event path's wake-to-decision latency
//! percentiles (p50/p95/p99).
//!
//! It also re-runs a **uniform-cadence** copy of the world both ways and
//! checks the trajectories are bit-identical — the engine's correctness
//! anchor, surfaced as a reproducible CLI check.

use crate::config::Scale;
use smartexp3_core::PolicyKind;
use smartexp3_env::{duty_cycle, DutyCycleConfig, Scenario};
use smartexp3_telemetry::{JsonlSink, LatencyStats, TelemetrySink};
use std::fmt;
use std::path::Path;
use std::time::Instant;

/// Sessions in the default comparison.
pub const DEFAULT_SESSIONS: usize = 2000;

/// One timed run of the duty-cycle world under one stepping mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeMeasurement {
    /// Wall-clock seconds for the whole run.
    pub elapsed_s: f64,
    /// Decisions taken across the run.
    pub decisions: u64,
    /// Fleet-wide mean per-decision gain.
    pub mean_gain: f64,
}

impl ModeMeasurement {
    /// Decisions per wall-clock second.
    #[must_use]
    pub fn decisions_per_sec(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.decisions as f64 / self.elapsed_s
        } else {
            f64::INFINITY
        }
    }
}

/// The sync-vs-event comparison on one duty-cycle world.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventsResult {
    /// Sessions in the world.
    pub sessions: usize,
    /// Slots (the event run's horizon; the sync run steps the same count).
    pub slots: usize,
    /// The slot-synchronous run (cadences ignored).
    pub sync: ModeMeasurement,
    /// The event-driven run (cohorts on the 1/2/4/8 cadence mix).
    pub events: ModeMeasurement,
    /// Wake-to-decision latency of the event run's final cohort.
    pub latency: Option<LatencyStats>,
    /// Whether a uniform-cadence copy of the world produced bit-identical
    /// trajectories under both stepping modes (the correctness anchor).
    pub uniform_identical: bool,
}

fn build(scale: &Scale, sessions: usize, cadences: Vec<usize>) -> Scenario {
    duty_cycle(
        sessions,
        PolicyKind::SmartExp3,
        scale.fleet_config(scale.seed(0)),
        DutyCycleConfig {
            cadences,
            burst_period: (scale.slots / 4).max(2),
            horizon_slots: scale.slots,
            ..DutyCycleConfig::default()
        },
    )
    .expect("static scenario construction cannot fail")
}

fn measure(
    mut scenario: Scenario,
    slots: usize,
    event_driven: bool,
) -> (ModeMeasurement, Option<LatencyStats>) {
    let start = Instant::now();
    if event_driven {
        scenario
            .fleet
            .run_until(scenario.environment.as_mut(), slots);
    } else {
        scenario.run(slots);
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    let metrics = scenario.fleet.metrics();
    let measurement = ModeMeasurement {
        elapsed_s,
        decisions: metrics.decisions,
        mean_gain: metrics
            .kind(PolicyKind::SmartExp3)
            .map_or(0.0, |m| m.mean_gain()),
    };
    (measurement, scenario.fleet.last_wake_latency())
}

/// Fingerprint with scheduling state stripped — sync runs never prime the
/// wake queue, so the comparison covers session states, RNG streams and the
/// clock.
fn fingerprint(scenario: &Scenario) -> String {
    let mut snapshot = scenario.fleet.snapshot().expect("fleets snapshot");
    snapshot.wake_queue = None;
    snapshot.to_json().expect("snapshots serialize")
}

/// Runs the comparison on a world of `sessions` sessions over `scale.slots`
/// slots.
#[must_use]
pub fn run_with(scale: &Scale, sessions: usize) -> EventsResult {
    let (sync, _) = measure(build(scale, sessions, vec![1, 2, 4, 8]), scale.slots, false);
    let (events, latency) = measure(build(scale, sessions, vec![1, 2, 4, 8]), scale.slots, true);

    // The correctness anchor as a CLI-visible check: uniform cadence 1 must
    // make the two modes bit-identical.
    let mut uniform_sync = build(scale, sessions, vec![1]);
    uniform_sync.run(scale.slots);
    let mut uniform_events = build(scale, sessions, vec![1]);
    uniform_events
        .fleet
        .run_until(uniform_events.environment.as_mut(), scale.slots);
    let uniform_identical = fingerprint(&uniform_sync) == fingerprint(&uniform_events);

    EventsResult {
        sessions,
        slots: scale.slots,
        sync,
        events,
        latency,
        uniform_identical,
    }
}

/// Streams per-slot telemetry from an event-driven duty-cycle run to `path`
/// (JSONL, one record per wake timestamp). Unlike the slot-synchronous
/// export, every record carries wake-to-decision latency percentiles —
/// the series `telemetry_dash` renders in its latency columns.
///
/// # Errors
/// Returns the underlying I/O error if `path` cannot be created or written.
pub fn export_telemetry(scale: &Scale, path: &Path) -> std::io::Result<u64> {
    let mut scenario = build(scale, DEFAULT_SESSIONS, vec![1, 2, 4, 8]);
    assert!(scenario.enable_telemetry());
    let mut sink = JsonlSink::create(path)?;
    scenario
        .fleet
        .run_until_with_sink(scenario.environment.as_mut(), scale.slots, &mut sink);
    TelemetrySink::flush(&mut sink)?;
    sink.finish()
}

/// Runs the default comparison: [`DEFAULT_SESSIONS`] sessions.
#[must_use]
pub fn run(scale: &Scale) -> EventsResult {
    run_with(scale, DEFAULT_SESSIONS)
}

impl fmt::Display for EventsResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Event-driven stepping — duty-cycle world, {} sessions, {} slots, cadences 1/2/4/8",
            self.sessions, self.slots
        )?;
        for (label, m) in [("sync", &self.sync), ("events", &self.events)] {
            writeln!(
                f,
                "{label:<8} {:>12.0} decisions/s ({} decisions in {:.3} s), mean gain {:.4}",
                m.decisions_per_sec(),
                m.decisions,
                m.elapsed_s,
                m.mean_gain
            )?;
        }
        match &self.latency {
            Some(latency) => writeln!(
                f,
                "wake-to-decision latency (last cohort, {} decisions): p50 {:.1} µs, p95 {:.1} µs, p99 {:.1} µs",
                latency.count,
                latency.p50_s * 1e6,
                latency.p95_s * 1e6,
                latency.p99_s * 1e6
            )?,
            None => writeln!(f, "wake-to-decision latency: no cohort recorded")?,
        }
        writeln!(
            f,
            "uniform-cadence bit-identity: {}",
            if self.uniform_identical {
                "PASS"
            } else {
                "FAIL"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_mode_decides_less_and_stays_bit_identical_at_uniform_cadence() {
        let scale = Scale::quick().with_slots(40);
        let result = run_with(&scale, 120);
        // Sync ignores cadences: every session decides every slot. The
        // event path wakes 1/2/4/8 cohorts: 40·(1 + 1/2 + 1/4 + 1/8)/4 of
        // that.
        assert_eq!(result.sync.decisions, 40 * 120);
        assert!(result.events.decisions < result.sync.decisions);
        assert_eq!(
            result.events.decisions,
            40 * 30 + 20 * 30 + 10 * 30 + 5 * 30
        );
        assert!(result.uniform_identical, "correctness anchor violated");
        assert!(result.latency.is_some());
        let text = result.to_string();
        assert!(text.contains("Event-driven stepping"));
        assert!(text.contains("PASS"));
    }
}
