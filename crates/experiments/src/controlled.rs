//! §VII-A controlled (testbed) experiments — Figures 13–15 and Table VII.
//!
//! The real testbed (3 WiFi APs, 14 Raspberry-Pi clients) is emulated with the
//! simulator's noisy, unequal bandwidth sharing (see `netsim::testbed`), which
//! reproduces the phenomena the paper attributes to the real world: noisier
//! gain estimates, more resets and unequal per-device shares.

use crate::config::Scale;
use crate::report::{cell2, format_series, format_table};
use crate::runner::{average_series, downsample, run_many};
use crate::settings::{controlled_simulation, mixed_simulation};
use congestion_game::standard_deviation;
use congestion_game::{median, optimal_distance_from_average_bit_rate, ResourceSelectionGame};
use netsim::testbed::{testbed_networks, TESTBED_DEVICES};
use netsim::{SharingModel, SimulationConfig};
use smartexp3_core::PolicyKind;
use std::fmt;

/// Which controlled experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlledScenario {
    /// Figure 13 + Table VII: all 14 devices present throughout.
    Static,
    /// Figure 14: 9 of the 14 devices leave halfway through (slot 240 of 480).
    DevicesLeave,
    /// Figure 15: 7 devices run Smart EXP3 and 7 run Greedy.
    Mixed,
}

impl ControlledScenario {
    /// Display label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ControlledScenario::Static => "static testbed (Fig. 13, Table VII)",
            ControlledScenario::DevicesLeave => "dynamic testbed, 9 devices leave (Fig. 14)",
            ControlledScenario::Mixed => "7 Smart EXP3 + 7 Greedy (Fig. 15)",
        }
    }
}

/// Result of one controlled-experiment scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlledResult {
    /// The scenario.
    pub scenario: ControlledScenario,
    /// Per-algorithm averaged Definition-4 distance series
    /// (distance from the average bit rate available, %).
    pub curves: Vec<(PolicyKind, Vec<f64>)>,
    /// The optimal (Nash-equilibrium) Definition-4 distance.
    pub optimal_distance: f64,
    /// Table VII: per-algorithm (median download % of total possible,
    /// std dev of the per-device download %).
    pub table7: Vec<(PolicyKind, f64, f64)>,
}

impl ControlledResult {
    /// Mean Definition-4 distance of `kind` over the last quarter of the run.
    #[must_use]
    pub fn tail_distance(&self, kind: PolicyKind) -> Option<f64> {
        let (_, series) = self.curves.iter().find(|(k, _)| *k == kind)?;
        let n = series.len();
        if n == 0 {
            return Some(0.0);
        }
        let from = n - n / 4 - 1;
        Some(series[from..].iter().sum::<f64>() / (n - from) as f64)
    }
}

/// Runs one controlled-experiment scenario at the paper's 480-slot length
/// scaled by `scale.slots / 1200` (so the default scale keeps the 2-hour
/// proportion of the 5-hour simulations).
#[must_use]
pub fn run(scale: &Scale, scenario: ControlledScenario) -> ControlledResult {
    let slots = (scale.slots * 480 / 1200).max(60);
    let game = ResourceSelectionGame::new(
        testbed_networks()
            .iter()
            .map(|n| (n.id, n.bandwidth_mbps))
            .collect::<Vec<_>>(),
    );
    let optimal_distance = optimal_distance_from_average_bit_rate(&game, TESTBED_DEVICES);
    // Total volume the testbed could deliver over the run (megabits), used by
    // Table VII to express downloads as percentages.
    let total_possible_megabits = game.aggregate_rate() * slots as f64 * 15.0;

    let algorithms = [PolicyKind::SmartExp3, PolicyKind::Greedy];
    let mut curves = Vec::new();
    let mut table7 = Vec::new();

    match scenario {
        ControlledScenario::Static | ControlledScenario::DevicesLeave => {
            let leave_after = match scenario {
                ControlledScenario::DevicesLeave => Some(slots / 2),
                _ => None,
            };
            for kind in algorithms {
                let runs: Vec<(Vec<f64>, Vec<f64>)> = run_many(scale, |seed| {
                    let simulation = controlled_simulation(kind, slots, leave_after)
                        .expect("testbed scenario construction cannot fail");
                    let result = simulation.run(seed);
                    let percents: Vec<f64> = result
                        .devices
                        .iter()
                        .map(|d| d.download_megabits / total_possible_megabits * 100.0)
                        .collect();
                    (result.distance_from_average, percents)
                });
                let series: Vec<Vec<f64>> = runs.iter().map(|(s, _)| s.clone()).collect();
                curves.push((kind, average_series(&series)));
                let medians: Vec<f64> = runs.iter().map(|(_, p)| median(p)).collect();
                let stds: Vec<f64> = runs.iter().map(|(_, p)| standard_deviation(p)).collect();
                table7.push((kind, mean(&medians), mean(&stds)));
            }
        }
        ControlledScenario::Mixed => {
            // One simulation contains both populations; the Definition-4
            // series is computed per population from the kept selections.
            let runs: Vec<(Vec<f64>, Vec<f64>)> = run_many(scale, |seed| {
                let (simulation, kinds) = mixed_simulation(
                    testbed_networks(),
                    &[(PolicyKind::SmartExp3, 7), (PolicyKind::Greedy, 7)],
                    SimulationConfig {
                        total_slots: slots,
                        sharing: SharingModel::testbed(),
                        keep_selections: true,
                        ..SimulationConfig::default()
                    },
                )
                .expect("mixed testbed scenario construction cannot fail");
                let result = simulation.run(seed);
                let selections = result.selections.as_ref().expect("selections were kept");
                let mut smart = Vec::new();
                let mut greedy = Vec::new();
                for slot_records in selections {
                    for (target, kind) in [
                        (&mut smart, PolicyKind::SmartExp3),
                        (&mut greedy, PolicyKind::Greedy),
                    ] {
                        let rates: Vec<f64> = slot_records
                            .iter()
                            .filter(|r| kinds.get(r.device.0 as usize) == Some(&kind))
                            .map(|r| r.rate_mbps)
                            .collect();
                        // Fair share computed against the whole population.
                        let fair = game.aggregate_rate() / TESTBED_DEVICES as f64;
                        let distance = if rates.is_empty() {
                            0.0
                        } else {
                            rates
                                .iter()
                                .map(|&g| (fair - g).max(0.0) * 100.0 / fair)
                                .sum::<f64>()
                                / rates.len() as f64
                        };
                        target.push(distance);
                    }
                }
                (smart, greedy)
            });
            let smart_series: Vec<Vec<f64>> = runs.iter().map(|(s, _)| s.clone()).collect();
            let greedy_series: Vec<Vec<f64>> = runs.iter().map(|(_, g)| g.clone()).collect();
            curves.push((PolicyKind::SmartExp3, average_series(&smart_series)));
            curves.push((PolicyKind::Greedy, average_series(&greedy_series)));
        }
    }

    ControlledResult {
        scenario,
        curves,
        optimal_distance,
        table7,
    }
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

impl fmt::Display for ControlledResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bucket = self
            .curves
            .first()
            .map(|(_, s)| (s.len() / 12).max(1))
            .unwrap_or(1);
        let mut series: Vec<(String, Vec<f64>)> = self
            .curves
            .iter()
            .map(|(kind, s)| (kind.label().to_string(), downsample(s, bucket)))
            .collect();
        let length = series.first().map(|(_, s)| s.len()).unwrap_or(0);
        series.push(("Optimal".to_string(), vec![self.optimal_distance; length]));
        f.write_str(&format_series(
            &format!(
                "Figures 13-15 — distance from average bit rate available (%), {}",
                self.scenario.label()
            ),
            bucket,
            &series,
        ))?;
        if !self.table7.is_empty() {
            let rows: Vec<Vec<String>> = self
                .table7
                .iter()
                .map(|(kind, median_pct, std_pct)| {
                    vec![
                        kind.label().to_string(),
                        cell2(*median_pct),
                        cell2(*std_pct),
                    ]
                })
                .collect();
            f.write_str(&format_table(
                "Table VII — per-device cumulative download (% of total possible)",
                &["algorithm", "median %", "std dev %"],
                &rows,
            ))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_testbed_produces_table7_and_curves() {
        let scale = Scale::quick().with_runs(1).with_slots(300);
        let result = run(&scale, ControlledScenario::Static);
        assert_eq!(result.curves.len(), 2);
        assert_eq!(result.table7.len(), 2);
        let (_, smart_median, _) = result.table7[0];
        // With 14 devices sharing 33 Mbps, each device's fair share is ~7.1 %.
        assert!(
            smart_median > 2.0 && smart_median < 10.0,
            "median % = {smart_median}"
        );
        assert!(result.optimal_distance >= 0.0);
        assert!(result.to_string().contains("Table VII"));
    }

    #[test]
    fn mixed_testbed_tracks_both_populations() {
        let scale = Scale::quick().with_runs(1).with_slots(300);
        let result = run(&scale, ControlledScenario::Mixed);
        assert_eq!(result.curves.len(), 2);
        assert!(result.tail_distance(PolicyKind::SmartExp3).is_some());
        assert!(result.tail_distance(PolicyKind::Greedy).is_some());
    }
}
