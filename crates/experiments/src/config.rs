//! Common knobs shared by every experiment: how many repetitions, how many
//! slots, how many worker threads, which base seed.

use serde::{Deserialize, Serialize};
use smartexp3_engine::FleetConfig;

/// Scale of an experiment.
///
/// The paper's evaluation uses 500 runs of 1200 slots (5 simulated hours),
/// which takes a while on a laptop. The default here is a reduced scale that
/// preserves the qualitative results; [`Scale::paper`] reproduces the paper's
/// numbers of runs and slots exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scale {
    /// Number of independent runs to aggregate over.
    pub runs: usize,
    /// Number of time slots per run.
    pub slots: usize,
    /// Worker threads used to fan runs out (1 = sequential).
    pub threads: usize,
    /// Base seed; run `i` uses seed `base_seed + i`.
    pub base_seed: u64,
}

impl Scale {
    /// The paper's scale: 500 runs × 1200 slots.
    #[must_use]
    pub fn paper() -> Self {
        Scale {
            runs: 500,
            slots: 1200,
            threads: default_threads(),
            base_seed: 1,
        }
    }

    /// A quick scale for tests and smoke runs.
    #[must_use]
    pub fn quick() -> Self {
        Scale {
            runs: 5,
            slots: 300,
            threads: 1,
            base_seed: 1,
        }
    }

    /// Overrides the number of runs.
    #[must_use]
    pub fn with_runs(mut self, runs: usize) -> Self {
        self.runs = runs.max(1);
        self
    }

    /// Overrides the number of slots.
    #[must_use]
    pub fn with_slots(mut self, slots: usize) -> Self {
        self.slots = slots.max(1);
        self
    }

    /// Overrides the number of worker threads.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The seed of run `index`.
    #[must_use]
    pub fn seed(&self, index: usize) -> u64 {
        self.base_seed.wrapping_add(index as u64)
    }

    /// The engine configuration of one run's fleet, seeded with `root_seed`.
    ///
    /// Single-run experiments hand this scale's worker threads to the
    /// engine's parallelism override, so `repro <exp> --runs 1 --threads N`
    /// produces reproducible thread-scaling runs from the CLI (results are
    /// bit-identical at any thread count; only the wall clock changes).
    /// Multi-run experiments keep each fleet single-threaded — the runs
    /// themselves fan out over the threads instead, avoiding worker
    /// oversubscription.
    #[must_use]
    pub fn fleet_config(&self, root_seed: u64) -> FleetConfig {
        let fleet_threads = if self.runs == 1 { self.threads } else { 1 };
        FleetConfig::with_root_seed(root_seed).with_threads(fleet_threads)
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            runs: 30,
            slots: 1200,
            threads: default_threads(),
            base_seed: 1,
        }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_the_paper() {
        let scale = Scale::paper();
        assert_eq!(scale.runs, 500);
        assert_eq!(scale.slots, 1200);
    }

    #[test]
    fn seeds_are_distinct_per_run() {
        let scale = Scale::default();
        let seeds: std::collections::BTreeSet<u64> = (0..100).map(|i| scale.seed(i)).collect();
        assert_eq!(seeds.len(), 100);
    }

    #[test]
    fn builders_clamp_to_at_least_one() {
        let scale = Scale::quick().with_runs(0).with_slots(0).with_threads(0);
        assert_eq!(scale.runs, 1);
        assert_eq!(scale.slots, 1);
        assert_eq!(scale.threads, 1);
    }
}
