//! Co-Bandit comparison — does gossip speed convergence?
//!
//! *Cooperation Speeds Surfing: Use Co-Bandit!* (Appavoo et al. 2019)
//! predicts that devices sharing their observed rates converge to the
//! congestion game's equilibrium markedly faster than isolated bandits.
//! This experiment measures exactly that on the fleet engine: one
//! 100-device equal-share service area (the scenario library's congestion
//! world) is run three ways — isolated, broadcast gossip, and
//! probabilistic-push gossip — and the per-slot **distance to equilibrium**
//! (the streaming Definition-4 distance: mean shortfall against the area's
//! fair share, in percent) is averaged over independent runs.
//!
//! All three variants go through the engine's streaming-telemetry path
//! (`FleetEngine::run_env_with_sink`); the cooperative ones wrap the world
//! in the scenario library's `CooperativeEnvironment`, so the comparison
//! exercises the exact gossip *and* telemetry paths production fleets use —
//! no dense recorder, no per-session buffering.

use crate::config::Scale;
use crate::report::format_series;
use crate::runner::{average_series, downsample, run_many};
use smartexp3_core::PolicyKind;
use smartexp3_env::{cooperative, equal_share, GossipConfig, Scenario, DEVICES_PER_AREA};
use smartexp3_telemetry::{JsonlSink, RingSink, TelemetrySink};
use std::fmt;
use std::path::Path;

/// Number of buckets used when rendering the series textually.
pub const SERIES_BUCKETS: usize = 12;

/// The ε (in percent) used for the convergence-slot summary — the paper's
/// ε-equilibrium threshold.
pub const EPSILON_PERCENT: f64 = 7.5;

/// The push probability of the probabilistic-push variant.
pub const PUSH_PROBABILITY: f64 = 0.25;

/// Distance-to-equilibrium curve of one feedback variant.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceCurve {
    /// Variant name (`isolated`, `broadcast`, `push`).
    pub label: &'static str,
    /// Average (over runs) distance to equilibrium per slot (Definition-4
    /// fair-share shortfall), percent.
    pub distance: Vec<f64>,
}

impl ConvergenceCurve {
    /// Mean distance over the first `fraction` of the run — the convergence
    /// *speed* proxy (a variant that converges faster accumulates less
    /// distance early).
    #[must_use]
    pub fn early_distance(&self, fraction: f64) -> f64 {
        let n = ((self.distance.len() as f64) * fraction.clamp(0.0, 1.0)) as usize;
        let n = n.max(1).min(self.distance.len().max(1));
        if self.distance.is_empty() {
            return 0.0;
        }
        self.distance[..n].iter().sum::<f64>() / n as f64
    }

    /// First slot at which the averaged distance drops to `threshold` (in
    /// percent), or `None` if it never does.
    #[must_use]
    pub fn slots_to(&self, threshold: f64) -> Option<usize> {
        self.distance.iter().position(|&d| d <= threshold)
    }
}

/// The gossip-vs-isolated comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CooperativeResult {
    /// Isolated bandits (the equal-share world, no gossip).
    pub isolated: ConvergenceCurve,
    /// Per-area broadcast gossip.
    pub broadcast: ConvergenceCurve,
    /// Probabilistic-push gossip ([`PUSH_PROBABILITY`]).
    pub push: ConvergenceCurve,
}

impl CooperativeResult {
    /// All three curves, isolated first.
    #[must_use]
    pub fn curves(&self) -> [&ConvergenceCurve; 3] {
        [&self.isolated, &self.broadcast, &self.push]
    }
}

/// One 100-device equal-share area per variant, sharing a root seed. The
/// scale's `--threads` reaches the engine on single-run invocations (see
/// [`Scale::fleet_config`]).
fn build(scale: &Scale, variant: &str, kind: PolicyKind, seed: u64) -> Scenario {
    let config = scale.fleet_config(seed);
    match variant {
        "isolated" => equal_share(DEVICES_PER_AREA, kind, config),
        "broadcast" => cooperative(DEVICES_PER_AREA, kind, config, GossipConfig::broadcast()),
        "push" => cooperative(
            DEVICES_PER_AREA,
            kind,
            config,
            GossipConfig::push(PUSH_PROBABILITY),
        ),
        other => panic!("unknown variant {other}"),
    }
    .expect("static scenario construction cannot fail")
}

/// Runs `scenario` with streaming telemetry and returns the per-slot
/// distance-to-equilibrium series (Definition 4: mean shortfall against the
/// area's fair share, percent) straight from the environment's partition
/// accumulators — no dense recorder, no per-session state.
fn distance_series(scenario: &mut Scenario, slots: usize) -> Vec<f64> {
    assert!(
        scenario.enable_telemetry(),
        "the cooperative experiment's worlds all support streaming telemetry"
    );
    let mut sink = RingSink::new(slots.max(1));
    scenario.run_streaming(slots, &mut sink);
    sink.records().map(|r| r.metrics.distance_mean()).collect()
}

/// Runs the comparison for one policy kind at the given scale.
#[must_use]
pub fn run_for(scale: &Scale, kind: PolicyKind) -> CooperativeResult {
    let variants = ["isolated", "broadcast", "push"];
    let runs: Vec<[Vec<f64>; 3]> = run_many(scale, |seed| {
        variants.map(|variant| {
            let mut scenario = build(scale, variant, kind, seed);
            distance_series(&mut scenario, scale.slots)
        })
    });
    let averaged = |index: usize, label: &'static str| ConvergenceCurve {
        label,
        distance: average_series(&runs.iter().map(|r| r[index].clone()).collect::<Vec<_>>()),
    };
    CooperativeResult {
        isolated: averaged(0, "isolated"),
        broadcast: averaged(1, "broadcast"),
        push: averaged(2, "push"),
    }
}

/// Runs the comparison for the Co-Bandit paper's baseline policy (EXP3,
/// the algorithm the follow-up paper augments with gossip).
#[must_use]
pub fn run(scale: &Scale) -> CooperativeResult {
    run_for(scale, PolicyKind::Exp3)
}

/// Runs one broadcast-gossip world (the first seed of `scale`) with the
/// JSONL telemetry sink streaming to `path`, and returns the number of
/// records written — the `repro coop --telemetry <path>` exporter. The file
/// carries one fleet's slot series, so it stays schema-valid under
/// [`smartexp3_telemetry::validate_jsonl`] (slots strictly increasing).
///
/// # Errors
///
/// Returns the underlying I/O error when the file cannot be created or
/// written.
pub fn export_telemetry(scale: &Scale, path: &Path) -> std::io::Result<u64> {
    let mut scenario = build(scale, "broadcast", PolicyKind::Exp3, scale.seed(0));
    assert!(scenario.enable_telemetry());
    let mut sink = JsonlSink::create(path)?;
    scenario.run_streaming(scale.slots, &mut sink);
    TelemetrySink::flush(&mut sink)?;
    sink.finish()
}

impl fmt::Display for CooperativeResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bucket = (self.isolated.distance.len() / SERIES_BUCKETS).max(1);
        let curves: Vec<(String, Vec<f64>)> = self
            .curves()
            .iter()
            .map(|c| (c.label.to_string(), downsample(&c.distance, bucket)))
            .collect();
        f.write_str(&format_series(
            "Co-Bandit — distance to fair-share equilibrium (%), isolated vs gossip",
            bucket,
            &curves,
        ))?;
        for curve in self.curves() {
            let to_epsilon = curve
                .slots_to(EPSILON_PERCENT)
                .map_or("never".to_string(), |slot| format!("slot {slot}"));
            writeln!(
                f,
                "{:<10} mean distance (first half) {:>7.2} %, ε-equilibrium ({EPSILON_PERCENT} %) reached: {}",
                curve.label,
                curve.early_distance(0.5),
                to_epsilon
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gossip_converges_faster_than_isolated_bandits() {
        let scale = Scale::quick().with_runs(3).with_slots(240);
        let result = run(&scale);
        let isolated = result.isolated.early_distance(0.5);
        let broadcast = result.broadcast.early_distance(0.5);
        assert!(
            broadcast < isolated,
            "broadcast gossip should accumulate less early distance: \
             gossip {broadcast:.2} % vs isolated {isolated:.2} %"
        );
        // Push gossip hears only a sample of the reports; it still must not
        // be dramatically worse than staying silent.
        let push = result.push.early_distance(0.5);
        assert!(
            push < isolated * 1.25,
            "push gossip regressed: {push:.2} % vs isolated {isolated:.2} %"
        );
        let text = result.to_string();
        assert!(text.contains("Co-Bandit"));
        assert!(text.contains("isolated"));
    }
}
