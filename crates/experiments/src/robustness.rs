//! Figure 11 — robustness of Smart EXP3 against "greedy" devices: scenarios
//! in which part of the population runs Greedy while the rest runs Smart EXP3.

use crate::config::Scale;
use crate::report::format_series;
use crate::runner::{average_series, downsample, run_many};
use crate::settings::mixed_simulation;
use congestion_game::{
    distance_to_nash_given, nash_allocation, DeviceState, ResourceSelectionGame,
};
use netsim::{setting1_networks, SimulationConfig};
use smartexp3_core::PolicyKind;
use std::fmt;

/// The three population mixes of Figure 11 (out of 20 devices).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RobustnessScenario {
    /// Scenario number used in the paper (1, 2 or 3).
    pub index: usize,
    /// Number of devices running Smart EXP3.
    pub smart_devices: usize,
    /// Number of devices running Greedy.
    pub greedy_devices: usize,
}

/// The paper's three scenarios: 19/1, 10/10 and 1/19 Smart/Greedy devices.
#[must_use]
pub fn scenarios() -> [RobustnessScenario; 3] {
    [
        RobustnessScenario {
            index: 1,
            smart_devices: 19,
            greedy_devices: 1,
        },
        RobustnessScenario {
            index: 2,
            smart_devices: 10,
            greedy_devices: 10,
        },
        RobustnessScenario {
            index: 3,
            smart_devices: 1,
            greedy_devices: 19,
        },
    ]
}

/// Per-policy distance curves in one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessCurves {
    /// The scenario.
    pub scenario: RobustnessScenario,
    /// Averaged distance-to-equilibrium series of the Smart EXP3 devices.
    pub smart_distance: Vec<f64>,
    /// Averaged distance-to-equilibrium series of the Greedy devices.
    pub greedy_distance: Vec<f64>,
}

impl RobustnessCurves {
    /// Mean distance of the Smart EXP3 devices over the last quarter of the run.
    #[must_use]
    pub fn smart_tail(&self) -> f64 {
        tail_mean(&self.smart_distance)
    }

    /// Mean distance of the Greedy devices over the last quarter of the run.
    #[must_use]
    pub fn greedy_tail(&self) -> f64 {
        tail_mean(&self.greedy_distance)
    }
}

fn tail_mean(series: &[f64]) -> f64 {
    let n = series.len();
    if n == 0 {
        return 0.0;
    }
    let from = n - n / 4 - 1;
    series[from..].iter().sum::<f64>() / (n - from) as f64
}

/// The regenerated Figure 11.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessResult {
    /// One entry per scenario.
    pub curves: Vec<RobustnessCurves>,
}

/// Runs the Figure 11 experiment.
#[must_use]
pub fn run(scale: &Scale) -> RobustnessResult {
    let game = ResourceSelectionGame::new(
        setting1_networks()
            .iter()
            .map(|n| (n.id, n.bandwidth_mbps))
            .collect::<Vec<_>>(),
    );
    let curves = scenarios()
        .into_iter()
        .map(|scenario| {
            let per_run: Vec<(Vec<f64>, Vec<f64>)> = run_many(scale, |seed| {
                let (simulation, kinds) = mixed_simulation(
                    setting1_networks(),
                    &[
                        (PolicyKind::SmartExp3, scenario.smart_devices),
                        (PolicyKind::Greedy, scenario.greedy_devices),
                    ],
                    SimulationConfig {
                        total_slots: scale.slots,
                        keep_selections: true,
                        ..SimulationConfig::default()
                    },
                )
                .expect("robustness scenario construction cannot fail");
                let result = simulation.run(seed);
                let selections = result.selections.as_ref().expect("selections were kept");
                let equilibrium = nash_allocation(&game, kinds.len());
                let mut smart = Vec::new();
                let mut greedy = Vec::new();
                for slot_records in selections {
                    for (target, kind) in [
                        (&mut smart, PolicyKind::SmartExp3),
                        (&mut greedy, PolicyKind::Greedy),
                    ] {
                        let states: Vec<DeviceState> = slot_records
                            .iter()
                            .filter(|r| kinds.get(r.device.0 as usize) == Some(&kind))
                            .map(|r| DeviceState {
                                network: r.network,
                                observed_rate: r.rate_mbps,
                            })
                            .collect();
                        let distance = if states.is_empty() {
                            0.0
                        } else {
                            distance_to_nash_given(&game, &equilibrium, &states)
                        };
                        target.push(distance);
                    }
                }
                (smart, greedy)
            });
            let smart_series: Vec<Vec<f64>> = per_run.iter().map(|(s, _)| s.clone()).collect();
            let greedy_series: Vec<Vec<f64>> = per_run.iter().map(|(_, g)| g.clone()).collect();
            RobustnessCurves {
                scenario,
                smart_distance: average_series(&smart_series),
                greedy_distance: average_series(&greedy_series),
            }
        })
        .collect();
    RobustnessResult { curves }
}

impl fmt::Display for RobustnessResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for curve in &self.curves {
            let bucket = (curve.smart_distance.len() / 12).max(1);
            let series = vec![
                (
                    format!("Smart EXP3 ({} devices)", curve.scenario.smart_devices),
                    downsample(&curve.smart_distance, bucket),
                ),
                (
                    format!("Greedy ({} devices)", curve.scenario.greedy_devices),
                    downsample(&curve.greedy_distance, bucket),
                ),
            ];
            f.write_str(&format_series(
                &format!(
                    "Figure 11 — scenario {}: distance to Nash equilibrium (%)",
                    curve.scenario.index
                ),
                bucket,
                &series,
            ))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smart_exp3_copes_even_when_outnumbered_by_greedy_devices() {
        let scale = Scale::quick().with_runs(1).with_slots(300);
        let result = run(&scale);
        assert_eq!(result.curves.len(), 3);
        for curve in &result.curves {
            assert_eq!(curve.smart_distance.len(), 300);
            assert!(curve.smart_tail().is_finite());
        }
        // In scenario 3 (19 greedy devices) the Smart EXP3 device should not be
        // doing dramatically worse than the Greedy crowd.
        let scenario3 = &result.curves[2];
        assert!(
            scenario3.smart_tail() <= scenario3.greedy_tail() + 50.0,
            "smart tail {:.1}% vs greedy tail {:.1}%",
            scenario3.smart_tail(),
            scenario3.greedy_tail()
        );
        assert!(result.to_string().contains("scenario 3"));
    }
}
