//! §VII-B in-the-wild experiment — downloading a 500 MB file in a coffee shop
//! while choosing between a public WiFi network and a cellular network whose
//! load is neither known nor controlled.
//!
//! The uncontrolled environment is emulated with synthetic simultaneous
//! traces in which both networks fluctuate with the (hidden) background load
//! and neither is permanently better. Smart EXP3 and Greedy are run
//! sequentially against the same conditions, as in the paper, and the metric
//! is the time needed to finish the download.

use crate::config::Scale;
use crate::report::{cell, format_table};
use crate::runner::run_many;
use rand::rngs::StdRng;
use rand::SeedableRng;
use smartexp3_core::{Greedy, Policy, SmartExp3};
use std::fmt;
use tracegen::{
    run_policy_on_pair, trace_networks, Regime, TracePair, TraceProfile, TraceSimulationConfig,
};

/// Size of the file to download, in MB (the paper downloads 500 MB).
pub const FILE_SIZE_MB: f64 = 500.0;

/// Maximum length of one attempt, in slots (50 simulated minutes).
pub const WILD_SLOTS: usize = 200;

/// Generates the coffee-shop conditions of one run: both networks fluctuate
/// with hidden background load, with rates in the few-Mbps range.
#[must_use]
pub fn wild_conditions(seed: u64) -> TracePair {
    let mut rng = StdRng::seed_from_u64(seed);
    let wifi = TraceProfile {
        name: "coffee-shop WiFi".to_string(),
        regimes: vec![
            Regime {
                weight: 0.2,
                mean_mbps: 5.0,
            },
            Regime {
                weight: 0.3,
                mean_mbps: 2.0,
            },
            Regime {
                weight: 0.3,
                mean_mbps: 6.5,
            },
            Regime {
                weight: 0.2,
                mean_mbps: 3.0,
            },
        ],
        noise: 0.35,
    };
    let cellular = TraceProfile {
        name: "tethered cellular".to_string(),
        regimes: vec![
            Regime {
                weight: 0.25,
                mean_mbps: 4.5,
            },
            Regime {
                weight: 0.25,
                mean_mbps: 6.0,
            },
            Regime {
                weight: 0.25,
                mean_mbps: 2.5,
            },
            Regime {
                weight: 0.25,
                mean_mbps: 5.0,
            },
        ],
        noise: 0.3,
    };
    TracePair {
        paper_index: 0,
        wifi: wifi.generate(WILD_SLOTS, 15.0, &mut rng),
        cellular: cellular.generate(WILD_SLOTS, 15.0, &mut rng),
    }
}

/// The regenerated in-the-wild comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct WildResult {
    /// Mean minutes Smart EXP3 needed to download the file.
    pub smart_minutes: f64,
    /// Mean minutes Greedy needed.
    pub greedy_minutes: f64,
    /// Number of runs of each algorithm.
    pub runs: usize,
}

impl WildResult {
    /// How much faster Smart EXP3 finished the download (Greedy time divided
    /// by Smart EXP3 time; the paper reports ≈1.2×).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.smart_minutes <= 0.0 {
            return 1.0;
        }
        self.greedy_minutes / self.smart_minutes
    }
}

fn minutes_to_download(policy: &mut dyn Policy, pair: &TracePair, seed: u64) -> f64 {
    let result = run_policy_on_pair(policy, pair, &TraceSimulationConfig::default(), seed);
    let slot_duration_min = pair.wifi.slot_duration_s / 60.0;
    let mut downloaded_mb = 0.0;
    for (slot, &(_, rate)) in result.selections.iter().enumerate() {
        // Approximate goodput per slot; switching delay is already reflected
        // in the run's total, the per-slot walk only needs the rate.
        downloaded_mb += rate * pair.wifi.slot_duration_s / 8.0;
        if downloaded_mb >= FILE_SIZE_MB {
            return (slot + 1) as f64 * slot_duration_min;
        }
    }
    WILD_SLOTS as f64 * slot_duration_min
}

/// Runs the in-the-wild comparison: each run generates fresh coffee-shop
/// conditions and measures both algorithms against them.
#[must_use]
pub fn run(scale: &Scale) -> WildResult {
    let times: Vec<(f64, f64)> = run_many(scale, |seed| {
        let pair = wild_conditions(seed);
        let mut smart = SmartExp3::with_defaults(trace_networks()).expect("two networks are valid");
        let mut greedy = Greedy::new(trace_networks()).expect("two networks are valid");
        (
            minutes_to_download(&mut smart, &pair, seed),
            minutes_to_download(&mut greedy, &pair, seed.wrapping_add(911)),
        )
    });
    let runs = times.len().max(1);
    WildResult {
        smart_minutes: times.iter().map(|(s, _)| s).sum::<f64>() / runs as f64,
        greedy_minutes: times.iter().map(|(_, g)| g).sum::<f64>() / runs as f64,
        runs: times.len(),
    }
}

impl fmt::Display for WildResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows = vec![
            vec!["Smart EXP3".to_string(), cell(self.smart_minutes)],
            vec!["Greedy".to_string(), cell(self.greedy_minutes)],
        ];
        f.write_str(&format_table(
            &format!(
                "§VII-B in the wild — minutes to download {FILE_SIZE_MB} MB ({} runs each)",
                self.runs
            ),
            &["algorithm", "mean minutes"],
            &rows,
        ))?;
        writeln!(f, "Smart EXP3 speed-up over Greedy: {:.2}x", self.speedup())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smart_exp3_downloads_at_least_as_fast_as_greedy_on_average() {
        let scale = Scale::quick().with_runs(6);
        let result = run(&scale);
        assert!(result.smart_minutes > 0.0);
        assert!(
            result.speedup() > 0.95,
            "expected Smart EXP3 to be competitive, speedup = {:.2}",
            result.speedup()
        );
        assert!(result.to_string().contains("in the wild"));
    }

    #[test]
    fn conditions_have_no_permanent_winner() {
        let pair = wild_conditions(3);
        let fraction = pair.cellular_better_fraction();
        assert!((0.15..=0.85).contains(&fraction), "fraction = {fraction}");
    }
}
