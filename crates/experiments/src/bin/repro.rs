//! `repro` — regenerate the Smart EXP3 paper's tables and figures.
//!
//! ```text
//! repro <experiment> [--runs N] [--slots N] [--threads N] [--seed N] [--paper-scale]
//!                    [--telemetry PATH]
//!
//! experiments:
//!   fig2 | fig3 | table4 | fig4 | table5 | fig5 | fig6 | fig7 | fig8 |
//!   fig9 | fig10 | fig11 | table6 | fig12 | fig13 | table7 | fig14 |
//!   fig15 | wild | all
//! ```

use experiments::config::Scale;
use experiments::controlled::{self, ControlledScenario};
use experiments::settings::DynamicSetting;
use experiments::{
    cooperative, dense, distance, download, dynamics, events, fairness, mobility, robustness,
    scalability, stability, switching, tracedriven, wild,
};
use smartexp3_core::SamplerStrategy;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str =
    "usage: repro <experiment> [--runs N] [--slots N] [--threads N] [--seed N] [--paper-scale]
                  [--telemetry PATH] [--sampler linear|tree|alias]

flags:
  --telemetry PATH  stream per-slot fleet telemetry (JSONL, tailable) to PATH
                    while running the coop experiment's broadcast variant, or
                    an event-driven duty-cycle run (with wake-to-decision
                    latency percentiles) for the events experiment
  --sampler NAME    restrict the dense experiment's sweep to one
                    CDF-inversion strategy (default: all three)

experiments:
  fig2     number of network switches (Figure 2)
  fig3     stable states (Figure 3)        table4  slots to stability (Table IV)
  fig4     distance to Nash equilibrium (Figure 4)
  table5   cumulative download (Table V)   fig5    fairness (Figure 5)
  fig6     scalability (Figure 6)
  fig7     dynamic setting 1 (Figure 7)    fig8    dynamic setting 2 (Figure 8)
  fig9     mobility (Figure 9)             fig10   switches of persistent devices
  fig11    robustness to greedy devices (Figure 11)
  table6   trace-driven download (Table VI)
  fig12    trace selection overlay (Figure 12)
  fig13    controlled testbed, static      table7  testbed download (Table VII)
  fig14    controlled testbed, dynamic     fig15   controlled testbed, mixed
  wild     in-the-wild 500 MB download (§VII-B)
  coop     Co-Bandit gossip vs isolated convergence (follow-up paper)
  dense    dense-urban large-K sampling, linear vs tree vs alias throughput
  events   event-driven stepping: sync vs wake-queue trajectories + latency
  all      everything above";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let experiment = args[0].to_lowercase();
    let (scale, telemetry, sampler) = match parse_scale(&args[1..]) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("error: {message}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &telemetry {
        let export = match experiment.as_str() {
            "coop" | "cooperative" | "all" => cooperative::export_telemetry,
            // The event-driven export: one record per wake timestamp, each
            // carrying wake-to-decision latency percentiles.
            "events" | "duty_cycle" => events::export_telemetry,
            _ => {
                eprintln!(
                    "error: --telemetry is only wired to the coop and events experiments\n\n{USAGE}"
                );
                return ExitCode::FAILURE;
            }
        };
        match export(&scale, path) {
            Ok(records) => {
                eprintln!(
                    "telemetry: wrote {records} slot records to {} (tail with `tail -f`)",
                    path.display()
                );
            }
            Err(error) => {
                eprintln!(
                    "error: telemetry export to {} failed: {error}",
                    path.display()
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let known = run_experiment(&experiment, &scale, sampler);
    if !known {
        eprintln!("error: unknown experiment `{experiment}`\n\n{USAGE}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn parse_scale(
    args: &[String],
) -> Result<(Scale, Option<PathBuf>, Option<SamplerStrategy>), String> {
    let mut scale = Scale::default();
    let mut telemetry = None;
    let mut sampler = None;
    let mut index = 0;
    while index < args.len() {
        let flag = args[index].clone();
        match flag.as_str() {
            "--paper-scale" => scale = Scale::paper(),
            "--telemetry" => {
                index += 1;
                let value = args
                    .get(index)
                    .ok_or_else(|| format!("missing value for {flag}"))?;
                telemetry = Some(PathBuf::from(value));
            }
            "--sampler" => {
                index += 1;
                let value = args
                    .get(index)
                    .ok_or_else(|| format!("missing value for {flag}"))?;
                sampler = Some(match value.as_str() {
                    "linear" => SamplerStrategy::Linear,
                    "tree" => SamplerStrategy::Tree,
                    "alias" => SamplerStrategy::Alias,
                    other => return Err(format!("unknown sampler `{other}`")),
                });
            }
            "--runs" | "--slots" | "--threads" | "--seed" => {
                index += 1;
                let value = args
                    .get(index)
                    .ok_or_else(|| format!("missing value for {flag}"))?
                    .parse::<usize>()
                    .map_err(|_| format!("invalid value for {flag}"))?;
                match flag.as_str() {
                    "--runs" => scale.runs = value.max(1),
                    "--slots" => scale.slots = value.max(1),
                    "--threads" => scale.threads = value.max(1),
                    "--seed" => scale.base_seed = value as u64,
                    _ => unreachable!(),
                }
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
        index += 1;
    }
    Ok((scale, telemetry, sampler))
}

fn run_experiment(experiment: &str, scale: &Scale, sampler: Option<SamplerStrategy>) -> bool {
    let everything = experiment == "all";
    let mut matched = false;
    let mut wants = |names: &[&str]| -> bool {
        let hit = everything || names.contains(&experiment);
        matched |= hit;
        hit
    };

    if wants(&["fig2"]) {
        println!("{}", switching::run(scale));
    }
    if wants(&["fig3", "table4"]) {
        println!("{}", stability::run(scale));
    }
    if wants(&["fig4"]) {
        println!("{}", distance::run(scale));
    }
    if wants(&["table5"]) {
        println!("{}", download::run(scale));
    }
    if wants(&["fig5"]) {
        println!("{}", fairness::run(scale));
    }
    if wants(&["fig6"]) {
        println!("{}", scalability::run(scale));
    }
    if wants(&["fig7"]) {
        println!(
            "{}",
            dynamics::run(scale, DynamicSetting::DevicesJoinAndLeave)
        );
    }
    if wants(&["fig8"]) {
        println!("{}", dynamics::run(scale, DynamicSetting::DevicesLeave));
    }
    if wants(&["fig9", "fig10"]) {
        println!("{}", mobility::run(scale));
    }
    if wants(&["fig11"]) {
        println!("{}", robustness::run(scale));
    }
    if wants(&["table6"]) {
        println!("{}", tracedriven::run(scale));
    }
    if wants(&["fig12"]) {
        println!("{}", tracedriven::illustrate(1, scale.base_seed));
        println!("{}", tracedriven::illustrate(3, scale.base_seed));
    }
    if wants(&["fig13", "table7"]) {
        println!("{}", controlled::run(scale, ControlledScenario::Static));
    }
    if wants(&["fig14"]) {
        println!(
            "{}",
            controlled::run(scale, ControlledScenario::DevicesLeave)
        );
    }
    if wants(&["fig15"]) {
        println!("{}", controlled::run(scale, ControlledScenario::Mixed));
    }
    if wants(&["wild"]) {
        println!("{}", wild::run(scale));
    }
    if wants(&["coop", "cooperative"]) {
        println!("{}", cooperative::run(scale));
    }
    if wants(&["dense", "dense_urban"]) {
        match sampler {
            Some(strategy) => println!(
                "{}",
                dense::run_strategies(
                    scale,
                    dense::DEFAULT_NETWORKS,
                    dense::DEFAULT_SESSIONS,
                    &[strategy]
                )
            ),
            None => println!("{}", dense::run(scale)),
        }
    }
    if wants(&["events", "duty_cycle"]) {
        println!("{}", events::run(scale));
    }
    matched
}
