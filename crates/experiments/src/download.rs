//! Table V — (mean) per-run median cumulative download in GB, and the
//! unutilised-resources discussion of §VI-A.

use crate::config::Scale;
use crate::report::{cell2, format_table};
use crate::runner::run_many;
use crate::settings::{homogeneous_simulation, StaticSetting};
use congestion_game::median;
use netsim::SimulationConfig;
use smartexp3_core::PolicyKind;
use std::fmt;

/// One row of Table V.
#[derive(Debug, Clone, PartialEq)]
pub struct DownloadRow {
    /// The algorithm.
    pub algorithm: PolicyKind,
    /// The static setting.
    pub setting: StaticSetting,
    /// Mean over runs of the per-run median device download, in GB.
    pub median_download_gb: f64,
    /// Mean unutilised bandwidth over the run, in GB (the "lost resources" of
    /// the Greedy discussion).
    pub unutilized_gb: f64,
}

/// The regenerated Table V.
#[derive(Debug, Clone, PartialEq)]
pub struct DownloadResult {
    /// One row per (algorithm, setting).
    pub rows: Vec<DownloadRow>,
}

impl DownloadResult {
    /// Looks up the row of `algorithm` in `setting`.
    #[must_use]
    pub fn row(&self, algorithm: PolicyKind, setting: StaticSetting) -> Option<&DownloadRow> {
        self.rows
            .iter()
            .find(|r| r.algorithm == algorithm && r.setting == setting)
    }
}

/// Runs the Table V experiment for the given algorithms.
#[must_use]
pub fn run_for(scale: &Scale, algorithms: &[PolicyKind]) -> DownloadResult {
    let mut rows = Vec::new();
    for setting in StaticSetting::both() {
        for &algorithm in algorithms {
            let per_run: Vec<(f64, f64)> = run_many(scale, |seed| {
                let simulation = homogeneous_simulation(
                    setting.networks(),
                    algorithm,
                    setting.devices(),
                    SimulationConfig {
                        total_slots: scale.slots,
                        ..SimulationConfig::default()
                    },
                )
                .expect("static scenario construction cannot fail");
                let result = simulation.run(seed);
                (
                    median(&result.downloads_gigabytes()),
                    result.unutilized_megabits / 8000.0,
                )
            });
            let runs = per_run.len().max(1) as f64;
            rows.push(DownloadRow {
                algorithm,
                setting,
                median_download_gb: per_run.iter().map(|(d, _)| d).sum::<f64>() / runs,
                unutilized_gb: per_run.iter().map(|(_, u)| u).sum::<f64>() / runs,
            });
        }
    }
    DownloadResult { rows }
}

/// Runs the full Table V (all nine algorithms).
#[must_use]
pub fn run(scale: &Scale) -> DownloadResult {
    run_for(scale, &PolicyKind::all())
}

impl fmt::Display for DownloadResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let algorithms: Vec<PolicyKind> = {
            let mut seen = Vec::new();
            for row in &self.rows {
                if !seen.contains(&row.algorithm) {
                    seen.push(row.algorithm);
                }
            }
            seen
        };
        let rows: Vec<Vec<String>> = algorithms
            .iter()
            .map(|&algorithm| {
                let mut row = vec![algorithm.label().to_string()];
                for setting in StaticSetting::both() {
                    match self.row(algorithm, setting) {
                        Some(r) => {
                            row.push(cell2(r.median_download_gb));
                            row.push(cell2(r.unutilized_gb));
                        }
                        None => {
                            row.push("-".to_string());
                            row.push("-".to_string());
                        }
                    }
                }
                row
            })
            .collect();
        f.write_str(&format_table(
            "Table V — per-run median cumulative download (GB) and unutilised bandwidth (GB)",
            &[
                "algorithm",
                "setting 1 median DL",
                "setting 1 unused",
                "setting 2 median DL",
                "setting 2 unused",
            ],
            &rows,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_based_algorithms_beat_exp3_on_download() {
        let scale = Scale::quick().with_runs(2).with_slots(300);
        let result = run_for(&scale, &[PolicyKind::Exp3, PolicyKind::SmartExp3]);
        for setting in StaticSetting::both() {
            let exp3 = result.row(PolicyKind::Exp3, setting).unwrap();
            let smart = result.row(PolicyKind::SmartExp3, setting).unwrap();
            assert!(
                smart.median_download_gb > exp3.median_download_gb * 0.95,
                "{}: smart {:.2} GB vs exp3 {:.2} GB",
                setting.label(),
                smart.median_download_gb,
                exp3.median_download_gb
            );
        }
        assert!(result.to_string().contains("Table V"));
    }
}
