//! Figure 2 — average number of network switches per algorithm, in both
//! static settings.

use crate::config::Scale;
use crate::report::{cell, format_table};
use crate::runner::run_many;
use crate::settings::{homogeneous_simulation, StaticSetting};
use congestion_game::Summary;
use netsim::SimulationConfig;
use smartexp3_core::PolicyKind;
use std::fmt;

/// The algorithms Figure 2 compares (Centralized and Fixed Random never
/// switch and are omitted, as in the paper).
#[must_use]
pub fn figure2_algorithms() -> [PolicyKind; 7] {
    [
        PolicyKind::Exp3,
        PolicyKind::BlockExp3,
        PolicyKind::HybridBlockExp3,
        PolicyKind::SmartExp3WithoutReset,
        PolicyKind::SmartExp3,
        PolicyKind::Greedy,
        PolicyKind::FullInformation,
    ]
}

/// One row of Figure 2: an algorithm in a setting.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchingRow {
    /// The algorithm.
    pub algorithm: PolicyKind,
    /// The static setting.
    pub setting: StaticSetting,
    /// Mean per-device number of switches.
    pub mean_switches: f64,
    /// Standard deviation of per-device switch counts (the error bars).
    pub std_switches: f64,
}

/// The regenerated Figure 2.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchingResult {
    /// One row per (algorithm, setting).
    pub rows: Vec<SwitchingRow>,
}

impl SwitchingResult {
    /// The mean switch count of `algorithm` in `setting`, if present.
    #[must_use]
    pub fn mean_of(&self, algorithm: PolicyKind, setting: StaticSetting) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.algorithm == algorithm && r.setting == setting)
            .map(|r| r.mean_switches)
    }
}

/// Runs the Figure 2 experiment.
#[must_use]
pub fn run(scale: &Scale) -> SwitchingResult {
    let mut rows = Vec::new();
    for setting in StaticSetting::both() {
        for algorithm in figure2_algorithms() {
            let per_device: Vec<Vec<f64>> = run_many(scale, |seed| {
                let simulation = homogeneous_simulation(
                    setting.networks(),
                    algorithm,
                    setting.devices(),
                    SimulationConfig {
                        total_slots: scale.slots,
                        ..SimulationConfig::default()
                    },
                )
                .expect("static scenario construction cannot fail");
                simulation.run(seed).switch_counts()
            });
            let flattened: Vec<f64> = per_device.into_iter().flatten().collect();
            let summary = Summary::of(&flattened);
            rows.push(SwitchingRow {
                algorithm,
                setting,
                mean_switches: summary.mean,
                std_switches: summary.std_dev,
            });
        }
    }
    SwitchingResult { rows }
}

impl fmt::Display for SwitchingResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows: Vec<Vec<String>> = figure2_algorithms()
            .iter()
            .map(|&algorithm| {
                let mut row = vec![algorithm.label().to_string()];
                for setting in StaticSetting::both() {
                    let entry = self
                        .rows
                        .iter()
                        .find(|r| r.algorithm == algorithm && r.setting == setting);
                    match entry {
                        Some(r) => {
                            row.push(cell(r.mean_switches));
                            row.push(cell(r.std_switches));
                        }
                        None => {
                            row.push("-".to_string());
                            row.push("-".to_string());
                        }
                    }
                }
                row
            })
            .collect();
        f.write_str(&format_table(
            "Figure 2 — average number of network switches per device",
            &[
                "algorithm",
                "setting 1 mean",
                "setting 1 std",
                "setting 2 mean",
                "setting 2 std",
            ],
            &rows,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smart_exp3_switches_far_less_than_exp3() {
        let scale = Scale::quick().with_runs(2).with_slots(250);
        let result = run(&scale);
        for setting in StaticSetting::both() {
            let exp3 = result.mean_of(PolicyKind::Exp3, setting).unwrap();
            let smart = result.mean_of(PolicyKind::SmartExp3, setting).unwrap();
            assert!(
                smart * 3.0 < exp3,
                "{}: smart {smart:.1} vs exp3 {exp3:.1}",
                setting.label()
            );
        }
        let text = result.to_string();
        assert!(text.contains("Figure 2"));
        assert!(text.contains("Smart EXP3"));
    }
}
