//! Scenario builders for every setting the paper evaluates.

use netsim::{
    figure1_networks, setting1_networks, setting2_networks, AreaId, CongestionEnvironment,
    DeviceProfile, DeviceSetup, NetworkSpec, SharingModel, Simulation, SimulationConfig, Topology,
};
use serde::{Deserialize, Serialize};
use smartexp3_core::{ConfigError, NetworkId, PolicyFactory, PolicyKind};
use smartexp3_engine::{FleetConfig, FleetEngine};

/// The two static simulation settings of §VI-A (20 devices, 3 networks,
/// 33 Mbps aggregate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StaticSetting {
    /// Non-uniform rates 4 / 7 / 22 Mbps (unique Nash equilibrium).
    Setting1,
    /// Uniform rates 11 / 11 / 11 Mbps (three symmetric equilibria).
    Setting2,
}

impl StaticSetting {
    /// Both static settings.
    #[must_use]
    pub fn both() -> [StaticSetting; 2] {
        [StaticSetting::Setting1, StaticSetting::Setting2]
    }

    /// Display label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            StaticSetting::Setting1 => "Setting 1",
            StaticSetting::Setting2 => "Setting 2",
        }
    }

    /// The networks of the setting.
    #[must_use]
    pub fn networks(&self) -> Vec<NetworkSpec> {
        match self {
            StaticSetting::Setting1 => setting1_networks(),
            StaticSetting::Setting2 => setting2_networks(),
        }
    }

    /// Number of devices the paper uses in this setting.
    #[must_use]
    pub fn devices(&self) -> usize {
        20
    }
}

/// Builds a [`PolicyFactory`] over `networks`.
///
/// # Errors
///
/// Propagates [`ConfigError`] from the factory constructor.
pub fn factory_for(networks: &[NetworkSpec]) -> Result<PolicyFactory, ConfigError> {
    PolicyFactory::new(networks.iter().map(|n| (n.id, n.bandwidth_mbps)).collect())
}

/// The single population definition behind [`homogeneous_simulation`] and
/// [`homogeneous_environment`]: `devices` always-active devices in one area.
fn homogeneous_profiles(ids: &[NetworkId], kind: PolicyKind, devices: usize) -> Vec<DeviceProfile> {
    (0..devices)
        .map(|id| {
            let mut profile = DeviceProfile::new(id as u32, AreaId(0), ids.to_vec());
            if kind.needs_full_information() {
                profile = profile.with_full_information();
            }
            profile
        })
        .collect()
}

/// Assembles the engine-path pair for any recorder-backed world: `populate`
/// fills the fleet with one session per profile (in profile order), and the
/// recorder-equipped environment is built around the same profiles, both
/// derived from `fleet_config`'s root seed (the fleet also inherits its
/// engine parallelism). Drive the pair with
/// [`run_environment`](crate::runner::run_environment).
fn environment_pair<F>(
    networks: Vec<NetworkSpec>,
    topology: Topology,
    profiles: Vec<DeviceProfile>,
    config: SimulationConfig,
    fleet_config: FleetConfig,
    populate: F,
) -> Result<(CongestionEnvironment, FleetEngine), ConfigError>
where
    F: FnOnce(&mut FleetEngine, &[DeviceProfile]) -> Result<(), ConfigError>,
{
    let mut fleet = FleetEngine::new(fleet_config);
    populate(&mut fleet, &profiles)?;
    let seed = fleet.config().environment_seed();
    let env = CongestionEnvironment::new(networks, topology, Vec::new(), profiles, config, seed)
        .with_recorder();
    Ok((env, fleet))
}

/// Builds a single-area simulation with `devices` devices all running `kind`.
///
/// # Errors
///
/// Propagates [`ConfigError`] from policy construction.
pub fn homogeneous_simulation(
    networks: Vec<NetworkSpec>,
    kind: PolicyKind,
    devices: usize,
    config: SimulationConfig,
) -> Result<Simulation, ConfigError> {
    let ids: Vec<NetworkId> = networks.iter().map(|n| n.id).collect();
    let mut factory = factory_for(&networks)?;
    let mut simulation = Simulation::single_area(networks, config);
    for profile in homogeneous_profiles(&ids, kind, devices) {
        simulation.add_device(profile.build_setup(factory.build(kind)?));
    }
    Ok(simulation)
}

/// Engine-path counterpart of [`homogeneous_simulation`]: the same
/// single-area world as a recorder-equipped [`CongestionEnvironment`] plus a
/// [`FleetEngine`] hosting `devices` sessions of `kind`, configured by
/// `fleet_config` (root seed and engine parallelism). Drive the pair with
/// [`run_environment`](crate::runner::run_environment).
///
/// # Errors
///
/// Propagates [`ConfigError`] from policy construction.
pub fn homogeneous_environment(
    networks: Vec<NetworkSpec>,
    kind: PolicyKind,
    devices: usize,
    config: SimulationConfig,
    fleet_config: FleetConfig,
) -> Result<(CongestionEnvironment, FleetEngine), ConfigError> {
    let ids: Vec<NetworkId> = networks.iter().map(|n| n.id).collect();
    let profiles = homogeneous_profiles(&ids, kind, devices);
    let topology = Topology::single_area(&ids);
    let mut factory = factory_for(&networks)?;
    environment_pair(
        networks,
        topology,
        profiles,
        config,
        fleet_config,
        |fleet, profiles| {
            fleet
                .add_fleet(&mut factory, kind, profiles.len())
                .map(|_| ())
        },
    )
}

/// Builds a single-area simulation with a mix of policies: `counts` lists how
/// many devices run each kind (used by the robustness scenarios of Fig. 11 and
/// the mixed controlled experiment of Fig. 15). Returns the simulation and,
/// for each device id, the kind it runs.
///
/// # Errors
///
/// Propagates [`ConfigError`] from policy construction.
pub fn mixed_simulation(
    networks: Vec<NetworkSpec>,
    counts: &[(PolicyKind, usize)],
    config: SimulationConfig,
) -> Result<(Simulation, Vec<PolicyKind>), ConfigError> {
    let mut factory = factory_for(&networks)?;
    let mut simulation = Simulation::single_area(networks, config);
    let mut kinds = Vec::new();
    let mut id = 0u32;
    for &(kind, count) in counts {
        for _ in 0..count {
            let mut setup = DeviceSetup::new(id, factory.build(kind)?);
            if kind.needs_full_information() {
                setup = setup.with_full_information();
            }
            simulation.add_device(setup);
            kinds.push(kind);
            id += 1;
        }
    }
    Ok((simulation, kinds))
}

/// The dynamic settings of §VI-A (Figures 7 and 8); all devices run `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DynamicSetting {
    /// Dynamic setting 1: 11 devices stay throughout; 9 more join at slot 401
    /// and leave after slot 800.
    DevicesJoinAndLeave,
    /// Dynamic setting 2: 16 devices leave after slot 600, freeing resources
    /// for the remaining 4.
    DevicesLeave,
}

impl DynamicSetting {
    /// Display label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            DynamicSetting::DevicesJoinAndLeave => "9 devices join at t=401, leave after t=800",
            DynamicSetting::DevicesLeave => "16 devices leave after t=600",
        }
    }

    /// Number of devices that stay for the whole run.
    #[must_use]
    pub fn persistent_devices(&self) -> usize {
        match self {
            DynamicSetting::DevicesJoinAndLeave => 11,
            DynamicSetting::DevicesLeave => 4,
        }
    }

    /// The single population definition behind [`build`](Self::build) and
    /// [`build_environment`](Self::build_environment): 20 devices whose
    /// activity windows encode the setting's join/leave schedule, scaled
    /// proportionally when `total_slots` differs from the paper's 1200.
    fn profiles(&self, ids: &[NetworkId], total_slots: usize) -> Vec<DeviceProfile> {
        let scale = |slot: usize| slot * total_slots / 1200;
        let window = |id: u32| match self {
            DynamicSetting::DevicesJoinAndLeave if id >= 11 => (scale(400), Some(scale(800))),
            DynamicSetting::DevicesLeave if id >= 4 => (0, Some(scale(600))),
            _ => (0, None),
        };
        (0..20u32)
            .map(|id| {
                let (from, until) = window(id);
                DeviceProfile::new(id, AreaId(0), ids.to_vec()).active_between(from, until)
            })
            .collect()
    }

    /// Builds the simulation (3 networks at 4/7/22 Mbps as in the paper).
    ///
    /// The join/leave slots are scaled proportionally if `config.total_slots`
    /// differs from the paper's 1200.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`] from policy construction.
    pub fn build(
        &self,
        kind: PolicyKind,
        config: SimulationConfig,
    ) -> Result<Simulation, ConfigError> {
        let networks = setting1_networks();
        let ids: Vec<NetworkId> = networks.iter().map(|n| n.id).collect();
        let mut factory = factory_for(&networks)?;
        let mut simulation = Simulation::single_area(networks, config);
        for profile in self.profiles(&ids, config.total_slots) {
            simulation.add_device(profile.build_setup(factory.build(kind)?));
        }
        Ok(simulation)
    }

    /// Engine-path counterpart of [`build`](Self::build): the same dynamic
    /// population as a recorder-equipped environment plus a fleet
    /// configured by `fleet_config` (root seed and engine parallelism).
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`] from policy construction.
    pub fn build_environment(
        &self,
        kind: PolicyKind,
        config: SimulationConfig,
        fleet_config: FleetConfig,
    ) -> Result<(CongestionEnvironment, FleetEngine), ConfigError> {
        let networks = setting1_networks();
        let ids: Vec<NetworkId> = networks.iter().map(|n| n.id).collect();
        let profiles = self.profiles(&ids, config.total_slots);
        let topology = Topology::single_area(&ids);
        let mut factory = factory_for(&networks)?;
        environment_pair(
            networks,
            topology,
            profiles,
            config,
            fleet_config,
            |fleet, profiles| {
                fleet
                    .add_fleet(&mut factory, kind, profiles.len())
                    .map(|_| ())
            },
        )
    }
}

/// The single population definition behind [`mobility_simulation`] and
/// [`mobility_environment`]: 8 walkers starting in the food court (moving at
/// the scaled slots 400 and 800), 2 food-court stayers, 5 study-area and 5
/// bus-stop devices, with their reporting group per device.
fn mobility_profiles(topology: &Topology, total_slots: usize) -> (Vec<DeviceProfile>, Vec<usize>) {
    let scale = |slot: usize| slot * total_slots / 1200;
    let mut profiles = Vec::with_capacity(20);
    let mut groups = Vec::with_capacity(20);
    for id in 0..20u32 {
        let (area, group) = match id {
            0..=7 => (0u32, 0usize),
            8..=9 => (0, 1),
            10..=14 => (1, 2),
            _ => (2, 3),
        };
        let area_id = AreaId(area);
        let mut profile = DeviceProfile::new(id, area_id, topology.networks_in(area_id));
        if group == 0 {
            profile = profile
                .moving_to(scale(400), AreaId(1))
                .moving_to(scale(800), AreaId(2));
        }
        profiles.push(profile);
        groups.push(group);
    }
    (profiles, groups)
}

/// Per-area policy factories for the Figure-1 map: policies are constructed
/// over the networks visible from the device's starting area (a device
/// cannot know about networks it has never seen).
fn mobility_factories(
    networks: &[NetworkSpec],
    topology: &Topology,
) -> Result<Vec<PolicyFactory>, ConfigError> {
    [AreaId(0), AreaId(1), AreaId(2)]
        .iter()
        .map(|&area| {
            let visible = topology.networks_in(area);
            PolicyFactory::new(
                networks
                    .iter()
                    .filter(|n| visible.contains(&n.id))
                    .map(|n| (n.id, n.bandwidth_mbps))
                    .collect(),
            )
        })
        .collect()
}

/// The mobility scenario of §VI-A setting 3 (Figure 9): the Figure 1 map with
/// 20 devices, 8 of which move from the food court to the study area at slot
/// 401 and on to the bus stop at slot 801.
///
/// Returns the simulation and, per device id, its *group* for reporting:
/// 0 = moving devices (1–8), 1 = food-court stayers (9–10),
/// 2 = study-area devices (11–15), 3 = bus-stop devices (16–20).
///
/// # Errors
///
/// Propagates [`ConfigError`] from policy construction.
pub fn mobility_simulation(
    kind: PolicyKind,
    config: SimulationConfig,
) -> Result<(Simulation, Vec<usize>), ConfigError> {
    let networks = figure1_networks();
    let topology = Topology::figure1();
    let (profiles, groups) = mobility_profiles(&topology, config.total_slots);
    let mut factories = mobility_factories(&networks, &topology)?;
    let mut simulation = Simulation::new(networks, topology, config);
    for profile in profiles {
        let area = profile.area.0 as usize;
        simulation.add_device(profile.build_setup(factories[area].build(kind)?));
    }
    Ok((simulation, groups))
}

/// Engine-path counterpart of [`mobility_simulation`]: the Figure-1 mobility
/// world as a recorder-equipped environment plus a fleet configured by
/// `fleet_config`, with the same device groups.
///
/// # Errors
///
/// Propagates [`ConfigError`] from policy construction.
#[allow(clippy::type_complexity)]
pub fn mobility_environment(
    kind: PolicyKind,
    config: SimulationConfig,
    fleet_config: FleetConfig,
) -> Result<((CongestionEnvironment, FleetEngine), Vec<usize>), ConfigError> {
    let networks = figure1_networks();
    let topology = Topology::figure1();
    let (profiles, groups) = mobility_profiles(&topology, config.total_slots);
    let mut factories = mobility_factories(&networks, &topology)?;
    let pair = environment_pair(
        networks,
        topology,
        profiles,
        config,
        fleet_config,
        |fleet, profiles| {
            for profile in profiles {
                fleet.add_fleet(&mut factories[profile.area.0 as usize], kind, 1)?;
            }
            Ok(())
        },
    )?;
    Ok((pair, groups))
}

/// Human-readable labels of the mobility groups returned by
/// [`mobility_simulation`].
#[must_use]
pub fn mobility_group_labels() -> [&'static str; 4] {
    [
        "devices 1-8 (moving)",
        "devices 9-10 (food court)",
        "devices 11-15 (study area)",
        "devices 16-20 (bus stop)",
    ]
}

/// The controlled-experiment (testbed) scenario of §VII-A: 14 devices, 3 APs,
/// noisy unequal sharing, 480 slots. `leave_after` removes 9 of the 14
/// devices after that slot (the dynamic experiment of Figure 14).
///
/// # Errors
///
/// Propagates [`ConfigError`] from policy construction.
pub fn controlled_simulation(
    kind: PolicyKind,
    total_slots: usize,
    leave_after: Option<usize>,
) -> Result<Simulation, ConfigError> {
    let networks = netsim::testbed::testbed_networks();
    let config = SimulationConfig {
        total_slots,
        sharing: SharingModel::testbed(),
        ..SimulationConfig::default()
    };
    let mut factory = factory_for(&networks)?;
    let mut simulation = Simulation::single_area(networks, config);
    for id in 0..netsim::testbed::TESTBED_DEVICES as u32 {
        let mut setup = DeviceSetup::new(id, factory.build(kind)?);
        if let Some(leave_slot) = leave_after {
            if id >= 5 {
                // Devices 5..14 (9 devices) leave after `leave_slot`.
                setup = setup.active_between(0, Some(leave_slot));
            }
        }
        simulation.add_device(setup);
    }
    Ok(simulation)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_settings_have_twenty_devices_and_33_mbps() {
        for setting in StaticSetting::both() {
            assert_eq!(setting.devices(), 20);
            let total: f64 = setting.networks().iter().map(|n| n.bandwidth_mbps).sum();
            assert_eq!(total, 33.0);
        }
    }

    #[test]
    fn homogeneous_simulation_builds_all_devices() {
        let simulation = homogeneous_simulation(
            setting1_networks(),
            PolicyKind::SmartExp3,
            20,
            SimulationConfig::quick(10),
        )
        .unwrap();
        assert_eq!(simulation.device_count(), 20);
    }

    #[test]
    fn mixed_simulation_reports_kinds_in_device_order() {
        let (simulation, kinds) = mixed_simulation(
            setting1_networks(),
            &[(PolicyKind::SmartExp3, 3), (PolicyKind::Greedy, 2)],
            SimulationConfig::quick(10),
        )
        .unwrap();
        assert_eq!(simulation.device_count(), 5);
        assert_eq!(kinds.len(), 5);
        assert_eq!(
            kinds.iter().filter(|k| **k == PolicyKind::Greedy).count(),
            2
        );
    }

    #[test]
    fn dynamic_settings_have_expected_population() {
        let config = SimulationConfig::quick(1200);
        for (setting, expected) in [
            (DynamicSetting::DevicesJoinAndLeave, 20),
            (DynamicSetting::DevicesLeave, 20),
        ] {
            let simulation = setting.build(PolicyKind::SmartExp3, config).unwrap();
            assert_eq!(simulation.device_count(), expected);
            assert!(setting.persistent_devices() < expected);
        }
    }

    #[test]
    fn mobility_simulation_has_twenty_devices_in_four_groups() {
        let (simulation, groups) =
            mobility_simulation(PolicyKind::SmartExp3, SimulationConfig::quick(50)).unwrap();
        assert_eq!(simulation.device_count(), 20);
        assert_eq!(groups.len(), 20);
        for group in 0..4 {
            assert!(groups.contains(&group), "group {group} missing");
        }
        assert_eq!(mobility_group_labels().len(), 4);
    }

    #[test]
    fn controlled_simulation_matches_testbed_population() {
        let simulation = controlled_simulation(PolicyKind::Greedy, 60, Some(30)).unwrap();
        assert_eq!(simulation.device_count(), 14);
    }
}
