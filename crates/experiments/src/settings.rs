//! Scenario builders for every setting the paper evaluates.

use netsim::{
    figure1_networks, setting1_networks, setting2_networks, AreaId, DeviceSetup, NetworkSpec,
    SharingModel, Simulation, SimulationConfig, Topology,
};
use serde::{Deserialize, Serialize};
use smartexp3_core::{ConfigError, PolicyFactory, PolicyKind};

/// The two static simulation settings of §VI-A (20 devices, 3 networks,
/// 33 Mbps aggregate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StaticSetting {
    /// Non-uniform rates 4 / 7 / 22 Mbps (unique Nash equilibrium).
    Setting1,
    /// Uniform rates 11 / 11 / 11 Mbps (three symmetric equilibria).
    Setting2,
}

impl StaticSetting {
    /// Both static settings.
    #[must_use]
    pub fn both() -> [StaticSetting; 2] {
        [StaticSetting::Setting1, StaticSetting::Setting2]
    }

    /// Display label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            StaticSetting::Setting1 => "Setting 1",
            StaticSetting::Setting2 => "Setting 2",
        }
    }

    /// The networks of the setting.
    #[must_use]
    pub fn networks(&self) -> Vec<NetworkSpec> {
        match self {
            StaticSetting::Setting1 => setting1_networks(),
            StaticSetting::Setting2 => setting2_networks(),
        }
    }

    /// Number of devices the paper uses in this setting.
    #[must_use]
    pub fn devices(&self) -> usize {
        20
    }
}

/// Builds a [`PolicyFactory`] over `networks`.
///
/// # Errors
///
/// Propagates [`ConfigError`] from the factory constructor.
pub fn factory_for(networks: &[NetworkSpec]) -> Result<PolicyFactory, ConfigError> {
    PolicyFactory::new(networks.iter().map(|n| (n.id, n.bandwidth_mbps)).collect())
}

/// Builds a single-area simulation with `devices` devices all running `kind`.
///
/// # Errors
///
/// Propagates [`ConfigError`] from policy construction.
pub fn homogeneous_simulation(
    networks: Vec<NetworkSpec>,
    kind: PolicyKind,
    devices: usize,
    config: SimulationConfig,
) -> Result<Simulation, ConfigError> {
    let mut factory = factory_for(&networks)?;
    let mut simulation = Simulation::single_area(networks, config);
    for id in 0..devices {
        let mut setup = DeviceSetup::new(id as u32, factory.build(kind)?);
        if kind.needs_full_information() {
            setup = setup.with_full_information();
        }
        simulation.add_device(setup);
    }
    Ok(simulation)
}

/// Builds a single-area simulation with a mix of policies: `counts` lists how
/// many devices run each kind (used by the robustness scenarios of Fig. 11 and
/// the mixed controlled experiment of Fig. 15). Returns the simulation and,
/// for each device id, the kind it runs.
///
/// # Errors
///
/// Propagates [`ConfigError`] from policy construction.
pub fn mixed_simulation(
    networks: Vec<NetworkSpec>,
    counts: &[(PolicyKind, usize)],
    config: SimulationConfig,
) -> Result<(Simulation, Vec<PolicyKind>), ConfigError> {
    let mut factory = factory_for(&networks)?;
    let mut simulation = Simulation::single_area(networks, config);
    let mut kinds = Vec::new();
    let mut id = 0u32;
    for &(kind, count) in counts {
        for _ in 0..count {
            let mut setup = DeviceSetup::new(id, factory.build(kind)?);
            if kind.needs_full_information() {
                setup = setup.with_full_information();
            }
            simulation.add_device(setup);
            kinds.push(kind);
            id += 1;
        }
    }
    Ok((simulation, kinds))
}

/// The dynamic settings of §VI-A (Figures 7 and 8); all devices run `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DynamicSetting {
    /// Dynamic setting 1: 11 devices stay throughout; 9 more join at slot 401
    /// and leave after slot 800.
    DevicesJoinAndLeave,
    /// Dynamic setting 2: 16 devices leave after slot 600, freeing resources
    /// for the remaining 4.
    DevicesLeave,
}

impl DynamicSetting {
    /// Display label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            DynamicSetting::DevicesJoinAndLeave => "9 devices join at t=401, leave after t=800",
            DynamicSetting::DevicesLeave => "16 devices leave after t=600",
        }
    }

    /// Number of devices that stay for the whole run.
    #[must_use]
    pub fn persistent_devices(&self) -> usize {
        match self {
            DynamicSetting::DevicesJoinAndLeave => 11,
            DynamicSetting::DevicesLeave => 4,
        }
    }

    /// Builds the simulation (3 networks at 4/7/22 Mbps as in the paper).
    ///
    /// The join/leave slots are scaled proportionally if `config.total_slots`
    /// differs from the paper's 1200.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`] from policy construction.
    pub fn build(
        &self,
        kind: PolicyKind,
        config: SimulationConfig,
    ) -> Result<Simulation, ConfigError> {
        let networks = setting1_networks();
        let mut factory = factory_for(&networks)?;
        let mut simulation = Simulation::single_area(networks, config);
        let scale = |slot: usize| slot * config.total_slots / 1200;
        match self {
            DynamicSetting::DevicesJoinAndLeave => {
                for id in 0..11u32 {
                    simulation.add_device(DeviceSetup::new(id, factory.build(kind)?));
                }
                for id in 11..20u32 {
                    simulation.add_device(
                        DeviceSetup::new(id, factory.build(kind)?)
                            .active_between(scale(400), Some(scale(800))),
                    );
                }
            }
            DynamicSetting::DevicesLeave => {
                for id in 0..4u32 {
                    simulation.add_device(DeviceSetup::new(id, factory.build(kind)?));
                }
                for id in 4..20u32 {
                    simulation.add_device(
                        DeviceSetup::new(id, factory.build(kind)?)
                            .active_between(0, Some(scale(600))),
                    );
                }
            }
        }
        Ok(simulation)
    }
}

/// The mobility scenario of §VI-A setting 3 (Figure 9): the Figure 1 map with
/// 20 devices, 8 of which move from the food court to the study area at slot
/// 401 and on to the bus stop at slot 801.
///
/// Returns the simulation and, per device id, its *group* for reporting:
/// 0 = moving devices (1–8), 1 = food-court stayers (9–10),
/// 2 = study-area devices (11–15), 3 = bus-stop devices (16–20).
///
/// # Errors
///
/// Propagates [`ConfigError`] from policy construction.
pub fn mobility_simulation(
    kind: PolicyKind,
    config: SimulationConfig,
) -> Result<(Simulation, Vec<usize>), ConfigError> {
    let networks = figure1_networks();
    let topology = Topology::figure1();
    let scale = |slot: usize| slot * config.total_slots / 1200;
    let mut simulation = Simulation::new(networks.clone(), topology.clone(), config);
    let mut groups = Vec::new();

    // Policies are constructed over the networks visible from the device's
    // starting area (a device cannot know about networks it has never seen).
    let area_factory = |area: AreaId| -> Result<PolicyFactory, ConfigError> {
        let visible = topology.networks_in(area);
        PolicyFactory::new(
            networks
                .iter()
                .filter(|n| visible.contains(&n.id))
                .map(|n| (n.id, n.bandwidth_mbps))
                .collect(),
        )
    };

    // Devices 1-8 (ids 0-7): food court, moving at t=401 and t=801.
    let mut food_court = area_factory(AreaId(0))?;
    for id in 0..8u32 {
        simulation.add_device(
            DeviceSetup::new(id, food_court.build(kind)?)
                .in_area(AreaId(0))
                .moving_to(scale(400), AreaId(1))
                .moving_to(scale(800), AreaId(2)),
        );
        groups.push(0);
    }
    // Devices 9-10 (ids 8-9): food court, stationary.
    for id in 8..10u32 {
        simulation.add_device(DeviceSetup::new(id, food_court.build(kind)?).in_area(AreaId(0)));
        groups.push(1);
    }
    // Devices 11-15 (ids 10-14): study area.
    let mut study = area_factory(AreaId(1))?;
    for id in 10..15u32 {
        simulation.add_device(DeviceSetup::new(id, study.build(kind)?).in_area(AreaId(1)));
        groups.push(2);
    }
    // Devices 16-20 (ids 15-19): bus stop.
    let mut bus_stop = area_factory(AreaId(2))?;
    for id in 15..20u32 {
        simulation.add_device(DeviceSetup::new(id, bus_stop.build(kind)?).in_area(AreaId(2)));
        groups.push(3);
    }
    Ok((simulation, groups))
}

/// Human-readable labels of the mobility groups returned by
/// [`mobility_simulation`].
#[must_use]
pub fn mobility_group_labels() -> [&'static str; 4] {
    [
        "devices 1-8 (moving)",
        "devices 9-10 (food court)",
        "devices 11-15 (study area)",
        "devices 16-20 (bus stop)",
    ]
}

/// The controlled-experiment (testbed) scenario of §VII-A: 14 devices, 3 APs,
/// noisy unequal sharing, 480 slots. `leave_after` removes 9 of the 14
/// devices after that slot (the dynamic experiment of Figure 14).
///
/// # Errors
///
/// Propagates [`ConfigError`] from policy construction.
pub fn controlled_simulation(
    kind: PolicyKind,
    total_slots: usize,
    leave_after: Option<usize>,
) -> Result<Simulation, ConfigError> {
    let networks = netsim::testbed::testbed_networks();
    let config = SimulationConfig {
        total_slots,
        sharing: SharingModel::testbed(),
        ..SimulationConfig::default()
    };
    let mut factory = factory_for(&networks)?;
    let mut simulation = Simulation::single_area(networks, config);
    for id in 0..netsim::testbed::TESTBED_DEVICES as u32 {
        let mut setup = DeviceSetup::new(id, factory.build(kind)?);
        if let Some(leave_slot) = leave_after {
            if id >= 5 {
                // Devices 5..14 (9 devices) leave after `leave_slot`.
                setup = setup.active_between(0, Some(leave_slot));
            }
        }
        simulation.add_device(setup);
    }
    Ok(simulation)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_settings_have_twenty_devices_and_33_mbps() {
        for setting in StaticSetting::both() {
            assert_eq!(setting.devices(), 20);
            let total: f64 = setting.networks().iter().map(|n| n.bandwidth_mbps).sum();
            assert_eq!(total, 33.0);
        }
    }

    #[test]
    fn homogeneous_simulation_builds_all_devices() {
        let simulation = homogeneous_simulation(
            setting1_networks(),
            PolicyKind::SmartExp3,
            20,
            SimulationConfig::quick(10),
        )
        .unwrap();
        assert_eq!(simulation.device_count(), 20);
    }

    #[test]
    fn mixed_simulation_reports_kinds_in_device_order() {
        let (simulation, kinds) = mixed_simulation(
            setting1_networks(),
            &[(PolicyKind::SmartExp3, 3), (PolicyKind::Greedy, 2)],
            SimulationConfig::quick(10),
        )
        .unwrap();
        assert_eq!(simulation.device_count(), 5);
        assert_eq!(kinds.len(), 5);
        assert_eq!(
            kinds.iter().filter(|k| **k == PolicyKind::Greedy).count(),
            2
        );
    }

    #[test]
    fn dynamic_settings_have_expected_population() {
        let config = SimulationConfig::quick(1200);
        for (setting, expected) in [
            (DynamicSetting::DevicesJoinAndLeave, 20),
            (DynamicSetting::DevicesLeave, 20),
        ] {
            let simulation = setting.build(PolicyKind::SmartExp3, config).unwrap();
            assert_eq!(simulation.device_count(), expected);
            assert!(setting.persistent_devices() < expected);
        }
    }

    #[test]
    fn mobility_simulation_has_twenty_devices_in_four_groups() {
        let (simulation, groups) =
            mobility_simulation(PolicyKind::SmartExp3, SimulationConfig::quick(50)).unwrap();
        assert_eq!(simulation.device_count(), 20);
        assert_eq!(groups.len(), 20);
        for group in 0..4 {
            assert!(groups.contains(&group), "group {group} missing");
        }
        assert_eq!(mobility_group_labels().len(), 4);
    }

    #[test]
    fn controlled_simulation_matches_testbed_population() {
        let simulation = controlled_simulation(PolicyKind::Greedy, 60, Some(30)).unwrap();
        assert_eq!(simulation.device_count(), 14);
    }
}
