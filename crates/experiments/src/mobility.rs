//! Figures 9 and 10 — devices moving across service areas (setting 3 of
//! §VI-A, the Figure 1 map).
//!
//! Figure 9 plots the distance to equilibrium separately for the moving
//! devices and for the devices of each area; Figure 10 compares the number of
//! switches incurred by devices that stay for the whole experiment across the
//! static and dynamic settings.
//!
//! Reproduction note: the per-group distance here is computed against the
//! Nash allocation of the *whole* five-network game (all 20 devices), because
//! the exact constrained equilibrium of the area-restricted game changes as
//! devices move. This keeps the metric consistent across groups and preserves
//! the figure's comparative shape; see EXPERIMENTS.md.

use crate::config::Scale;
use crate::report::{cell, format_series, format_table};
use crate::runner::{average_series, downsample, run_environment, run_many};
use crate::settings::{
    homogeneous_environment, mobility_environment, mobility_group_labels, DynamicSetting,
    StaticSetting,
};
use congestion_game::{nash_allocation, ResourceSelectionGame};
use netsim::{figure1_networks, SimulationConfig};
use smartexp3_core::PolicyKind;
use std::fmt;

/// The algorithms Figure 9 compares.
#[must_use]
pub fn mobility_algorithms() -> [PolicyKind; 4] {
    [
        PolicyKind::Exp3,
        PolicyKind::SmartExp3WithoutReset,
        PolicyKind::SmartExp3,
        PolicyKind::Greedy,
    ]
}

/// Per-group distance curves of one algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct MobilityCurves {
    /// The algorithm.
    pub algorithm: PolicyKind,
    /// `groups[g]` is the averaged distance series of group `g` (see
    /// [`mobility_group_labels`]).
    pub groups: Vec<Vec<f64>>,
}

/// The regenerated Figure 9, plus the Figure 10 switch counts.
#[derive(Debug, Clone, PartialEq)]
pub struct MobilityResult {
    /// One entry per algorithm.
    pub curves: Vec<MobilityCurves>,
    /// Figure 10: average switches of persistent devices, per scenario label.
    pub persistent_switches: Vec<(String, f64)>,
}

/// Runs the Figure 9 experiment (per-group distance curves).
#[must_use]
pub fn run(scale: &Scale) -> MobilityResult {
    run_for(scale, &mobility_algorithms())
}

/// Runs Figure 9 for a custom set of algorithms, and Figure 10 for Smart EXP3.
#[must_use]
pub fn run_for(scale: &Scale, algorithms: &[PolicyKind]) -> MobilityResult {
    let game = ResourceSelectionGame::new(
        figure1_networks()
            .iter()
            .map(|n| (n.id, n.bandwidth_mbps))
            .collect::<Vec<_>>(),
    );
    let config = SimulationConfig {
        total_slots: scale.slots,
        keep_selections: true,
        ..SimulationConfig::default()
    };

    let mut curves = Vec::new();
    for &algorithm in algorithms {
        let per_run: Vec<Vec<Vec<f64>>> = run_many(scale, |seed| {
            let ((env, fleet), groups) =
                mobility_environment(algorithm, config, scale.fleet_config(seed))
                    .expect("mobility scenario construction cannot fail");
            let result = run_environment(env, fleet, scale.slots);
            let equilibrium = nash_allocation(&game, groups.len());
            result
                .group_distance_series(&game, &equilibrium, &groups, 4)
                .expect("selections were kept")
        });
        let mut groups = Vec::new();
        for group in 0..4 {
            let series: Vec<Vec<f64>> = per_run.iter().map(|run| run[group].clone()).collect();
            groups.push(average_series(&series));
        }
        curves.push(MobilityCurves { algorithm, groups });
    }

    MobilityResult {
        curves,
        persistent_switches: persistent_switches(scale),
    }
}

/// Figure 10 — average switches of devices present for the whole run, for
/// Smart EXP3, across the static and dynamic settings.
#[must_use]
pub fn persistent_switches(scale: &Scale) -> Vec<(String, f64)> {
    let config = SimulationConfig {
        total_slots: scale.slots,
        ..SimulationConfig::default()
    };
    let mut rows = Vec::new();

    for setting in StaticSetting::both() {
        let switches: Vec<f64> = run_many(scale, |seed| {
            let (env, fleet) = homogeneous_environment(
                setting.networks(),
                PolicyKind::SmartExp3,
                setting.devices(),
                config,
                scale.fleet_config(seed),
            )
            .expect("static scenario construction cannot fail");
            let result = run_environment(env, fleet, scale.slots);
            mean(&result.switch_counts())
        });
        rows.push((format!("static ({})", setting.label()), mean(&switches)));
    }

    for (setting, label) in [
        (
            DynamicSetting::DevicesJoinAndLeave,
            "dynamic setting 1 (11 persistent devices)",
        ),
        (
            DynamicSetting::DevicesLeave,
            "dynamic setting 2 (4 persistent devices)",
        ),
    ] {
        let persistent = setting.persistent_devices();
        let switches: Vec<f64> = run_many(scale, |seed| {
            let (env, fleet) = setting
                .build_environment(PolicyKind::SmartExp3, config, scale.fleet_config(seed))
                .expect("dynamic scenario construction cannot fail");
            let result = run_environment(env, fleet, scale.slots);
            let persistent_counts: Vec<f64> = result
                .devices
                .iter()
                .take(persistent)
                .map(|d| d.switches as f64)
                .collect();
            mean(&persistent_counts)
        });
        rows.push((label.to_string(), mean(&switches)));
    }

    // Mobility setting: moving devices (group 0) vs the other 12 devices.
    let moving_and_static: Vec<(f64, f64)> = run_many(scale, |seed| {
        let ((env, fleet), groups) = mobility_environment(
            PolicyKind::SmartExp3,
            SimulationConfig {
                total_slots: scale.slots,
                ..SimulationConfig::default()
            },
            scale.fleet_config(seed),
        )
        .expect("mobility scenario construction cannot fail");
        let result = run_environment(env, fleet, scale.slots);
        let moving: Vec<f64> = result
            .devices
            .iter()
            .filter(|d| groups.get(d.id.0 as usize) == Some(&0))
            .map(|d| d.switches as f64)
            .collect();
        let stationary: Vec<f64> = result
            .devices
            .iter()
            .filter(|d| groups.get(d.id.0 as usize) != Some(&0))
            .map(|d| d.switches as f64)
            .collect();
        (mean(&moving), mean(&stationary))
    });
    rows.push((
        "setting 3 (8 moving devices)".to_string(),
        mean(
            &moving_and_static
                .iter()
                .map(|(m, _)| *m)
                .collect::<Vec<_>>(),
        ),
    ));
    rows.push((
        "setting 3 (other 12 devices)".to_string(),
        mean(
            &moving_and_static
                .iter()
                .map(|(_, s)| *s)
                .collect::<Vec<_>>(),
        ),
    ));
    rows
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

impl fmt::Display for MobilityResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let labels = mobility_group_labels();
        for (group, label) in labels.iter().enumerate() {
            let bucket = self
                .curves
                .first()
                .and_then(|c| c.groups.get(group))
                .map(|s| (s.len() / 12).max(1))
                .unwrap_or(1);
            let series: Vec<(String, Vec<f64>)> = self
                .curves
                .iter()
                .map(|c| {
                    (
                        c.algorithm.label().to_string(),
                        downsample(&c.groups[group], bucket),
                    )
                })
                .collect();
            f.write_str(&format_series(
                &format!("Figure 9 — distance to Nash equilibrium (%), {label}"),
                bucket,
                &series,
            ))?;
        }
        let rows: Vec<Vec<String>> = self
            .persistent_switches
            .iter()
            .map(|(label, switches)| vec![label.clone(), cell(*switches)])
            .collect();
        f.write_str(&format_table(
            "Figure 10 — average switches of persistent devices (Smart EXP3)",
            &["scenario", "avg switches"],
            &rows,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mobility_curves_cover_all_groups() {
        let scale = Scale::quick().with_runs(1).with_slots(120);
        let result = run_for(&scale, &[PolicyKind::SmartExp3]);
        assert_eq!(result.curves.len(), 1);
        assert_eq!(result.curves[0].groups.len(), 4);
        for group in &result.curves[0].groups {
            assert_eq!(group.len(), 120);
        }
        assert_eq!(result.persistent_switches.len(), 6);
        assert!(result.to_string().contains("Figure 10"));
    }
}
