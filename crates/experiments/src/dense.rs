//! Dense-urban large-K sampling — linear vs tree CDF inversion.
//!
//! The paper's settings top out at a handful of networks per area, where the
//! O(K) linear CDF walk is free. A dense urban block advertises hundreds of
//! candidate networks, and at that scale sampling dominates the per-slot
//! cost. This experiment runs the scenario library's [`dense_urban`] world
//! twice from the same root seed — once with
//! [`SamplerStrategy::Linear`], once with [`SamplerStrategy::Tree`] — and
//! reports decisions/sec for each, plus the achieved mean gain so the two
//! configurations can be checked for equivalent decision quality.
//!
//! The two runs are *different pinned configurations* (the sampler is part
//! of the policy config), so their trajectories are each bit-stable but not
//! bit-identical to one another; distributionally they agree to within the
//! softmax cache's 1e-12 drift bound.

use crate::config::Scale;
use smartexp3_core::{PolicyKind, SamplerStrategy};
use smartexp3_env::{dense_urban, DenseUrbanConfig};
use std::fmt;
use std::time::Instant;

/// Networks per city block in the default comparison — the acceptance
/// point for the sublinear sampler.
pub const DEFAULT_NETWORKS: usize = 512;

/// Sessions in the default comparison (eight 64-device blocks).
pub const DEFAULT_SESSIONS: usize = 512;

/// One timed run of the dense-urban world under a fixed sampler strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrategyMeasurement {
    /// The CDF-inversion strategy measured.
    pub strategy: SamplerStrategy,
    /// Wall-clock seconds for the whole run.
    pub elapsed_s: f64,
    /// Decisions taken across the run.
    pub decisions: u64,
    /// Fleet-wide mean per-decision gain — the decision-quality check.
    pub mean_gain: f64,
}

impl StrategyMeasurement {
    /// Decisions per wall-clock second.
    #[must_use]
    pub fn decisions_per_sec(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.decisions as f64 / self.elapsed_s
        } else {
            f64::INFINITY
        }
    }
}

/// The linear-vs-tree comparison on one dense-urban world.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DenseResult {
    /// Networks per city block (the arm count `K`).
    pub networks_per_area: usize,
    /// Sessions in the world.
    pub sessions: usize,
    /// Slots stepped.
    pub slots: usize,
    /// The O(K) linear walk.
    pub linear: StrategyMeasurement,
    /// The O(log K) Fenwick descent.
    pub tree: StrategyMeasurement,
}

impl DenseResult {
    /// Tree throughput over linear throughput.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        let linear = self.linear.decisions_per_sec();
        if linear > 0.0 {
            self.tree.decisions_per_sec() / linear
        } else {
            f64::INFINITY
        }
    }
}

/// Times one dense-urban run under `strategy`. All runs share the scale's
/// first seed so the worlds are identical up to the sampler config.
fn measure(
    scale: &Scale,
    networks_per_area: usize,
    sessions: usize,
    strategy: SamplerStrategy,
) -> StrategyMeasurement {
    let dense = DenseUrbanConfig {
        networks_per_area,
        devices_per_area: DenseUrbanConfig::default().devices_per_area.min(sessions),
        sampler: strategy,
    };
    let mut scenario = dense_urban(
        sessions,
        PolicyKind::Exp3,
        scale.fleet_config(scale.seed(0)),
        dense,
    )
    .expect("static scenario construction cannot fail");
    let start = Instant::now();
    scenario.run(scale.slots);
    let elapsed_s = start.elapsed().as_secs_f64();
    let metrics = scenario.fleet.metrics();
    StrategyMeasurement {
        strategy,
        elapsed_s,
        decisions: metrics.decisions,
        mean_gain: metrics
            .kind(PolicyKind::Exp3)
            .map_or(0.0, |m| m.mean_gain()),
    }
}

/// Runs the comparison on a world of `networks_per_area` networks and
/// `sessions` sessions, `scale.slots` slots per run.
#[must_use]
pub fn run_with(scale: &Scale, networks_per_area: usize, sessions: usize) -> DenseResult {
    let linear = measure(scale, networks_per_area, sessions, SamplerStrategy::Linear);
    let tree = measure(scale, networks_per_area, sessions, SamplerStrategy::Tree);
    DenseResult {
        networks_per_area,
        sessions,
        slots: scale.slots,
        linear,
        tree,
    }
}

/// Runs the default comparison: [`DEFAULT_NETWORKS`] networks per block,
/// [`DEFAULT_SESSIONS`] sessions.
#[must_use]
pub fn run(scale: &Scale) -> DenseResult {
    run_with(scale, DEFAULT_NETWORKS, DEFAULT_SESSIONS)
}

impl fmt::Display for DenseResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Dense urban — K = {} networks/block, {} sessions, {} slots, EXP3",
            self.networks_per_area, self.sessions, self.slots
        )?;
        for m in [&self.linear, &self.tree] {
            writeln!(
                f,
                "{:<8} {:>12.0} decisions/s ({} decisions in {:.3} s), mean gain {:.4}",
                format!("{:?}", m.strategy),
                m.decisions_per_sec(),
                m.decisions,
                m.elapsed_s,
                m.mean_gain
            )?;
        }
        writeln!(f, "tree / linear speedup: {:.2}x", self.speedup())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_strategies_reach_the_same_decision_quality() {
        let scale = Scale::quick().with_slots(60);
        let result = run_with(&scale, 64, 32);
        assert_eq!(result.linear.decisions, result.tree.decisions);
        assert_eq!(result.linear.decisions, 60 * 32);
        // Same world, same seed, different pinned sampler configs: the
        // trajectories differ decision-for-decision but the achieved mean
        // gain must agree closely (both samplers invert the same CDF).
        let (a, b) = (result.linear.mean_gain, result.tree.mean_gain);
        assert!(a > 0.0 && b > 0.0);
        assert!(
            (a - b).abs() / a.max(b) < 0.25,
            "sampler strategies diverged in quality: linear {a:.4} vs tree {b:.4}"
        );
        let text = result.to_string();
        assert!(text.contains("Dense urban"));
        assert!(text.contains("speedup"));
    }
}
