//! Dense-urban large-K sampling — linear vs tree vs alias CDF inversion.
//!
//! The paper's settings top out at a handful of networks per area, where the
//! O(K) linear CDF walk is free. A dense urban block advertises hundreds of
//! candidate networks, and at that scale sampling dominates the per-slot
//! cost. This experiment runs the scenario library's [`dense_urban`] world
//! once per strategy from the same root seed — the O(K) linear walk, the
//! O(log K) Fenwick descent ([`SamplerStrategy::Tree`]) and the
//! amortised-O(1) alias table ([`SamplerStrategy::Alias`]) — and reports
//! decisions/sec for each, plus the achieved mean gain so the
//! configurations can be checked for equivalent decision quality, and the
//! alias run's rebuild/overlay counters so its amortisation is visible.
//!
//! The runs are *different pinned configurations* (the sampler is part of
//! the policy config), so their trajectories are each bit-stable but not
//! bit-identical to one another; distributionally they agree to within the
//! softmax cache's 1e-12 drift bound.

use crate::config::Scale;
use smartexp3_core::{PolicyKind, SamplerStrategy};
use smartexp3_env::{dense_urban, DenseUrbanConfig};
use std::fmt;
use std::time::Instant;

/// Networks per city block in the default comparison — the acceptance
/// point for the sublinear samplers.
pub const DEFAULT_NETWORKS: usize = 512;

/// Sessions in the default comparison (eight 64-device blocks).
pub const DEFAULT_SESSIONS: usize = 512;

/// The full sweep: every CDF-inversion strategy the weight table supports.
pub const ALL_STRATEGIES: [SamplerStrategy; 3] = [
    SamplerStrategy::Linear,
    SamplerStrategy::Tree,
    SamplerStrategy::Alias,
];

/// One timed run of the dense-urban world under a fixed sampler strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrategyMeasurement {
    /// The CDF-inversion strategy measured.
    pub strategy: SamplerStrategy,
    /// Wall-clock seconds for the whole run.
    pub elapsed_s: f64,
    /// Decisions taken across the run.
    pub decisions: u64,
    /// Fleet-wide mean per-decision gain — the decision-quality check.
    pub mean_gain: f64,
    /// Alias-table freezes across the run (0 for Linear/Tree).
    pub sampler_rebuilds: u64,
    /// Draws resolved from the dirty-arm overlay (0 for Linear/Tree).
    pub overlay_hits: u64,
}

impl StrategyMeasurement {
    /// Decisions per wall-clock second.
    #[must_use]
    pub fn decisions_per_sec(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.decisions as f64 / self.elapsed_s
        } else {
            f64::INFINITY
        }
    }
}

/// The sampler comparison on one dense-urban world: one measurement per
/// requested strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseResult {
    /// Networks per city block (the arm count `K`).
    pub networks_per_area: usize,
    /// Sessions in the world.
    pub sessions: usize,
    /// Slots stepped.
    pub slots: usize,
    /// One timed run per strategy, in sweep order.
    pub measurements: Vec<StrategyMeasurement>,
}

impl DenseResult {
    /// The measurement for `strategy`, when it was part of the sweep.
    #[must_use]
    pub fn strategy(&self, strategy: SamplerStrategy) -> Option<&StrategyMeasurement> {
        self.measurements.iter().find(|m| m.strategy == strategy)
    }

    /// Throughput of `strategy` over the linear walk's, when both ran.
    #[must_use]
    pub fn speedup_over_linear(&self, strategy: SamplerStrategy) -> Option<f64> {
        let linear = self.strategy(SamplerStrategy::Linear)?.decisions_per_sec();
        let other = self.strategy(strategy)?.decisions_per_sec();
        (linear > 0.0).then(|| other / linear)
    }

    /// Tree throughput over linear throughput (the historical headline).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.speedup_over_linear(SamplerStrategy::Tree)
            .unwrap_or(f64::INFINITY)
    }
}

/// Times one dense-urban run under `strategy`. All runs share the scale's
/// first seed so the worlds are identical up to the sampler config.
fn measure(
    scale: &Scale,
    networks_per_area: usize,
    sessions: usize,
    strategy: SamplerStrategy,
) -> StrategyMeasurement {
    let dense = DenseUrbanConfig {
        networks_per_area,
        devices_per_area: DenseUrbanConfig::default().devices_per_area.min(sessions),
        sampler: strategy,
    };
    let mut scenario = dense_urban(
        sessions,
        PolicyKind::Exp3,
        scale.fleet_config(scale.seed(0)),
        dense,
    )
    .expect("static scenario construction cannot fail");
    let start = Instant::now();
    scenario.run(scale.slots);
    let elapsed_s = start.elapsed().as_secs_f64();
    let metrics = scenario.fleet.metrics();
    let exp3 = metrics.kind(PolicyKind::Exp3);
    StrategyMeasurement {
        strategy,
        elapsed_s,
        decisions: metrics.decisions,
        mean_gain: exp3.map_or(0.0, |m| m.mean_gain()),
        sampler_rebuilds: exp3.map_or(0, |m| m.policy.sampler_rebuilds),
        overlay_hits: exp3.map_or(0, |m| m.policy.overlay_hits),
    }
}

/// Runs the comparison on a world of `networks_per_area` networks and
/// `sessions` sessions, `scale.slots` slots per run, sweeping `strategies`.
#[must_use]
pub fn run_strategies(
    scale: &Scale,
    networks_per_area: usize,
    sessions: usize,
    strategies: &[SamplerStrategy],
) -> DenseResult {
    DenseResult {
        networks_per_area,
        sessions,
        slots: scale.slots,
        measurements: strategies
            .iter()
            .map(|&strategy| measure(scale, networks_per_area, sessions, strategy))
            .collect(),
    }
}

/// Runs the full three-way comparison on a world of `networks_per_area`
/// networks and `sessions` sessions.
#[must_use]
pub fn run_with(scale: &Scale, networks_per_area: usize, sessions: usize) -> DenseResult {
    run_strategies(scale, networks_per_area, sessions, &ALL_STRATEGIES)
}

/// Runs the default comparison: [`DEFAULT_NETWORKS`] networks per block,
/// [`DEFAULT_SESSIONS`] sessions, all three strategies.
#[must_use]
pub fn run(scale: &Scale) -> DenseResult {
    run_with(scale, DEFAULT_NETWORKS, DEFAULT_SESSIONS)
}

impl fmt::Display for DenseResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Dense urban — K = {} networks/block, {} sessions, {} slots, EXP3",
            self.networks_per_area, self.sessions, self.slots
        )?;
        for m in &self.measurements {
            write!(
                f,
                "{:<8} {:>12.0} decisions/s ({} decisions in {:.3} s), mean gain {:.4}",
                format!("{:?}", m.strategy),
                m.decisions_per_sec(),
                m.decisions,
                m.elapsed_s,
                m.mean_gain
            )?;
            if m.strategy == SamplerStrategy::Alias {
                write!(
                    f,
                    ", {} rebuilds, {} overlay hits",
                    m.sampler_rebuilds, m.overlay_hits
                )?;
            }
            writeln!(f)?;
        }
        for strategy in [SamplerStrategy::Tree, SamplerStrategy::Alias] {
            if let Some(speedup) = self.speedup_over_linear(strategy) {
                writeln!(
                    f,
                    "{} / linear speedup: {speedup:.2}x",
                    format!("{strategy:?}").to_lowercase()
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_strategies_reach_the_same_decision_quality() {
        let scale = Scale::quick().with_slots(60);
        let result = run_with(&scale, 64, 32);
        assert_eq!(result.measurements.len(), 3);
        let linear = result.strategy(SamplerStrategy::Linear).unwrap();
        let tree = result.strategy(SamplerStrategy::Tree).unwrap();
        let alias = result.strategy(SamplerStrategy::Alias).unwrap();
        assert_eq!(linear.decisions, tree.decisions);
        assert_eq!(linear.decisions, alias.decisions);
        assert_eq!(linear.decisions, 60 * 32);
        // Same world, same seed, different pinned sampler configs: the
        // trajectories differ decision-for-decision but the achieved mean
        // gain must agree closely (all samplers invert the same CDF).
        for m in [tree, alias] {
            let (a, b) = (linear.mean_gain, m.mean_gain);
            assert!(a > 0.0 && b > 0.0);
            assert!(
                (a - b).abs() / a.max(b) < 0.25,
                "sampler strategies diverged in quality: linear {a:.4} vs {:?} {b:.4}",
                m.strategy
            );
        }
        // Only the alias run freezes tables; the counters prove the path ran.
        assert_eq!(linear.sampler_rebuilds, 0);
        assert_eq!(tree.sampler_rebuilds, 0);
        assert!(alias.sampler_rebuilds > 0);
        let text = result.to_string();
        assert!(text.contains("Dense urban"));
        assert!(text.contains("alias / linear speedup"));
    }

    #[test]
    fn single_strategy_sweeps_report_without_speedups() {
        let scale = Scale::quick().with_slots(20);
        let result = run_strategies(&scale, 32, 16, &[SamplerStrategy::Alias]);
        assert_eq!(result.measurements.len(), 1);
        assert!(result.speedup_over_linear(SamplerStrategy::Alias).is_none());
        assert!(!result.to_string().contains("speedup"));
    }
}
