//! Figures 7 and 8 — adaptability to devices joining and leaving the service
//! area (dynamic settings 1 and 2 of §VI-A), driven through the unified
//! engine path ([`run_environment`](crate::runner::run_environment)).

use crate::config::Scale;
use crate::report::format_series;
use crate::runner::{average_series, downsample, run_environment, run_many};
use crate::settings::DynamicSetting;
use netsim::SimulationConfig;
use smartexp3_core::PolicyKind;
use std::fmt;

/// The algorithms the dynamic-setting figures compare.
#[must_use]
pub fn dynamic_algorithms() -> [PolicyKind; 4] {
    [
        PolicyKind::Exp3,
        PolicyKind::SmartExp3WithoutReset,
        PolicyKind::SmartExp3,
        PolicyKind::Greedy,
    ]
}

/// Distance curve of one algorithm in one dynamic setting.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicsCurve {
    /// The algorithm.
    pub algorithm: PolicyKind,
    /// Average distance to Nash equilibrium per slot (over runs).
    pub distance: Vec<f64>,
}

/// The regenerated Figure 7 or Figure 8.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicsResult {
    /// Which dynamic setting was simulated.
    pub setting: DynamicSetting,
    /// One curve per algorithm.
    pub curves: Vec<DynamicsCurve>,
}

impl DynamicsResult {
    /// Mean distance of `algorithm` over the slots in `[from, to)`.
    #[must_use]
    pub fn mean_distance(&self, algorithm: PolicyKind, from: usize, to: usize) -> Option<f64> {
        let curve = self.curves.iter().find(|c| c.algorithm == algorithm)?;
        let to = to.min(curve.distance.len());
        let from = from.min(to);
        if from == to {
            return Some(0.0);
        }
        Some(curve.distance[from..to].iter().sum::<f64>() / (to - from) as f64)
    }
}

/// Runs a dynamic-setting experiment (Figure 7 with
/// [`DynamicSetting::DevicesJoinAndLeave`], Figure 8 with
/// [`DynamicSetting::DevicesLeave`]).
#[must_use]
pub fn run(scale: &Scale, setting: DynamicSetting) -> DynamicsResult {
    let curves = dynamic_algorithms()
        .into_iter()
        .map(|algorithm| {
            let series: Vec<Vec<f64>> = run_many(scale, |seed| {
                let (env, fleet) = setting
                    .build_environment(
                        algorithm,
                        SimulationConfig {
                            total_slots: scale.slots,
                            ..SimulationConfig::default()
                        },
                        scale.fleet_config(seed),
                    )
                    .expect("dynamic scenario construction cannot fail");
                run_environment(env, fleet, scale.slots).distance_to_nash
            });
            DynamicsCurve {
                algorithm,
                distance: average_series(&series),
            }
        })
        .collect();
    DynamicsResult { setting, curves }
}

impl fmt::Display for DynamicsResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let buckets = 12usize;
        let bucket = self
            .curves
            .first()
            .map(|c| (c.distance.len() / buckets).max(1))
            .unwrap_or(1);
        let series: Vec<(String, Vec<f64>)> = self
            .curves
            .iter()
            .map(|c| {
                (
                    c.algorithm.label().to_string(),
                    downsample(&c.distance, bucket),
                )
            })
            .collect();
        f.write_str(&format_series(
            &format!(
                "Figures 7/8 — distance to Nash equilibrium (%), dynamic setting: {}",
                self.setting.label()
            ),
            bucket,
            &series,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smart_exp3_recovers_after_devices_leave() {
        // Scaled-down version of Figure 8: 16 of 20 devices leave at 60 % of
        // the run; only algorithms with a reset mechanism rediscover the freed
        // resources.
        let scale = Scale::quick().with_runs(3).with_slots(800);
        let result = run(&scale, DynamicSetting::DevicesLeave);
        let departure = scale.slots * 600 / 1200;
        let tail_from = departure + (scale.slots - departure) / 2;
        let smart = result
            .mean_distance(PolicyKind::SmartExp3, tail_from, scale.slots)
            .unwrap();
        let greedy = result
            .mean_distance(PolicyKind::Greedy, tail_from, scale.slots)
            .unwrap();
        assert!(
            smart < greedy + 1e-9,
            "after resources are freed smart ({smart:.1}%) should do at least as well as greedy ({greedy:.1}%)"
        );
        assert!(result.to_string().contains("dynamic setting"));
    }
}
