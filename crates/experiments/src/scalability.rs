//! Figure 6 — scalability of Smart EXP3 w/o Reset: how the time to reach a
//! stable state grows with the number of networks (3/5/7, 20 devices) and
//! with the number of devices (20/40/80, 3 networks) — plus the fleet-scale
//! sweep measuring raw engine throughput on the replicated-congestion world.
//!
//! All runs go through the unified engine path
//! ([`run_environment`](crate::runner::run_environment)).

use crate::config::Scale;
use crate::report::{cell, format_table};
use crate::runner::{run_environment, run_many};
use crate::settings::homogeneous_environment;
use congestion_game::median;
use netsim::{NetworkSpec, SimulationConfig};
use smartexp3_core::PolicyKind;
use smartexp3_engine::FleetConfig;
use smartexp3_telemetry::RingSink;
use std::fmt;
use std::time::Instant;

/// One point of Figure 6.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalabilityPoint {
    /// Number of networks in the scenario.
    pub networks: usize,
    /// Number of devices in the scenario.
    pub devices: usize,
    /// Fraction of runs that reached a stable state.
    pub stable_fraction: f64,
    /// Fraction of runs stable at a Nash equilibrium.
    pub stable_at_nash_fraction: f64,
    /// Median slots to reach the stable state, over stable runs.
    pub median_slots_to_stable: Option<f64>,
}

/// The regenerated Figure 6.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalabilityResult {
    /// Varying number of networks (20 devices).
    pub by_networks: Vec<ScalabilityPoint>,
    /// Varying number of devices (3 networks).
    pub by_devices: Vec<ScalabilityPoint>,
}

/// Network sets used when sweeping the number of networks.
#[must_use]
pub fn network_sweep(count: usize) -> Vec<NetworkSpec> {
    let rates = [4.0, 7.0, 22.0, 10.0, 14.0, 5.0, 8.0];
    rates
        .iter()
        .take(count.clamp(1, rates.len()))
        .enumerate()
        .map(|(id, &rate)| {
            if id == 2 {
                NetworkSpec::cellular(id as u32, rate)
            } else {
                NetworkSpec::wifi(id as u32, rate)
            }
        })
        .collect()
}

fn measure(scale: &Scale, networks: Vec<NetworkSpec>, devices: usize) -> ScalabilityPoint {
    let network_count = networks.len();
    let outcomes: Vec<(Option<usize>, bool)> = run_many(scale, |seed| {
        let (env, fleet) = homogeneous_environment(
            networks.clone(),
            PolicyKind::SmartExp3WithoutReset,
            devices,
            SimulationConfig {
                total_slots: scale.slots,
                ..SimulationConfig::default()
            },
            scale.fleet_config(seed),
        )
        .expect("scalability scenario construction cannot fail");
        let result = run_environment(env, fleet, scale.slots);
        (result.stable_slot, result.stable_at_nash)
    });
    let runs = outcomes.len().max(1) as f64;
    let stable: Vec<f64> = outcomes
        .iter()
        .filter_map(|(slot, _)| slot.map(|s| s as f64))
        .collect();
    let at_nash = outcomes.iter().filter(|(_, nash)| *nash).count();
    ScalabilityPoint {
        networks: network_count,
        devices,
        stable_fraction: stable.len() as f64 / runs,
        stable_at_nash_fraction: at_nash as f64 / runs,
        median_slots_to_stable: if stable.is_empty() {
            None
        } else {
            Some(median(&stable))
        },
    }
}

/// Runs the Figure 6 experiment with the paper's sweeps (networks 3/5/7 at 20
/// devices; devices 20/40/80 at 3 networks).
#[must_use]
pub fn run(scale: &Scale) -> ScalabilityResult {
    run_with(scale, &[3, 5, 7], &[20, 40, 80])
}

/// Runs the Figure 6 experiment with custom sweeps.
#[must_use]
pub fn run_with(
    scale: &Scale,
    network_counts: &[usize],
    device_counts: &[usize],
) -> ScalabilityResult {
    let by_networks = network_counts
        .iter()
        .map(|&count| measure(scale, network_sweep(count), 20))
        .collect();
    let by_devices = device_counts
        .iter()
        .map(|&devices| measure(scale, network_sweep(3), devices))
        .collect();
    ScalabilityResult {
        by_networks,
        by_devices,
    }
}

/// One point of the fleet-scale throughput sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetScalePoint {
    /// Number of concurrent sessions.
    pub sessions: usize,
    /// Decisions per second sustained through the engine's streaming
    /// telemetry path on the replicated equal-share congestion world.
    pub decisions_per_sec: f64,
    /// Final-slot mean scaled gain (streaming telemetry).
    pub mean_gain: f64,
    /// Final-slot Jain fairness index of observed goodput.
    pub jain: f64,
    /// Final-slot mean per-area distance to equilibrium, percent.
    pub distance_mean_pct: f64,
}

/// Fleet-scale scalability: steps the replicated equal-share congestion
/// world (Smart EXP3 everywhere) for `slots` slots at each session count and
/// reports sustained decision throughput plus the final slot's streaming
/// quality metrics (mean gain, Jain index, distance to equilibrium) — so the
/// sweep shows *what the fleet converged to*, not just how fast it stepped.
/// `config` carries the engine's parallelism override (and the
/// partitioned-feedback switch), so thread-scaling sweeps are reproducible
/// from the CLI.
#[must_use]
pub fn fleet_sweep(
    session_counts: &[usize],
    slots: usize,
    config: FleetConfig,
) -> Vec<FleetScalePoint> {
    session_counts
        .iter()
        .map(|&sessions| {
            let mut scenario =
                smartexp3_env::equal_share(sessions, PolicyKind::SmartExp3, config.clone())
                    .expect("fleet sweep construction cannot fail");
            assert!(scenario.enable_telemetry());
            let mut sink = RingSink::new(1);
            let start = Instant::now();
            scenario.run_streaming(slots, &mut sink);
            let elapsed = start.elapsed().as_secs_f64().max(f64::EPSILON);
            let last = sink.latest().expect("the sweep runs at least one slot");
            FleetScalePoint {
                sessions,
                decisions_per_sec: (sessions * slots) as f64 / elapsed,
                mean_gain: last.metrics.mean_gain(),
                jain: last.metrics.jain(),
                distance_mean_pct: last.metrics.distance_mean(),
            }
        })
        .collect()
}

impl fmt::Display for ScalabilityResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows: Vec<Vec<String>> = self
            .by_networks
            .iter()
            .chain(self.by_devices.iter())
            .map(|p| {
                vec![
                    p.networks.to_string(),
                    p.devices.to_string(),
                    cell(p.stable_fraction * 100.0),
                    cell(p.stable_at_nash_fraction * 100.0),
                    p.median_slots_to_stable.map_or("-".to_string(), cell),
                ]
            })
            .collect();
        f.write_str(&format_table(
            "Figure 6 — scalability of Smart EXP3 w/o Reset",
            &[
                "networks",
                "devices",
                "% runs stable",
                "% stable at NE",
                "median slots to stable",
            ],
            &rows,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_networks_slow_down_stabilisation() {
        let scale = Scale::quick().with_runs(2).with_slots(900);
        let result = run_with(&scale, &[3, 5], &[20]);
        assert_eq!(result.by_networks.len(), 2);
        assert_eq!(result.by_devices.len(), 1);
        // Both sweeps should produce mostly-stable runs at this horizon.
        for point in result.by_networks.iter().chain(&result.by_devices) {
            assert!(point.stable_fraction > 0.0, "{point:?} never stabilised");
        }
        assert!(result.to_string().contains("Figure 6"));
    }

    #[test]
    fn network_sweep_produces_requested_sizes() {
        assert_eq!(network_sweep(3).len(), 3);
        assert_eq!(network_sweep(7).len(), 7);
        assert_eq!(network_sweep(100).len(), 7);
    }

    #[test]
    fn fleet_sweep_reports_positive_throughput_and_quality_metrics() {
        let points = fleet_sweep(&[200, 400], 5, FleetConfig::with_root_seed(1));
        assert_eq!(points.len(), 2);
        for point in &points {
            assert!(point.decisions_per_sec > 0.0, "{point:?}");
            assert!(point.mean_gain > 0.0, "{point:?}");
            assert!(point.jain > 0.0 && point.jain <= 1.0, "{point:?}");
            assert!(point.distance_mean_pct >= 0.0, "{point:?}");
        }
    }
}
