//! Plain-text rendering of experiment results (tables and figure-like series).

use std::fmt::Write as _;

/// Renders a fixed-width table with a header row.
#[must_use]
pub fn format_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (column, cell) in row.iter().enumerate() {
            if column >= widths.len() {
                widths.push(cell.len());
            } else {
                widths[column] = widths[column].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "## {title}");
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            format!(
                "{h:<width$}",
                width = widths.get(i).copied().unwrap_or(h.len())
            )
        })
        .collect();
    let _ = writeln!(out, "| {} |", header_line.join(" | "));
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    let _ = writeln!(out, "|-{}-|", rule.join("-|-"));
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| {
                format!(
                    "{c:<width$}",
                    width = widths.get(i).copied().unwrap_or(c.len())
                )
            })
            .collect();
        let _ = writeln!(out, "| {} |", cells.join(" | "));
    }
    out
}

/// Renders a per-slot series as labelled buckets (a textual stand-in for the
/// paper's line figures).
#[must_use]
pub fn format_series(
    title: &str,
    slot_bucket: usize,
    labelled_series: &[(String, Vec<f64>)],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## {title}");
    let buckets = labelled_series
        .iter()
        .map(|(_, s)| s.len())
        .max()
        .unwrap_or(0);
    let mut headers = vec!["series".to_string()];
    for bucket in 0..buckets {
        headers.push(format!("t≈{}", bucket * slot_bucket + slot_bucket / 2));
    }
    let header_line = headers.join(" | ");
    let _ = writeln!(out, "| {header_line} |");
    for (label, series) in labelled_series {
        let cells: Vec<String> = series.iter().map(|v| format!("{v:.1}")).collect();
        let _ = writeln!(out, "| {label} | {} |", cells.join(" | "));
    }
    out
}

/// Formats a float with one decimal, or `"-"` for non-finite values.
#[must_use]
pub fn cell(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.1}")
    } else {
        "-".to_string()
    }
}

/// Formats a float with two decimals, or `"-"` for non-finite values.
#[must_use]
pub fn cell2(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.2}")
    } else {
        "-".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_contains_every_cell() {
        let table = format_table(
            "Demo",
            &["algorithm", "switches"],
            &[
                vec!["EXP3".to_string(), "641".to_string()],
                vec!["Smart EXP3".to_string(), "65".to_string()],
            ],
        );
        assert!(table.contains("Demo"));
        assert!(table.contains("EXP3"));
        assert!(table.contains("65"));
    }

    #[test]
    fn series_lists_every_label() {
        let text = format_series(
            "Distance",
            100,
            &[
                ("Smart EXP3".to_string(), vec![10.0, 5.0]),
                ("Greedy".to_string(), vec![30.0, 30.0]),
            ],
        );
        assert!(text.contains("Smart EXP3"));
        assert!(text.contains("30.0"));
    }

    #[test]
    fn cells_handle_non_finite_values() {
        assert_eq!(cell(1.25), "1.2");
        assert_eq!(cell(f64::NAN), "-");
        assert_eq!(cell2(1.256), "1.26");
    }
}
