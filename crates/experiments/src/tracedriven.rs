//! Table VI and Figure 12 — trace-driven evaluation: Smart EXP3 vs Greedy on
//! four pairs of WiFi/cellular bit-rate traces.

use crate::config::Scale;
use crate::report::{cell, cell2, format_table};
use crate::runner::run_many;
use congestion_game::median;
use smartexp3_core::{Greedy, SmartExp3};
use std::fmt;
use tracegen::{
    paper_trace_pair, run_policy_on_pair, trace_networks, TracePair, TraceRunResult,
    TraceSimulationConfig,
};

/// Median download and switching cost of one algorithm on one trace pair.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceCells {
    /// Median cumulative download over the runs, MB.
    pub download_mb: f64,
    /// Median switching cost over the runs, MB.
    pub switching_cost_mb: f64,
    /// Median number of switches.
    pub switches: f64,
}

/// One row of Table VI (one trace pair).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRow {
    /// Paper trace index (1–4).
    pub trace: usize,
    /// Smart EXP3's numbers.
    pub smart: TraceCells,
    /// Greedy's numbers.
    pub greedy: TraceCells,
}

/// The regenerated Table VI.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDrivenResult {
    /// One row per trace pair.
    pub rows: Vec<TraceRow>,
}

fn summarize(runs: &[TraceRunResult]) -> TraceCells {
    TraceCells {
        download_mb: median(
            &runs
                .iter()
                .map(|r| r.download_megabytes)
                .collect::<Vec<_>>(),
        ),
        switching_cost_mb: median(
            &runs
                .iter()
                .map(|r| r.switching_cost_megabytes)
                .collect::<Vec<_>>(),
        ),
        switches: median(&runs.iter().map(|r| r.switches as f64).collect::<Vec<_>>()),
    }
}

/// Number of slots per trace (the paper's 25-minute traces at 15 s per slot).
pub const TRACE_SLOTS: usize = 100;

/// Generates the synthetic trace pair used for paper trace `index` (fixed seed
/// so every experiment and bench sees the same pair).
#[must_use]
pub fn trace_pair(index: usize) -> TracePair {
    paper_trace_pair(index, TRACE_SLOTS, 1000 + index as u64)
}

/// Runs the Table VI experiment.
#[must_use]
pub fn run(scale: &Scale) -> TraceDrivenResult {
    let config = TraceSimulationConfig::default();
    let rows = (1..=4)
        .map(|trace| {
            let pair = trace_pair(trace);
            let smart_runs: Vec<TraceRunResult> = run_many(scale, |seed| {
                let mut policy =
                    SmartExp3::with_defaults(trace_networks()).expect("two networks are valid");
                run_policy_on_pair(&mut policy, &pair, &config, seed)
            });
            let greedy_runs: Vec<TraceRunResult> = run_many(scale, |seed| {
                let mut policy = Greedy::new(trace_networks()).expect("two networks are valid");
                run_policy_on_pair(&mut policy, &pair, &config, seed)
            });
            TraceRow {
                trace,
                smart: summarize(&smart_runs),
                greedy: summarize(&greedy_runs),
            }
        })
        .collect();
    TraceDrivenResult { rows }
}

impl fmt::Display for TraceDrivenResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    format!("Trace {}", r.trace),
                    cell2(r.smart.download_mb),
                    cell2(r.smart.switching_cost_mb),
                    cell2(r.greedy.download_mb),
                    cell2(r.greedy.switching_cost_mb),
                ]
            })
            .collect();
        f.write_str(&format_table(
            "Table VI — trace-driven median download and switching cost (MB)",
            &[
                "trace",
                "Smart EXP3 download",
                "Smart EXP3 cost",
                "Greedy download",
                "Greedy cost",
            ],
            &rows,
        ))
    }
}

/// Figure 12 — the per-slot selection of a single representative Smart EXP3
/// run overlaid on the trace pair: `(wifi rate, cellular rate, rate obtained)`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceIllustration {
    /// Paper trace index.
    pub trace: usize,
    /// Per-slot `(wifi, cellular, obtained)` rates in Mbps.
    pub series: Vec<(f64, f64, f64)>,
}

/// Produces the Figure 12 illustration for `trace` (1 or 3 in the paper).
#[must_use]
pub fn illustrate(trace: usize, seed: u64) -> TraceIllustration {
    let pair = trace_pair(trace);
    let mut policy = SmartExp3::with_defaults(trace_networks()).expect("two networks are valid");
    let result = run_policy_on_pair(&mut policy, &pair, &TraceSimulationConfig::default(), seed);
    let series = result
        .selections
        .iter()
        .enumerate()
        .map(|(slot, &(_, rate))| (pair.wifi.rate_at(slot), pair.cellular.rate_at(slot), rate))
        .collect();
    TraceIllustration { trace, series }
}

impl fmt::Display for TraceIllustration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "## Figure 12 — trace {} selection overlay (every 10th slot)",
            self.trace
        )?;
        writeln!(f, "| slot | WiFi Mbps | cellular Mbps | Smart EXP3 Mbps |")?;
        for (slot, (wifi, cellular, chosen)) in self.series.iter().enumerate() {
            if slot % 10 == 0 {
                writeln!(
                    f,
                    "| {slot} | {} | {} | {} |",
                    cell(*wifi),
                    cell(*cellular),
                    cell(*chosen)
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smart_beats_greedy_on_trace3_and_matches_on_trace2() {
        let scale = Scale::quick().with_runs(3);
        let result = run(&scale);
        assert_eq!(result.rows.len(), 4);
        let trace3 = &result.rows[2];
        assert!(
            trace3.smart.download_mb > trace3.greedy.download_mb,
            "trace 3: smart {:.0} MB vs greedy {:.0} MB",
            trace3.smart.download_mb,
            trace3.greedy.download_mb
        );
        let trace2 = &result.rows[1];
        assert!(
            trace2.smart.download_mb > trace2.greedy.download_mb * 0.85,
            "trace 2: smart {:.0} MB should be close to greedy {:.0} MB",
            trace2.smart.download_mb,
            trace2.greedy.download_mb
        );
        // Smart explores, so it pays a visibly higher switching cost.
        assert!(trace3.smart.switching_cost_mb >= trace3.greedy.switching_cost_mb);
        assert!(result.to_string().contains("Table VI"));
    }

    #[test]
    fn illustration_covers_every_slot() {
        let illustration = illustrate(1, 7);
        assert_eq!(illustration.series.len(), TRACE_SLOTS);
        assert!(illustration.to_string().contains("Figure 12"));
    }
}
