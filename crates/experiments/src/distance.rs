//! Figure 4 — average distance to Nash equilibrium over time, for all nine
//! algorithms in both static settings (plus the time-at-equilibrium shares
//! quoted in the text of §VI-A).

use crate::config::Scale;
use crate::report::format_series;
use crate::runner::{average_series, downsample, run_many};
use crate::settings::{homogeneous_simulation, StaticSetting};
use netsim::SimulationConfig;
use smartexp3_core::PolicyKind;
use std::fmt;

/// Number of buckets used when rendering the series textually.
pub const SERIES_BUCKETS: usize = 12;

/// Distance-to-equilibrium curve of one algorithm in one setting.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceCurve {
    /// The algorithm.
    pub algorithm: PolicyKind,
    /// The static setting.
    pub setting: StaticSetting,
    /// Average (over runs) distance to Nash equilibrium per slot.
    pub distance: Vec<f64>,
    /// Average fraction of slots spent at an exact Nash equilibrium.
    pub fraction_time_at_nash: f64,
    /// Average fraction of slots spent at an ε-equilibrium (ε = 7.5 %).
    pub fraction_time_at_epsilon: f64,
}

impl DistanceCurve {
    /// Mean distance over the final quarter of the run (a convergence proxy).
    #[must_use]
    pub fn final_distance(&self) -> f64 {
        let n = self.distance.len();
        if n == 0 {
            return 0.0;
        }
        let from = n - n / 4 - 1;
        self.distance[from..].iter().sum::<f64>() / (n - from) as f64
    }
}

/// The regenerated Figure 4.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceResult {
    /// One curve per (algorithm, setting).
    pub curves: Vec<DistanceCurve>,
}

impl DistanceResult {
    /// Looks up the curve of `algorithm` in `setting`.
    #[must_use]
    pub fn curve(&self, algorithm: PolicyKind, setting: StaticSetting) -> Option<&DistanceCurve> {
        self.curves
            .iter()
            .find(|c| c.algorithm == algorithm && c.setting == setting)
    }
}

/// Runs the Figure 4 experiment for the given algorithms (use
/// [`PolicyKind::all`] for the full figure).
#[must_use]
pub fn run_for(scale: &Scale, algorithms: &[PolicyKind]) -> DistanceResult {
    let mut curves = Vec::new();
    for setting in StaticSetting::both() {
        for &algorithm in algorithms {
            let runs: Vec<(Vec<f64>, f64, f64)> = run_many(scale, |seed| {
                let simulation = homogeneous_simulation(
                    setting.networks(),
                    algorithm,
                    setting.devices(),
                    SimulationConfig {
                        total_slots: scale.slots,
                        ..SimulationConfig::default()
                    },
                )
                .expect("static scenario construction cannot fail");
                let result = simulation.run(seed);
                (
                    result.distance_to_nash,
                    result.fraction_time_at_nash,
                    result.fraction_time_at_epsilon,
                )
            });
            let series: Vec<Vec<f64>> = runs.iter().map(|(s, _, _)| s.clone()).collect();
            let n = runs.len().max(1) as f64;
            curves.push(DistanceCurve {
                algorithm,
                setting,
                distance: average_series(&series),
                fraction_time_at_nash: runs.iter().map(|(_, a, _)| a).sum::<f64>() / n,
                fraction_time_at_epsilon: runs.iter().map(|(_, _, b)| b).sum::<f64>() / n,
            });
        }
    }
    DistanceResult { curves }
}

/// Runs the full Figure 4 (all nine algorithms).
#[must_use]
pub fn run(scale: &Scale) -> DistanceResult {
    run_for(scale, &PolicyKind::all())
}

impl fmt::Display for DistanceResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for setting in StaticSetting::both() {
            let curves: Vec<(String, Vec<f64>)> = self
                .curves
                .iter()
                .filter(|c| c.setting == setting)
                .map(|c| {
                    let bucket = (c.distance.len() / SERIES_BUCKETS).max(1);
                    (
                        c.algorithm.label().to_string(),
                        downsample(&c.distance, bucket),
                    )
                })
                .collect();
            if curves.is_empty() {
                continue;
            }
            let bucket = self
                .curves
                .iter()
                .find(|c| c.setting == setting)
                .map(|c| (c.distance.len() / SERIES_BUCKETS).max(1))
                .unwrap_or(1);
            f.write_str(&format_series(
                &format!(
                    "Figure 4 — average distance to Nash equilibrium (%), {}",
                    setting.label()
                ),
                bucket,
                &curves,
            ))?;
            for curve in self.curves.iter().filter(|c| c.setting == setting) {
                if curve.algorithm == PolicyKind::SmartExp3 {
                    writeln!(
                        f,
                        "Smart EXP3 time at NE: {:.1} %, time at ε-equilibrium (ε=7.5): {:.1} %",
                        curve.fraction_time_at_nash * 100.0,
                        curve.fraction_time_at_epsilon * 100.0
                    )?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smart_exp3_ends_closer_to_equilibrium_than_fixed_random() {
        let scale = Scale::quick().with_runs(2).with_slots(400);
        let result = run_for(
            &scale,
            &[
                PolicyKind::SmartExp3,
                PolicyKind::FixedRandom,
                PolicyKind::Centralized,
            ],
        );
        for setting in StaticSetting::both() {
            let smart = result.curve(PolicyKind::SmartExp3, setting).unwrap();
            let random = result.curve(PolicyKind::FixedRandom, setting).unwrap();
            let central = result.curve(PolicyKind::Centralized, setting).unwrap();
            assert!(central.final_distance() < 1e-6);
            assert!(
                smart.final_distance() <= random.final_distance() + 5.0,
                "{}: smart {:.1} vs fixed-random {:.1}",
                setting.label(),
                smart.final_distance(),
                random.final_distance()
            );
        }
        assert!(result.to_string().contains("Figure 4"));
    }
}
