//! Figure 5 — fairness: the standard deviation of the per-device cumulative
//! downloads (lower = fairer).

use crate::config::Scale;
use crate::report::{cell, format_table};
use crate::runner::run_many;
use crate::settings::{homogeneous_simulation, StaticSetting};
use congestion_game::{jain_index, standard_deviation};
use netsim::SimulationConfig;
use smartexp3_core::PolicyKind;
use std::fmt;

/// One bar of Figure 5.
#[derive(Debug, Clone, PartialEq)]
pub struct FairnessRow {
    /// The algorithm.
    pub algorithm: PolicyKind,
    /// The static setting.
    pub setting: StaticSetting,
    /// Mean over runs of the per-run standard deviation of device downloads,
    /// in MB (the paper's fairness measure).
    pub std_dev_mb: f64,
    /// Mean Jain's fairness index (supplementary; 1 = perfectly fair).
    pub jain: f64,
}

/// The regenerated Figure 5.
#[derive(Debug, Clone, PartialEq)]
pub struct FairnessResult {
    /// One row per (algorithm, setting).
    pub rows: Vec<FairnessRow>,
}

impl FairnessResult {
    /// Looks up the row of `algorithm` in `setting`.
    #[must_use]
    pub fn row(&self, algorithm: PolicyKind, setting: StaticSetting) -> Option<&FairnessRow> {
        self.rows
            .iter()
            .find(|r| r.algorithm == algorithm && r.setting == setting)
    }
}

/// Runs the Figure 5 experiment for the given algorithms.
#[must_use]
pub fn run_for(scale: &Scale, algorithms: &[PolicyKind]) -> FairnessResult {
    let mut rows = Vec::new();
    for setting in StaticSetting::both() {
        for &algorithm in algorithms {
            let per_run: Vec<(f64, f64)> = run_many(scale, |seed| {
                let simulation = homogeneous_simulation(
                    setting.networks(),
                    algorithm,
                    setting.devices(),
                    SimulationConfig {
                        total_slots: scale.slots,
                        ..SimulationConfig::default()
                    },
                )
                .expect("static scenario construction cannot fail");
                let result = simulation.run(seed);
                let downloads_mb: Vec<f64> = result
                    .devices
                    .iter()
                    .map(|d| d.download_megabytes())
                    .collect();
                (standard_deviation(&downloads_mb), jain_index(&downloads_mb))
            });
            let runs = per_run.len().max(1) as f64;
            rows.push(FairnessRow {
                algorithm,
                setting,
                std_dev_mb: per_run.iter().map(|(s, _)| s).sum::<f64>() / runs,
                jain: per_run.iter().map(|(_, j)| j).sum::<f64>() / runs,
            });
        }
    }
    FairnessResult { rows }
}

/// Runs the full Figure 5 (all nine algorithms).
#[must_use]
pub fn run(scale: &Scale) -> FairnessResult {
    run_for(scale, &PolicyKind::all())
}

impl fmt::Display for FairnessResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.algorithm.label().to_string(),
                    r.setting.label().to_string(),
                    cell(r.std_dev_mb),
                    format!("{:.3}", r.jain),
                ]
            })
            .collect();
        f.write_str(&format_table(
            "Figure 5 — fairness (std dev of per-device cumulative download, MB)",
            &["algorithm", "setting", "std dev (MB)", "Jain index"],
            &rows,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smart_exp3_is_fairer_than_greedy() {
        let scale = Scale::quick().with_runs(2).with_slots(400);
        let result = run_for(&scale, &[PolicyKind::SmartExp3, PolicyKind::Greedy]);
        let mut smart_fairer_count = 0;
        for setting in StaticSetting::both() {
            let smart = result.row(PolicyKind::SmartExp3, setting).unwrap();
            let greedy = result.row(PolicyKind::Greedy, setting).unwrap();
            if smart.std_dev_mb <= greedy.std_dev_mb {
                smart_fairer_count += 1;
            }
        }
        assert!(
            smart_fairer_count >= 1,
            "Smart EXP3 should be fairer than Greedy in at least one setting"
        );
        assert!(result.to_string().contains("Jain"));
    }
}
