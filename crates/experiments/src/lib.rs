//! # experiments
//!
//! Scenario runners that regenerate every table and figure of the Smart EXP3
//! paper's evaluation (§VI and §VII) on top of the `smartexp3-core`,
//! `congestion-game`, `netsim` and `tracegen` crates.
//!
//! | module | paper artifact |
//! |---|---|
//! | [`switching`] | Figure 2 — number of network switches |
//! | [`stability`] | Figure 3 + Table IV — stable states |
//! | [`distance`] | Figure 4 — distance to Nash equilibrium |
//! | [`download`] | Table V — cumulative download |
//! | [`fairness`] | Figure 5 — download dispersion |
//! | [`scalability`] | Figure 6 — time to stabilise vs #networks / #devices |
//! | [`dynamics`] | Figures 7 and 8 — devices joining / leaving |
//! | [`mobility`] | Figures 9 and 10 — movement across service areas |
//! | [`robustness`] | Figure 11 — mixes of Smart EXP3 and Greedy devices |
//! | [`tracedriven`] | Table VI + Figure 12 — trace-driven evaluation |
//! | [`controlled`] | Figures 13–15 + Table VII — testbed emulation |
//! | [`wild`] | §VII-B — 500 MB download in the wild |
//! | [`cooperative`] | Co-Bandit follow-up — gossip vs isolated convergence |
//! | [`dense`] | dense-urban large-K worlds — linear vs tree vs alias sampling throughput |
//! | [`events`] | event-driven stepping — sync vs wake-queue trajectories and latency |
//!
//! Every experiment takes a [`Scale`] (number of runs, slots, threads, seed)
//! and returns a displayable result; the `repro` binary wires them to a CLI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod controlled;
pub mod cooperative;
pub mod dense;
pub mod distance;
pub mod download;
pub mod dynamics;
pub mod events;
pub mod fairness;
pub mod mobility;
pub mod report;
pub mod robustness;
pub mod runner;
pub mod scalability;
pub mod settings;
pub mod stability;
pub mod switching;
pub mod tracedriven;
pub mod wild;

pub use config::Scale;
pub use settings::{DynamicSetting, StaticSetting};
