//! Figure 3 and Table IV — which fraction of runs reach a stable state
//! (Definition 2), whether that state is a Nash equilibrium, and how long it
//! takes to get there.

use crate::config::Scale;
use crate::report::{cell, format_table};
use crate::runner::run_many;
use crate::settings::{homogeneous_simulation, StaticSetting};
use congestion_game::median;
use netsim::SimulationConfig;
use smartexp3_core::PolicyKind;
use std::fmt;

/// The algorithms Figure 3 / Table IV consider (the ones for which the notion
/// of a stable state is well defined: block-based, without resets).
#[must_use]
pub fn figure3_algorithms() -> [PolicyKind; 3] {
    [
        PolicyKind::BlockExp3,
        PolicyKind::HybridBlockExp3,
        PolicyKind::SmartExp3WithoutReset,
    ]
}

/// Stability statistics of one algorithm in one setting.
#[derive(Debug, Clone, PartialEq)]
pub struct StabilityRow {
    /// The algorithm.
    pub algorithm: PolicyKind,
    /// The static setting.
    pub setting: StaticSetting,
    /// Fraction of runs that reached a stable state.
    pub stable_fraction: f64,
    /// Fraction of runs that stabilised at a Nash equilibrium.
    pub stable_at_nash_fraction: f64,
    /// Median number of slots needed to reach the stable state, over the runs
    /// that did (`None` if no run stabilised).
    pub median_slots_to_stable: Option<f64>,
}

/// The regenerated Figure 3 + Table IV.
#[derive(Debug, Clone, PartialEq)]
pub struct StabilityResult {
    /// One row per (algorithm, setting).
    pub rows: Vec<StabilityRow>,
}

impl StabilityResult {
    /// Looks up the row of `algorithm` in `setting`.
    #[must_use]
    pub fn row(&self, algorithm: PolicyKind, setting: StaticSetting) -> Option<&StabilityRow> {
        self.rows
            .iter()
            .find(|r| r.algorithm == algorithm && r.setting == setting)
    }
}

/// Runs the Figure 3 / Table IV experiment.
#[must_use]
pub fn run(scale: &Scale) -> StabilityResult {
    let mut rows = Vec::new();
    for setting in StaticSetting::both() {
        for algorithm in figure3_algorithms() {
            let outcomes: Vec<(Option<usize>, bool)> = run_many(scale, |seed| {
                let simulation = homogeneous_simulation(
                    setting.networks(),
                    algorithm,
                    setting.devices(),
                    SimulationConfig {
                        total_slots: scale.slots,
                        ..SimulationConfig::default()
                    },
                )
                .expect("static scenario construction cannot fail");
                let result = simulation.run(seed);
                (result.stable_slot, result.stable_at_nash)
            });
            let runs = outcomes.len().max(1) as f64;
            let stable: Vec<f64> = outcomes
                .iter()
                .filter_map(|(slot, _)| slot.map(|s| s as f64))
                .collect();
            let at_nash = outcomes.iter().filter(|(_, nash)| *nash).count();
            rows.push(StabilityRow {
                algorithm,
                setting,
                stable_fraction: stable.len() as f64 / runs,
                stable_at_nash_fraction: at_nash as f64 / runs,
                median_slots_to_stable: if stable.is_empty() {
                    None
                } else {
                    Some(median(&stable))
                },
            });
        }
    }
    StabilityResult { rows }
}

impl fmt::Display for StabilityResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.algorithm.label().to_string(),
                    r.setting.label().to_string(),
                    cell(r.stable_fraction * 100.0),
                    cell(r.stable_at_nash_fraction * 100.0),
                    r.median_slots_to_stable.map_or("-".to_string(), cell),
                ]
            })
            .collect();
        f.write_str(&format_table(
            "Figure 3 / Table IV — stability",
            &[
                "algorithm",
                "setting",
                "% runs stable",
                "% stable at NE",
                "median slots to stable",
            ],
            &rows,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smart_without_reset_stabilises_more_often_and_faster_than_block_exp3() {
        let scale = Scale::quick().with_runs(3).with_slots(600);
        let result = run(&scale);
        for setting in StaticSetting::both() {
            let smart = result
                .row(PolicyKind::SmartExp3WithoutReset, setting)
                .unwrap();
            let block = result.row(PolicyKind::BlockExp3, setting).unwrap();
            assert!(
                smart.stable_fraction >= block.stable_fraction,
                "{}: smart {} < block {}",
                setting.label(),
                smart.stable_fraction,
                block.stable_fraction
            );
        }
        assert!(result.to_string().contains("stable"));
    }
}
