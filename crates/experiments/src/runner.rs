//! Fan-out of independent evaluation runs, and the engine-path driver that
//! turns an environment-driven fleet into the same [`RunResult`] the
//! sequential simulator produces.
//!
//! Since the environment-layer refactor, both levels of parallelism run on
//! the same substrate: each *run* of an experiment is an independent fleet
//! driven through `FleetEngine::run_env`, and the runs themselves are fanned
//! out over a rayon pool (replacing the hand-rolled scoped-thread chunking
//! this module used to carry).

use crate::config::Scale;
use netsim::{CongestionEnvironment, RunResult};
use rayon::prelude::*;
use rayon::ThreadPoolBuilder;
use smartexp3_engine::FleetEngine;

/// Executes `scale.runs` independent evaluations of `job` (one per seed) and
/// collects the results in run order.
///
/// `job` receives the run's seed. With `scale.threads == 1` everything runs
/// on the calling thread; otherwise runs are distributed over a rayon pool
/// (results are still returned in deterministic run order).
pub fn run_many<T, F>(scale: &Scale, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let runs = scale.runs;
    if runs == 0 {
        return Vec::new();
    }
    if scale.threads <= 1 || runs == 1 {
        return (0..runs).map(|i| job(scale.seed(i))).collect();
    }

    let mut results: Vec<Option<T>> = (0..runs).map(|_| None).collect();
    let work: Vec<(u64, &mut Option<T>)> = results
        .iter_mut()
        .enumerate()
        .map(|(i, slot)| (scale.seed(i), slot))
        .collect();
    let pool = ThreadPoolBuilder::new()
        .num_threads(scale.threads.min(runs).max(1))
        .build()
        .expect("thread pool construction cannot fail");
    let job = &job;
    pool.install(|| {
        work.into_par_iter()
            .for_each(|(seed, slot)| *slot = Some(job(seed)));
    });
    results
        .into_iter()
        .map(|r| r.expect("every run slot is filled"))
        .collect()
}

/// Drives a recorder-equipped [`CongestionEnvironment`] fleet to completion
/// through the unified engine path and assembles the [`RunResult`] — the
/// engine-side equivalent of `Simulation::run`.
///
/// # Panics
///
/// Panics when the environment was built without a recorder.
#[must_use]
pub fn run_environment(
    mut env: CongestionEnvironment,
    mut fleet: FleetEngine,
    slots: usize,
) -> RunResult {
    fleet.run_env(&mut env, slots);
    let outcomes = (0..fleet.len())
        .map(|index| {
            let policy = fleet.policy(index).expect("session exists");
            env.outcome(index, policy.name().to_string(), policy.stats().resets)
        })
        .collect();
    env.into_result(outcomes)
        .expect("run_environment requires a recorder-equipped environment")
}

/// Averages per-slot series element-wise, ignoring series that are shorter
/// than the longest one beyond their end (useful for averaging distance
/// curves over runs).
#[must_use]
pub fn average_series(series: &[Vec<f64>]) -> Vec<f64> {
    let longest = series.iter().map(Vec::len).max().unwrap_or(0);
    let mut sums = vec![0.0; longest];
    let mut counts = vec![0usize; longest];
    for run in series {
        for (slot, &value) in run.iter().enumerate() {
            sums[slot] += value;
            counts[slot] += 1;
        }
    }
    sums.into_iter()
        .zip(counts)
        .map(|(sum, count)| if count == 0 { 0.0 } else { sum / count as f64 })
        .collect()
}

/// Down-samples a series by averaging consecutive buckets of `bucket` slots;
/// used to print figure-like series compactly.
#[must_use]
pub fn downsample(series: &[f64], bucket: usize) -> Vec<f64> {
    if bucket == 0 {
        return series.to_vec();
    }
    series
        .chunks(bucket.max(1))
        .map(|chunk| chunk.iter().sum::<f64>() / chunk.len() as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::settings::homogeneous_environment;
    use netsim::{setting1_networks, SimulationConfig};
    use smartexp3_core::PolicyKind;

    #[test]
    fn sequential_and_parallel_agree() {
        let sequential = run_many(&Scale::quick().with_runs(9).with_threads(1), |seed| {
            seed * 2
        });
        let parallel = run_many(&Scale::quick().with_runs(9).with_threads(4), |seed| {
            seed * 2
        });
        assert_eq!(sequential, parallel);
        assert_eq!(sequential.len(), 9);
    }

    #[test]
    fn run_environment_produces_a_complete_result() {
        let (env, fleet) = homogeneous_environment(
            setting1_networks(),
            PolicyKind::SmartExp3,
            10,
            SimulationConfig::quick(40),
            smartexp3_engine::FleetConfig::with_root_seed(5),
        )
        .unwrap();
        let result = run_environment(env, fleet, 40);
        assert_eq!(result.slots, 40);
        assert_eq!(result.devices.len(), 10);
        assert!(result.total_download_megabits() > 0.0);
        assert_eq!(result.distance_to_nash.len(), 40);
    }

    #[test]
    fn averaging_handles_unequal_lengths() {
        let series = vec![vec![1.0, 3.0], vec![3.0, 5.0, 7.0]];
        assert_eq!(average_series(&series), vec![2.0, 4.0, 7.0]);
        assert!(average_series(&[]).is_empty());
    }

    #[test]
    fn downsampling_averages_buckets() {
        let series = vec![1.0, 3.0, 5.0, 7.0, 9.0];
        assert_eq!(downsample(&series, 2), vec![2.0, 6.0, 9.0]);
        assert_eq!(downsample(&series, 0), series);
    }
}
