//! Fan-out of independent simulation runs across worker threads.

use crate::config::Scale;

/// Executes `scale.runs` independent evaluations of `job` (one per seed) and
/// collects the results in run order.
///
/// `job` receives the run's seed. With `scale.threads == 1` everything runs on
/// the calling thread; otherwise runs are distributed over scoped worker
/// threads (results are still returned in deterministic run order).
pub fn run_many<T, F>(scale: &Scale, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let runs = scale.runs;
    if runs == 0 {
        return Vec::new();
    }
    if scale.threads <= 1 || runs == 1 {
        return (0..runs).map(|i| job(scale.seed(i))).collect();
    }

    let threads = scale.threads.min(runs);
    let mut results: Vec<Option<T>> = (0..runs).map(|_| None).collect();
    let chunk = runs.div_ceil(threads);
    std::thread::scope(|scope| {
        for (worker, slots) in results.chunks_mut(chunk).enumerate() {
            let job = &job;
            scope.spawn(move || {
                for (offset, slot) in slots.iter_mut().enumerate() {
                    let run_index = worker * chunk + offset;
                    *slot = Some(job(scale.seed(run_index)));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every run slot is filled"))
        .collect()
}

/// Averages per-slot series element-wise, ignoring series that are shorter
/// than the longest one beyond their end (useful for averaging distance
/// curves over runs).
#[must_use]
pub fn average_series(series: &[Vec<f64>]) -> Vec<f64> {
    let longest = series.iter().map(Vec::len).max().unwrap_or(0);
    let mut sums = vec![0.0; longest];
    let mut counts = vec![0usize; longest];
    for run in series {
        for (slot, &value) in run.iter().enumerate() {
            sums[slot] += value;
            counts[slot] += 1;
        }
    }
    sums.into_iter()
        .zip(counts)
        .map(|(sum, count)| if count == 0 { 0.0 } else { sum / count as f64 })
        .collect()
}

/// Down-samples a series by averaging consecutive buckets of `bucket` slots;
/// used to print figure-like series compactly.
#[must_use]
pub fn downsample(series: &[f64], bucket: usize) -> Vec<f64> {
    if bucket == 0 {
        return series.to_vec();
    }
    series
        .chunks(bucket.max(1))
        .map(|chunk| chunk.iter().sum::<f64>() / chunk.len() as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree() {
        let sequential = run_many(&Scale::quick().with_runs(9).with_threads(1), |seed| {
            seed * 2
        });
        let parallel = run_many(&Scale::quick().with_runs(9).with_threads(4), |seed| {
            seed * 2
        });
        assert_eq!(sequential, parallel);
        assert_eq!(sequential.len(), 9);
    }

    #[test]
    fn averaging_handles_unequal_lengths() {
        let series = vec![vec![1.0, 3.0], vec![3.0, 5.0, 7.0]];
        assert_eq!(average_series(&series), vec![2.0, 4.0, 7.0]);
        assert!(average_series(&[]).is_empty());
    }

    #[test]
    fn downsampling_averages_buckets() {
        let series = vec![1.0, 3.0, 5.0, 7.0, 9.0];
        assert_eq!(downsample(&series, 2), vec![2.0, 6.0, 9.0]);
        assert_eq!(downsample(&series, 0), series);
    }
}
