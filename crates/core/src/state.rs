//! Serializable policy state — the checkpoint format behind
//! [`Policy::state`](crate::Policy::state).
//!
//! A fleet engine hosting many sessions cannot name the concrete type behind
//! a `Box<dyn Policy>`, so checkpointing goes through this enum: every
//! distributed policy captures itself as a [`PolicyState`] (a plain serde
//! value) and [`PolicyState::into_policy`] turns a restored state back into a
//! boxed policy that behaves bit-identically from that point on.
//!
//! The centralized oracle is deliberately absent: its decision state lives in
//! a shared [`CentralizedCoordinator`](crate::CentralizedCoordinator), not in
//! the per-device policy, so it cannot be captured per session.

use crate::{Exp3, FixedRandom, FullInformation, Greedy, Policy, PolicyKind, SmartExp3};
use serde::{Deserialize, Serialize};

/// The full learning state of one distributed policy instance.
///
/// Obtained from [`Policy::state`](crate::Policy::state); restored with
/// [`into_policy`](PolicyState::into_policy). The Smart EXP3 ablation
/// variants (Block EXP3, Hybrid Block EXP3, Smart EXP3 w/o Reset) are all
/// [`SmartExp3`] instances with different feature sets, so they round-trip
/// through the [`PolicyState::SmartExp3`] variant.
///
/// The variants carry *concrete* policy values, which is what lets the fleet
/// engine route a restored [`PolicyState::Exp3`] / [`PolicyState::SmartExp3`]
/// back into its monomorphized fleet lanes instead of boxing it: lane and
/// boxed sessions snapshot to the same bytes and restore bit-identically.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum PolicyState {
    /// Slot-level EXP3.
    Exp3(Box<Exp3>),
    /// Smart EXP3 (any feature combination, including the ablations).
    SmartExp3(Box<SmartExp3>),
    /// The greedy baseline.
    Greedy(Box<Greedy>),
    /// The fixed-random baseline.
    FixedRandom(Box<FixedRandom>),
    /// The full-information forecaster.
    FullInformation(Box<FullInformation>),
}

impl PolicyState {
    /// Rebuilds a boxed policy from this state.
    #[must_use]
    pub fn into_policy(self) -> Box<dyn Policy> {
        match self {
            PolicyState::Exp3(p) => p,
            PolicyState::SmartExp3(p) => p,
            PolicyState::Greedy(p) => p,
            PolicyState::FixedRandom(p) => p,
            PolicyState::FullInformation(p) => p,
        }
    }

    /// The [`PolicyKind`] family this state belongs to.
    ///
    /// Smart EXP3 feature ablations cannot be distinguished from the state
    /// alone, so every [`SmartExp3`] state reports [`PolicyKind::SmartExp3`];
    /// callers that need the exact ablation should store the kind alongside
    /// the state (as the fleet engine does).
    #[must_use]
    pub fn kind(&self) -> PolicyKind {
        match self {
            PolicyState::Exp3(_) => PolicyKind::Exp3,
            PolicyState::SmartExp3(_) => PolicyKind::SmartExp3,
            PolicyState::Greedy(_) => PolicyKind::Greedy,
            PolicyState::FixedRandom(_) => PolicyKind::FixedRandom,
            PolicyState::FullInformation(_) => PolicyKind::FullInformation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetworkId, Observation, PolicyFactory};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rates() -> Vec<(NetworkId, f64)> {
        vec![
            (NetworkId(0), 4.0),
            (NetworkId(1), 7.0),
            (NetworkId(2), 22.0),
        ]
    }

    #[test]
    fn every_distributed_policy_captures_state() {
        let mut factory = PolicyFactory::new(rates()).unwrap();
        for kind in PolicyKind::all() {
            let policy = factory.build(kind).unwrap();
            if kind == PolicyKind::Centralized {
                assert!(policy.state().is_none(), "centralized state is shared");
            } else {
                assert!(policy.state().is_some(), "{kind} must capture state");
            }
        }
    }

    #[test]
    fn restored_policy_continues_bit_identically() {
        let mut factory = PolicyFactory::new(rates()).unwrap();
        for kind in PolicyKind::exp3_family() {
            let mut original = factory.build(kind).unwrap();
            let mut rng = StdRng::seed_from_u64(11);
            for slot in 0..40 {
                let chosen = original.choose(slot, &mut rng);
                let gain = if chosen == NetworkId(2) { 0.9 } else { 0.2 };
                original.observe(
                    &Observation::bandit(slot, chosen, gain * 22.0, gain),
                    &mut rng,
                );
            }

            let mut restored = original.state().expect("captures state").into_policy();
            // Drive both copies with identical RNG streams; they must agree.
            let mut rng_a = StdRng::seed_from_u64(99);
            let mut rng_b = StdRng::seed_from_u64(99);
            for slot in 40..120 {
                let a = original.choose(slot, &mut rng_a);
                let b = restored.choose(slot, &mut rng_b);
                assert_eq!(a, b, "{kind} diverged at slot {slot}");
                let gain = 0.5;
                original.observe(&Observation::bandit(slot, a, gain * 22.0, gain), &mut rng_a);
                restored.observe(&Observation::bandit(slot, b, gain * 22.0, gain), &mut rng_b);
            }
            assert_eq!(original.stats(), restored.stats());
        }
    }
}
