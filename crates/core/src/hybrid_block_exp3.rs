//! Hybrid Block EXP3 (Table III): Block EXP3 plus Smart EXP3's greedy policy
//! (and the initial exploration phase that feeds it).
//!
//! Like [`BlockExp3`](crate::BlockExp3) this is a named constructor over
//! [`SmartExp3`] with the corresponding feature set.

use crate::{ConfigError, NetworkId, SmartExp3, SmartExp3Config, SmartExp3Features};

/// Block EXP3 augmented with the coin-flip greedy policy.
pub type HybridBlockExp3 = SmartExp3;

impl HybridBlockExp3 {
    /// Creates a Hybrid Block EXP3 policy over `networks` with the paper's
    /// default parameters.
    ///
    /// # Errors
    ///
    /// Returns an error if `networks` is empty or contains duplicates.
    pub fn hybrid_block_exp3(networks: Vec<NetworkId>) -> Result<HybridBlockExp3, ConfigError> {
        SmartExp3::new(
            networks,
            SmartExp3Config::with_features(SmartExp3Features::hybrid_block_exp3()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Policy;

    #[test]
    fn hybrid_constructor_enables_greedy_and_exploration_only() {
        let policy = HybridBlockExp3::hybrid_block_exp3((0..3).map(NetworkId).collect()).unwrap();
        assert_eq!(policy.name(), "Hybrid Block EXP3");
        let features = policy.config().features;
        assert!(features.initial_exploration);
        assert!(features.greedy);
        assert!(!features.switch_back);
        assert!(!features.reset);
    }
}
