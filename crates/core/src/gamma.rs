//! Exploration-rate (γ) schedules.
//!
//! The paper's implementation (§V) uses `γ = b^{-1/3}` where `b` is the block
//! index, so exploration decays over time and the convergence argument of
//! Theorem 1 (which requires γ → 0) applies. A fixed γ is also provided for
//! textbook EXP3.

use serde::{Deserialize, Serialize};

/// A schedule mapping a decision index (block or slot, 1-based) to γ ∈ (0, 1].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GammaSchedule {
    /// Constant exploration rate.
    Fixed(f64),
    /// `γ(b) = b^{-1/3}`, clamped to `[floor, 1]`; the paper's choice, after
    /// Maghsudi & Stanczak (relay selection with adversarial bandits).
    InverseCubeRoot {
        /// Lower clamp preventing γ from reaching exactly 0 (keeps the
        /// distribution mixed); the paper effectively uses 0.
        floor: f64,
    },
}

impl GammaSchedule {
    /// The paper's default schedule: `γ = b^{-1/3}` with a tiny floor.
    #[must_use]
    pub fn paper_default() -> Self {
        GammaSchedule::InverseCubeRoot { floor: 1e-3 }
    }

    /// Evaluates the schedule at `index` (1-based). An `index` of 0 is treated
    /// as 1.
    ///
    /// Every fresh decision of every session evaluates the schedule, so the
    /// common small indices read a process-wide precomputed table instead of
    /// paying a `powf` each time; the table holds exactly the values the
    /// direct computation produces.
    #[must_use]
    pub fn value(&self, index: usize) -> f64 {
        match *self {
            GammaSchedule::Fixed(gamma) => gamma.clamp(f64::MIN_POSITIVE, 1.0),
            GammaSchedule::InverseCubeRoot { floor } => {
                let index = index.max(1);
                let raw = inverse_cube_root_cached(index);
                raw.clamp(floor.max(f64::MIN_POSITIVE), 1.0)
            }
        }
    }
}

/// `index^{-1/3}`, read from a lazily initialised table for small indices.
fn inverse_cube_root_cached(index: usize) -> f64 {
    use std::sync::OnceLock;
    const TABLE_SIZE: usize = 4_096;
    static TABLE: OnceLock<Vec<f64>> = OnceLock::new();
    if index < TABLE_SIZE {
        let table = TABLE.get_or_init(|| {
            (0..TABLE_SIZE)
                .map(|b| inverse_cube_root(b.max(1)))
                .collect()
        });
        table[index]
    } else {
        inverse_cube_root(index)
    }
}

fn inverse_cube_root(index: usize) -> f64 {
    (index as f64).powf(-1.0 / 3.0)
}

impl Default for GammaSchedule {
    fn default() -> Self {
        GammaSchedule::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_schedule_is_constant_and_clamped() {
        let schedule = GammaSchedule::Fixed(0.3);
        assert_eq!(schedule.value(1), 0.3);
        assert_eq!(schedule.value(1000), 0.3);
        assert_eq!(GammaSchedule::Fixed(5.0).value(10), 1.0);
    }

    #[test]
    fn inverse_cube_root_starts_at_one_and_decays() {
        let schedule = GammaSchedule::paper_default();
        assert!((schedule.value(1) - 1.0).abs() < 1e-12);
        assert!((schedule.value(8) - 0.5).abs() < 1e-12);
        assert!(schedule.value(1000) < schedule.value(10));
    }

    #[test]
    fn floor_is_respected() {
        let schedule = GammaSchedule::InverseCubeRoot { floor: 0.05 };
        assert!(schedule.value(usize::MAX / 2) >= 0.05);
    }

    #[test]
    fn index_zero_is_treated_as_one() {
        let schedule = GammaSchedule::paper_default();
        assert_eq!(schedule.value(0), schedule.value(1));
    }
}
