//! Adaptive blocking: the mechanism Smart EXP3 uses to bound switching cost.
//!
//! A device partitions time into *blocks* of consecutive slots spent on one
//! network. The length of the next block for network `i` is
//! `⌈(1 + β)^{x_i}⌉`, where `x_i` counts how many blocks have already been
//! spent on `i` (§III, "Adaptive blocking"). Block lengths therefore grow
//! geometrically on frequently selected networks, which is what yields the
//! logarithmic switch bound of Theorem 2.

use crate::{NetworkId, SelectionKind};
use serde::{Deserialize, Serialize};

/// Length (in slots) of the next block of a network that has already been
/// selected `times_selected` times, for growth factor `beta`.
///
/// ```rust
/// use smartexp3_core::block_length;
/// assert_eq!(block_length(0.1, 0), 1);
/// assert_eq!(block_length(0.1, 8), 3); // ⌈1.1^8⌉ = ⌈2.14…⌉
/// assert!(block_length(1.0, 10) >= 1024);
/// ```
#[must_use]
pub fn block_length(beta: f64, times_selected: u64) -> u64 {
    let raw = (1.0 + beta).powf(times_selected as f64);
    // Guard against overflow for absurd inputs; the simulator never reaches
    // block lengths anywhere near u64::MAX.
    if raw >= u64::MAX as f64 {
        u64::MAX
    } else {
        raw.ceil() as u64
    }
}

/// The block a device is currently executing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockState {
    /// Network selected for this block.
    pub network: NetworkId,
    /// Total length of the block, in slots.
    pub length: u64,
    /// Number of slots of this block that have already elapsed.
    pub elapsed: u64,
    /// Probability with which the network was chosen (the `p(b)` of
    /// Algorithm 1, which depends on the selection kind).
    pub probability: f64,
    /// How the network was chosen.
    pub kind: SelectionKind,
    /// Sum of scaled per-slot gains observed so far in this block
    /// (`g_{i_b}(b) ∈ [0, l_{i_b}]`).
    pub accumulated_gain: f64,
    /// Scaled gains of every elapsed slot, most recent last. Used by the
    /// switch-back rule, which inspects (a suffix of) the previous block.
    pub slot_gains: Vec<f64>,
}

impl BlockState {
    /// Starts a fresh block.
    #[must_use]
    pub fn new(network: NetworkId, length: u64, probability: f64, kind: SelectionKind) -> Self {
        Self::with_gain_log(network, length, probability, kind, Vec::new())
    }

    /// Starts a fresh block reusing `gain_log` (cleared first) as the backing
    /// storage for the per-slot gains, so recycling a retired block's buffer
    /// makes block turnover allocation-free.
    #[must_use]
    pub fn with_gain_log(
        network: NetworkId,
        length: u64,
        probability: f64,
        kind: SelectionKind,
        mut gain_log: Vec<f64>,
    ) -> Self {
        gain_log.clear();
        BlockState {
            network,
            length: length.max(1),
            elapsed: 0,
            probability,
            kind,
            accumulated_gain: 0.0,
            slot_gains: gain_log,
        }
    }

    /// Records the scaled gain of one elapsed slot.
    pub fn record_slot(&mut self, scaled_gain: f64) {
        self.elapsed += 1;
        self.accumulated_gain += scaled_gain;
        self.slot_gains.push(scaled_gain);
    }

    /// Records the scaled gain of one elapsed slot, keeping only the most
    /// recent `keep_last` per-slot gains.
    ///
    /// The switch-back rule only ever inspects a fixed-size suffix of a
    /// block, so Smart EXP3 uses this bounded variant to keep a block's
    /// memory footprint constant: without the bound, the gain log of a
    /// geometrically growing block grows without limit, and a fleet of a
    /// million sessions pays for it in allocator traffic and cache misses.
    /// `elapsed`, `accumulated_gain` and [`average_gain`](Self::average_gain)
    /// are unaffected by the bound.
    pub fn record_slot_bounded(&mut self, scaled_gain: f64, keep_last: usize) {
        self.elapsed += 1;
        self.accumulated_gain += scaled_gain;
        let keep = keep_last.max(1);
        if self.slot_gains.len() >= keep {
            // Shift out the oldest entries; `keep` is a small constant (the
            // switch-back window, 8 by default), so this is a tiny memmove.
            let excess = self.slot_gains.len() + 1 - keep;
            self.slot_gains.drain(..excess);
        }
        self.slot_gains.push(scaled_gain);
    }

    /// `true` once every slot of the block has elapsed.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.elapsed >= self.length
    }

    /// Average scaled gain over the elapsed slots (0 if none elapsed yet).
    #[must_use]
    pub fn average_gain(&self) -> f64 {
        if self.elapsed == 0 {
            0.0
        } else {
            self.accumulated_gain / self.elapsed as f64
        }
    }

    /// Scaled gain of the most recent elapsed slot, if any.
    #[must_use]
    pub fn last_slot_gain(&self) -> Option<f64> {
        self.slot_gains.last().copied()
    }

    /// The most recent `n` per-slot gains (fewer if the block is shorter).
    #[must_use]
    pub fn recent_gains(&self, n: usize) -> &[f64] {
        let start = self.slot_gains.len().saturating_sub(n);
        &self.slot_gains[start..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_length_matches_paper_formula() {
        // β = 0.1 (paper default): lengths 1,2,2,2,2,2,2,2,3,…
        assert_eq!(block_length(0.1, 0), 1);
        assert_eq!(block_length(0.1, 1), 2);
        assert_eq!(block_length(0.1, 7), 2);
        assert_eq!(block_length(0.1, 8), 3);
        assert_eq!(block_length(0.1, 39), 42); // 1.1^39 ≈ 41.14 → ⌈·⌉ = 42 (reset threshold region)
    }

    #[test]
    fn block_length_is_monotone_in_selections_and_beta() {
        for x in 0..50u64 {
            assert!(block_length(0.1, x + 1) >= block_length(0.1, x));
            assert!(block_length(0.5, x) >= block_length(0.1, x));
        }
    }

    #[test]
    fn block_state_accounting() {
        let mut block = BlockState::new(NetworkId(3), 3, 0.5, SelectionKind::Random);
        assert!(!block.is_finished());
        block.record_slot(0.2);
        block.record_slot(0.6);
        assert_eq!(block.last_slot_gain(), Some(0.6));
        assert!((block.average_gain() - 0.4).abs() < 1e-12);
        assert!(!block.is_finished());
        block.record_slot(0.7);
        assert!(block.is_finished());
        assert!((block.accumulated_gain - 1.5).abs() < 1e-12);
        assert_eq!(block.recent_gains(2), &[0.6, 0.7]);
        assert_eq!(block.recent_gains(10).len(), 3);
    }

    #[test]
    fn bounded_recording_keeps_a_suffix_and_exact_totals() {
        let mut bounded = BlockState::new(NetworkId(1), 100, 0.5, SelectionKind::Random);
        let mut unbounded = BlockState::new(NetworkId(1), 100, 0.5, SelectionKind::Random);
        for slot in 0..40 {
            let gain = (slot % 9) as f64 / 10.0;
            bounded.record_slot_bounded(gain, 8);
            unbounded.record_slot(gain);
        }
        assert_eq!(bounded.elapsed, unbounded.elapsed);
        assert_eq!(bounded.accumulated_gain, unbounded.accumulated_gain);
        assert_eq!(bounded.average_gain(), unbounded.average_gain());
        assert_eq!(bounded.last_slot_gain(), unbounded.last_slot_gain());
        assert!(bounded.slot_gains.len() <= 8);
        // Every suffix the switch-back rule can ask for matches.
        for window in 1..=8 {
            assert_eq!(bounded.recent_gains(window), unbounded.recent_gains(window));
        }
    }

    #[test]
    fn zero_length_blocks_are_promoted_to_one_slot() {
        let block = BlockState::new(NetworkId(0), 0, 1.0, SelectionKind::SwitchBack);
        assert_eq!(block.length, 1);
    }
}
