//! Convenience factory that builds any of the paper's nine algorithms by name.
//!
//! The evaluation harness (and downstream users comparing algorithms) can
//! iterate over [`PolicyKind::all`] and construct one policy per device with a
//! [`PolicyFactory`], without caring about the per-algorithm constructor
//! signatures (the centralized oracle, for instance, needs a shared
//! coordinator that knows every network's bandwidth).

use crate::{
    CentralizedCoordinator, ConfigError, Exp3, Exp3Config, FixedRandom, FullInformation,
    FullInformationConfig, Greedy, NetworkId, Policy, SamplerStrategy, SmartExp3, SmartExp3Config,
    SmartExp3Features,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The nine selection algorithms evaluated in the paper (Tables II and III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Slot-level EXP3 (Auer et al.).
    Exp3,
    /// EXP3 with adaptive blocking only.
    BlockExp3,
    /// Block EXP3 plus the greedy policy (and initial exploration).
    HybridBlockExp3,
    /// Smart EXP3 with the reset mechanism disabled.
    SmartExp3WithoutReset,
    /// The full Smart EXP3 algorithm.
    SmartExp3,
    /// Explore once, then always pick the best empirical average.
    Greedy,
    /// Pick a network uniformly at random once and never move.
    FixedRandom,
    /// Exponentially weighted forecaster with full (counterfactual) feedback.
    FullInformation,
    /// Centralized oracle that assigns devices to a Nash-equilibrium allocation.
    Centralized,
}

impl PolicyKind {
    /// Every algorithm, in the order the paper's figures list them.
    #[must_use]
    pub fn all() -> [PolicyKind; 9] {
        [
            PolicyKind::Exp3,
            PolicyKind::BlockExp3,
            PolicyKind::HybridBlockExp3,
            PolicyKind::SmartExp3WithoutReset,
            PolicyKind::SmartExp3,
            PolicyKind::Greedy,
            PolicyKind::FullInformation,
            PolicyKind::Centralized,
            PolicyKind::FixedRandom,
        ]
    }

    /// The bandit-feedback members of the EXP3 family (Table III ablation).
    #[must_use]
    pub fn exp3_family() -> [PolicyKind; 5] {
        [
            PolicyKind::Exp3,
            PolicyKind::BlockExp3,
            PolicyKind::HybridBlockExp3,
            PolicyKind::SmartExp3WithoutReset,
            PolicyKind::SmartExp3,
        ]
    }

    /// Display label matching the paper's figures.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::Exp3 => "EXP3",
            PolicyKind::BlockExp3 => "Block EXP3",
            PolicyKind::HybridBlockExp3 => "Hybrid Block EXP3",
            PolicyKind::SmartExp3WithoutReset => "Smart EXP3 w/o Reset",
            PolicyKind::SmartExp3 => "Smart EXP3",
            PolicyKind::Greedy => "Greedy",
            PolicyKind::FixedRandom => "Fixed Random",
            PolicyKind::FullInformation => "Full Information",
            PolicyKind::Centralized => "Centralized",
        }
    }

    /// `true` for algorithms that require full (counterfactual) feedback from
    /// the environment.
    #[must_use]
    pub fn needs_full_information(&self) -> bool {
        matches!(self, PolicyKind::FullInformation)
    }

    /// `true` for algorithms that cannot be deployed without coordination
    /// (included in the paper only as idealised baselines).
    #[must_use]
    pub fn is_oracle(&self) -> bool {
        matches!(self, PolicyKind::Centralized | PolicyKind::FullInformation)
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A homogeneous batch of policies built by
/// [`PolicyFactory::build_fleet_concrete`]: the EXP3 family comes back as
/// concrete values so the fleet engine can store them inline in its
/// monomorphized **fleet lanes** (contiguous per-kind storage, static
/// dispatch); every other kind stays behind the trait object and runs on the
/// boxed fallback lane.
pub enum FleetPolicies {
    /// Concrete slot-level EXP3 instances ([`PolicyKind::Exp3`]).
    Exp3(Vec<Exp3>),
    /// Concrete Smart EXP3 instances — the full algorithm or any feature
    /// ablation (`BlockExp3`, `HybridBlockExp3`, `SmartExp3WithoutReset`,
    /// `SmartExp3` are all one concrete type with different feature flags).
    SmartExp3(Vec<SmartExp3>),
    /// Policies that only exist behind `Box<dyn Policy>` (the baselines, the
    /// oracles, and — via [`PolicyFactory::build_fleet`] — any future kind
    /// without a dedicated lane).
    Boxed(Vec<Box<dyn Policy>>),
}

impl FleetPolicies {
    /// Number of policies in the batch, whatever the lane.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            FleetPolicies::Exp3(v) => v.len(),
            FleetPolicies::SmartExp3(v) => v.len(),
            FleetPolicies::Boxed(v) => v.len(),
        }
    }

    /// `true` when the batch is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Builds policies of any [`PolicyKind`] for one common environment.
#[derive(Debug, Clone)]
pub struct PolicyFactory {
    networks: Vec<NetworkId>,
    network_rates: Vec<(NetworkId, f64)>,
    smart_config: SmartExp3Config,
    exp3_config: Exp3Config,
    full_information_config: FullInformationConfig,
    coordinator: Option<CentralizedCoordinator>,
}

impl PolicyFactory {
    /// Creates a factory for an environment whose networks have the given
    /// bandwidths (Mbps). The bandwidths are only used by the centralized
    /// oracle; bandit policies never see them.
    ///
    /// # Errors
    ///
    /// Returns an error if the network list is empty or contains duplicates.
    pub fn new(network_rates: Vec<(NetworkId, f64)>) -> Result<Self, ConfigError> {
        let networks: Vec<NetworkId> = network_rates.iter().map(|(n, _)| *n).collect();
        crate::error::check_networks(&networks)?;
        Ok(PolicyFactory {
            networks,
            network_rates,
            smart_config: SmartExp3Config::default(),
            exp3_config: Exp3Config::default(),
            full_information_config: FullInformationConfig::default(),
            coordinator: None,
        })
    }

    /// Overrides the Smart EXP3 configuration used for the whole EXP3 family
    /// (the feature set is still chosen per [`PolicyKind`]).
    #[must_use]
    pub fn with_smart_config(mut self, config: SmartExp3Config) -> Self {
        self.smart_config = config;
        self
    }

    /// Overrides the slot-level EXP3 configuration.
    #[must_use]
    pub fn with_exp3_config(mut self, config: Exp3Config) -> Self {
        self.exp3_config = config;
        self
    }

    /// Selects the CDF-inversion strategy for every EXP3-family policy this
    /// factory builds (both the slot-level baseline and the Smart EXP3
    /// variants). Dense-spectrum worlds pass [`SamplerStrategy::Tree`] here
    /// to make each draw O(log k) instead of O(k).
    #[must_use]
    pub fn with_sampler(mut self, sampler: SamplerStrategy) -> Self {
        self.exp3_config.sampler = sampler;
        self.smart_config.sampler = sampler;
        self
    }

    /// The networks this factory builds policies for.
    #[must_use]
    pub fn networks(&self) -> &[NetworkId] {
        &self.networks
    }

    /// Builds `count` independent policies of the requested kind — the bulk
    /// construction hook used by the fleet engine to spin up large fleets
    /// without per-session factory plumbing.
    ///
    /// Equivalent to calling [`build`](Self::build) `count` times: for
    /// [`PolicyKind::Centralized`] every instance registers one more device
    /// with the shared coordinator.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the underlying constructors.
    pub fn build_fleet(
        &mut self,
        kind: PolicyKind,
        count: usize,
    ) -> Result<Vec<Box<dyn Policy>>, ConfigError> {
        (0..count).map(|_| self.build(kind)).collect()
    }

    /// Builds `count` independent policies of the requested kind as a
    /// *concrete* homogeneous batch — the construction hook behind the fleet
    /// engine's lanes. The policies are constructed by exactly the same
    /// constructor calls as [`build_fleet`](Self::build_fleet), so a lane
    /// fleet starts from bit-identical state; only the storage differs.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the underlying constructors.
    pub fn build_fleet_concrete(
        &mut self,
        kind: PolicyKind,
        count: usize,
    ) -> Result<FleetPolicies, ConfigError> {
        Ok(match kind {
            PolicyKind::Exp3 => FleetPolicies::Exp3(
                (0..count)
                    .map(|_| Exp3::new(self.networks.clone(), self.exp3_config))
                    .collect::<Result<_, _>>()?,
            ),
            PolicyKind::BlockExp3
            | PolicyKind::HybridBlockExp3
            | PolicyKind::SmartExp3WithoutReset
            | PolicyKind::SmartExp3 => {
                let config = self.smart_variant_config(kind);
                FleetPolicies::SmartExp3(
                    (0..count)
                        .map(|_| SmartExp3::new(self.networks.clone(), config))
                        .collect::<Result<_, _>>()?,
                )
            }
            _ => FleetPolicies::Boxed(self.build_fleet(kind, count)?),
        })
    }

    /// The Smart EXP3 configuration for one of the family's feature
    /// ablations: the factory-wide [`SmartExp3Config`] with the feature set
    /// selected by `kind`.
    fn smart_variant_config(&self, kind: PolicyKind) -> SmartExp3Config {
        let features = match kind {
            PolicyKind::BlockExp3 => SmartExp3Features::block_exp3(),
            PolicyKind::HybridBlockExp3 => SmartExp3Features::hybrid_block_exp3(),
            PolicyKind::SmartExp3WithoutReset => SmartExp3Features::smart_exp3_without_reset(),
            _ => SmartExp3Features::smart_exp3(),
        };
        SmartExp3Config {
            features,
            ..self.smart_config
        }
    }

    /// Builds one policy of the requested kind.
    ///
    /// Each call for [`PolicyKind::Centralized`] registers one more device
    /// with the shared coordinator, so calling it once per device yields the
    /// Nash-equilibrium allocation.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the underlying constructors.
    pub fn build(&mut self, kind: PolicyKind) -> Result<Box<dyn Policy>, ConfigError> {
        let networks = self.networks.clone();
        let policy: Box<dyn Policy> = match kind {
            PolicyKind::Exp3 => Box::new(Exp3::new(networks, self.exp3_config)?),
            PolicyKind::BlockExp3
            | PolicyKind::HybridBlockExp3
            | PolicyKind::SmartExp3WithoutReset
            | PolicyKind::SmartExp3 => {
                Box::new(SmartExp3::new(networks, self.smart_variant_config(kind))?)
            }
            PolicyKind::Greedy => Box::new(Greedy::new(networks)?),
            PolicyKind::FixedRandom => Box::new(FixedRandom::new(networks)?),
            PolicyKind::FullInformation => Box::new(FullInformation::new(
                networks,
                self.full_information_config,
            )?),
            PolicyKind::Centralized => {
                if self.coordinator.is_none() {
                    self.coordinator =
                        Some(CentralizedCoordinator::new(self.network_rates.clone())?);
                }
                Box::new(
                    self.coordinator
                        .as_ref()
                        .expect("coordinator initialised above")
                        .join(),
                )
            }
        };
        Ok(policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rates() -> Vec<(NetworkId, f64)> {
        vec![
            (NetworkId(0), 4.0),
            (NetworkId(1), 7.0),
            (NetworkId(2), 22.0),
        ]
    }

    #[test]
    fn every_kind_builds_and_reports_its_label() {
        let mut factory = PolicyFactory::new(rates()).unwrap();
        for kind in PolicyKind::all() {
            let policy = factory.build(kind).unwrap();
            assert_eq!(policy.name(), kind.label(), "label mismatch for {kind:?}");
        }
    }

    #[test]
    fn centralized_devices_share_one_coordinator() {
        let mut factory = PolicyFactory::new(rates()).unwrap();
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        let mut counts = std::collections::BTreeMap::new();
        for _ in 0..20 {
            let mut policy = factory.build(PolicyKind::Centralized).unwrap();
            *counts.entry(policy.choose(0, &mut rng)).or_insert(0) += 1;
        }
        assert_eq!(counts.get(&NetworkId(2)), Some(&14));
        assert_eq!(counts.get(&NetworkId(1)), Some(&4));
        assert_eq!(counts.get(&NetworkId(0)), Some(&2));
    }

    #[test]
    fn concrete_fleets_match_boxed_fleets_at_construction() {
        for kind in PolicyKind::all() {
            let mut concrete_factory = PolicyFactory::new(rates()).unwrap();
            let mut boxed_factory = PolicyFactory::new(rates()).unwrap();
            let concrete = concrete_factory.build_fleet_concrete(kind, 3).unwrap();
            let boxed = boxed_factory.build_fleet(kind, 3).unwrap();
            assert_eq!(concrete.len(), 3);
            assert!(!concrete.is_empty());
            let concrete_names: Vec<&str> = match &concrete {
                FleetPolicies::Exp3(v) => v.iter().map(|p| p.name()).collect(),
                FleetPolicies::SmartExp3(v) => v.iter().map(|p| p.name()).collect(),
                FleetPolicies::Boxed(v) => v.iter().map(|p| p.name()).collect(),
            };
            let boxed_names: Vec<&str> = boxed.iter().map(|p| p.name()).collect();
            assert_eq!(concrete_names, boxed_names, "name mismatch for {kind:?}");
            let expect_lane = matches!(
                kind,
                PolicyKind::Exp3
                    | PolicyKind::BlockExp3
                    | PolicyKind::HybridBlockExp3
                    | PolicyKind::SmartExp3WithoutReset
                    | PolicyKind::SmartExp3
            );
            assert_eq!(
                !matches!(concrete, FleetPolicies::Boxed(_)),
                expect_lane,
                "lane routing mismatch for {kind:?}"
            );
        }
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::BTreeSet<&str> =
            PolicyKind::all().iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), PolicyKind::all().len());
    }

    #[test]
    fn duplicate_networks_are_rejected() {
        let result = PolicyFactory::new(vec![(NetworkId(0), 4.0), (NetworkId(0), 7.0)]);
        assert!(result.is_err());
    }
}
