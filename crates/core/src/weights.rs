//! Numerically stable exponential weights shared by the EXP3 family.
//!
//! EXP3 maintains a multiplicative weight per arm and mixes the normalised
//! weights with a uniform distribution:
//!
//! ```text
//! p_i = (1 - γ) · w_i / Σ_j w_j  +  γ / k
//! ```
//!
//! Because the estimated gains `ĝ = g / p` can be large (blocks of dozens of
//! slots divided by small probabilities), weights are stored in the **log
//! domain** and probabilities derived from a max-shifted softmax, which keeps
//! the computation stable over arbitrarily long horizons.
//!
//! ## The distribution cache
//!
//! Recomputing the softmax from scratch on every read is the dominant cost of
//! a fleet stepping millions of sessions, so the table keeps the softmax
//! **cached and incrementally maintained** (following the spirit of Sato &
//! Ito's "Fast EXP3 Algorithms"): alongside the log-weights it stores the
//! max-shifted exponentials `e_i = exp(lw_i − max_lw)` and their running sum.
//! A [`multiplicative_update`](WeightTable::multiplicative_update) then costs
//! one `exp` plus a constant-time sum adjustment; a full O(k) rebuild happens
//! only when the maximum shifts, when an arm is added/removed/reset, or
//! periodically to keep floating-point drift of the running sum far below
//! any observable level (see `PATCH_LIMIT`).
//!
//! Cache invariants (checked by the property suite in `tests/`):
//!
//! 1. `log_weights` is always the exact ground truth; the cache is derived
//!    data and never feeds back into it.
//! 2. `max_log_weight` equals `max(log_weights)` at all times under the
//!    linear strategy; under the tree strategy it is a **shift reference**
//!    that may lag the maximum by at most `MAX_SHIFT_SLACK` between rebuilds
//!    (the softmax ratio is shift-invariant, so probabilities are
//!    unaffected).
//! 3. `exp_weights[i]` equals `exp(log_weights[i] − max_log_weight)` exactly;
//!    `exp_sum` equals `Σ exp_weights[i]` up to the accumulated rounding of at
//!    most `PATCH_LIMIT` constant-time adjustments (relative error well below
//!    1e-12, the tolerance the property tests assert).
//! 4. Every field is serialized, so a snapshot restores the cache **bit
//!    identically** and a restored policy continues on the exact trajectory
//!    of the original.
//!
//! ## Sublinear sampling (`SamplerStrategy::Tree`)
//!
//! The cache makes updates O(1), but [`sample`](WeightTable::sample) still
//! walks the CDF in O(k) — fine for the paper's handful of networks, a real
//! cost in dense-spectrum worlds with hundreds of visible arms. The opt-in
//! [`SamplerStrategy::Tree`] keeps a **Fenwick tree of prefix sums over the
//! cached exponentials**, patched in O(log k) on exactly the events that
//! patch the cache and rebuilt on exactly the events that rebuild it, giving
//! an O(log k) CDF inversion (the γ/k uniform mixture is folded in
//! analytically during the descent, so the tree never has to be rebuilt when
//! γ changes).
//!
//! ## Amortised-O(1) sampling (`SamplerStrategy::Alias`)
//!
//! In the constant-time regime of the Fast EXP3 paper — and of this repo's
//! duty-cycle worlds, where a sleeping session's weights are frozen across
//! its whole sleep interval and Smart EXP3's weights are frozen within a
//! block — even the O(log k) descent is avoidable. The opt-in
//! [`SamplerStrategy::Alias`] keeps a **Vose alias table** built over the
//! cached exponentials: two O(1) array reads invert the softmax part of the
//! CDF, with the γ/k uniform share handled analytically from a prefix of the
//! draw. Updates do not rebuild the table; instead a **dirty-arm overlay**
//! records which arms gained mass since the table was frozen, and sampling
//! draws from the mixture of the frozen table (stale mass) and a short O(d)
//! walk over the dirty arms (fresh delta mass) — exact, because a clean
//! arm's frozen mass *is* its current mass. The table is re-frozen in O(k)
//! only when the dirty mass crosses [`DIRTY_MASS_FRACTION`] of the total or
//! on the events that already rebuild the cache (max shift, arm churn,
//! reset, drift budget), so phases with static weights amortise the rebuild
//! to ~O(k / phase length) while every draw stays O(1).
//!
//! All strategies sample the same distribution (within the 1e-12 cache
//! tolerance) and consume exactly one `rng.gen::<f64>()` per draw — the
//! alias decode splits the single draw's 53 mantissa bits into a column
//! index and a coin, rather than drawing twice — but their floating-point
//! decode orders differ, so a given target can resolve to a different arm at
//! CDF boundaries. Bit-exactness of decision trajectories is therefore
//! **per policy config**: worlds built on the default
//! [`SamplerStrategy::Linear`] keep their historical golden pins, and tree-
//! or alias-sampled configs carry their own.

use crate::NetworkId;
use rand::Rng;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Number of constant-time cache adjustments allowed before the next update
/// performs a full rebuild. Each adjustment perturbs the running sum by at
/// most one ulp, so 64 of them keep the cached distribution within ~1e-14 of
/// a from-scratch softmax — two orders of magnitude tighter than the 1e-12
/// contract the property tests assert.
const PATCH_LIMIT: u32 = 64;

/// How far (in the log domain) a weight may rise **above** the cached shift
/// reference before the tree strategy rebuilds. The linear strategy rebuilds
/// on any overshoot — the historical behaviour its golden pins encode — but
/// at large K the near-uniform phase makes almost every update the new
/// maximum, turning each O(1) patch into an O(k) rebuild. Under
/// [`SamplerStrategy::Tree`] the softmax shift only has to keep
/// `exp(lw − reference)` finite and well-scaled, not anchored to the exact
/// maximum: `exp(40) ≈ 2.4e17` stays far from overflow (`exp(709)`) and far
/// above underflow for any arm within the slack, so probabilities keep full
/// double precision (the softmax ratio is shift-invariant). Rebuilds then
/// come from `PATCH_LIMIT` (or churn events), restoring the amortized-O(1)
/// update the cache was built for.
const MAX_SHIFT_SLACK: f64 = 40.0;

/// Fraction of the total sampled mass the dirty-arm overlay may hold before
/// the alias table is re-frozen. Below the threshold a draw is O(1) with
/// probability ≥ 1 − `DIRTY_MASS_FRACTION` and an O(dirty) short walk
/// otherwise (dirty ≤ `PATCH_LIMIT`); above it the stale table no longer
/// represents most of the distribution and an O(k) rebuild is cheaper than
/// letting the walk dominate. 25% keeps the expected per-draw cost within
/// a small constant of a pure alias lookup while rebuilding at most once
/// per ~`0.25/γ̄`-fold mass growth.
const DIRTY_MASS_FRACTION: f64 = 0.25;

/// How [`WeightTable::sample`] inverts the CDF.
///
/// Part of each policy's configuration: changing it changes the
/// floating-point accumulation order of the CDF inversion (not the sampled
/// distribution), so golden decision pins are scoped to a (policy config,
/// strategy) pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SamplerStrategy {
    /// O(k) walk over the cached probabilities — the historical default, and
    /// the fastest option for the paper's small network sets.
    #[default]
    Linear,
    /// O(log k) Fenwick-tree descent over prefix sums of the cached
    /// exponentials — for dense-spectrum worlds with hundreds of arms.
    Tree,
    /// Amortised-O(1) Vose alias table over the cached exponentials with a
    /// dirty-arm overlay — for static-weight phases (duty-cycled sleepers,
    /// Smart EXP3 blocks) in dense-spectrum worlds, where the table freeze
    /// is amortised over many draws.
    Alias,
}

/// One-pass digest of an EXP3 distribution (see [`WeightTable::summary`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributionSummary {
    /// The arm with the highest probability (earliest-inserted wins ties).
    pub most_probable: NetworkId,
    /// The highest probability.
    pub max: f64,
    /// The lowest probability.
    pub min: f64,
}

/// Exponential weight table over a (possibly changing) set of networks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightTable {
    arms: Vec<NetworkId>,
    /// Natural-log weights; `log_weights[i]` corresponds to `arms[i]`.
    log_weights: Vec<f64>,
    /// `(arm, position)` pairs sorted by arm, for O(log k) lookups.
    index: Vec<(NetworkId, usize)>,
    /// Cached maximum of `log_weights` (the softmax shift).
    max_log_weight: f64,
    /// Cached `exp(log_weights[i] − max_log_weight)`.
    exp_weights: Vec<f64>,
    /// Cached `Σ exp_weights[i]`, maintained incrementally.
    exp_sum: f64,
    /// Constant-time adjustments applied since the last full rebuild.
    patches: u32,
    /// How [`sample`](Self::sample) inverts the CDF.
    strategy: SamplerStrategy,
    /// Fenwick tree over `exp_weights` (1-indexed semantics in a 0-based
    /// vec). Empty under [`SamplerStrategy::Linear`]; under `Tree` it is
    /// rebuilt by every `rebuild_cache` and patched alongside every
    /// constant-time cache adjustment, so its prefix sums track `exp_weights`
    /// within the same `PATCH_LIMIT`-bounded drift as `exp_sum`.
    tree: Vec<f64>,
    /// Vose alias table: probability of keeping the column's own arm.
    /// Empty unless the strategy is [`SamplerStrategy::Alias`].
    alias_prob: Vec<f64>,
    /// Vose alias table: the alternative arm of each column.
    alias_idx: Vec<usize>,
    /// The exponentials the alias table was frozen over (`exp_weights` at
    /// the last [`rebuild_alias`](Self::rebuild_alias)); the overlay walk
    /// needs them to compute each dirty arm's fresh delta mass.
    alias_mass: Vec<f64>,
    /// `Σ alias_mass` at freeze time (recomputed exactly, not the drifting
    /// `exp_sum`).
    alias_total: f64,
    /// Positions patched since the alias table was frozen (deduplicated;
    /// bounded by `PATCH_LIMIT` between cache rebuilds).
    dirty: Vec<usize>,
    /// `Σ_dirty (exp_weights[j] − alias_mass[j])` — the overlay's share of
    /// the sampled mass, always ≥ 0 (negative deltas force a rebuild).
    dirty_mass: f64,
    /// Times the alias table has been (re)built — the observable cost signal
    /// for rebuild storms. Stays 0 under the other strategies.
    sampler_rebuilds: u64,
    /// Draws resolved through the dirty-arm overlay walk instead of the O(1)
    /// alias lookup. Stays 0 under the other strategies.
    overlay_hits: u64,
}

impl WeightTable {
    /// Creates a table with uniform (unit) weights over `arms`, sampling with
    /// the default [`SamplerStrategy::Linear`].
    ///
    /// Duplicate arms are collapsed; the caller is expected to have validated
    /// the arm list already (see [`ConfigError`](crate::ConfigError)).
    #[must_use]
    pub fn uniform(arms: &[NetworkId]) -> Self {
        Self::uniform_with_strategy(arms, SamplerStrategy::default())
    }

    /// Creates a table with uniform (unit) weights over `arms` and an explicit
    /// sampling strategy.
    ///
    /// Duplicate arms are collapsed keeping the first occurrence, exactly as
    /// [`uniform`](Self::uniform) does (the two constructors produce
    /// identical tables apart from the strategy).
    #[must_use]
    pub fn uniform_with_strategy(arms: &[NetworkId], strategy: SamplerStrategy) -> Self {
        // Collapse duplicates in O(k log k): sort (arm, first position)
        // pairs, dedup by arm (keeping the earliest position), then restore
        // insertion order. A per-arm sorted insert would be O(k²) — felt at
        // the dense-urban scale of ~1000 arms × thousands of sessions.
        let mut pairs: Vec<(NetworkId, usize)> = arms
            .iter()
            .copied()
            .enumerate()
            .map(|(position, arm)| (arm, position))
            .collect();
        pairs.sort_unstable();
        pairs.dedup_by(|later, first| later.0 == first.0);
        pairs.sort_unstable_by_key(|&(_, position)| position);
        let arms: Vec<NetworkId> = pairs.into_iter().map(|(arm, _)| arm).collect();
        let mut table = WeightTable {
            log_weights: vec![0.0; arms.len()],
            index: Vec::with_capacity(arms.len()),
            arms,
            max_log_weight: f64::NEG_INFINITY,
            exp_weights: Vec::new(),
            exp_sum: 0.0,
            patches: 0,
            strategy,
            tree: Vec::new(),
            alias_prob: Vec::new(),
            alias_idx: Vec::new(),
            alias_mass: Vec::new(),
            alias_total: 0.0,
            dirty: Vec::new(),
            dirty_mass: 0.0,
            sampler_rebuilds: 0,
            overlay_hits: 0,
        };
        table.rebuild_index();
        table.rebuild_cache();
        table
    }

    /// The active sampling strategy.
    #[must_use]
    pub fn strategy(&self) -> SamplerStrategy {
        self.strategy
    }

    /// Number of arms currently tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.arms.len()
    }

    /// Returns `true` when no arms are tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.arms.is_empty()
    }

    /// The tracked arms, in insertion order.
    #[must_use]
    pub fn arms(&self) -> &[NetworkId] {
        &self.arms
    }

    /// Binary-search result for `arm` in the sorted index: `Ok` holds the
    /// index entry, `Err` the insertion point.
    fn index_slot(&self, arm: NetworkId) -> Result<usize, usize> {
        self.index.binary_search_by_key(&arm, |&(a, _)| a)
    }

    /// Returns the position of `arm` in the table, if tracked, in O(log k).
    #[must_use]
    pub fn position(&self, arm: NetworkId) -> Option<usize> {
        self.index_slot(arm).ok().map(|slot| self.index[slot].1)
    }

    /// Log-weight of `arm`, or `None` if the arm is not tracked.
    #[must_use]
    pub fn log_weight(&self, arm: NetworkId) -> Option<f64> {
        self.position(arm).map(|i| self.log_weights[i])
    }

    /// Rebuilds the cached softmax from the ground-truth log-weights.
    fn rebuild_cache(&mut self) {
        self.max_log_weight = self
            .log_weights
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let max = self.max_log_weight;
        self.exp_weights.clear();
        self.exp_weights
            .extend(self.log_weights.iter().map(|&lw| (lw - max).exp()));
        self.exp_sum = self.exp_weights.iter().sum();
        self.patches = 0;
        self.rebuild_tree();
        self.rebuild_alias();
    }

    /// (Re)freezes the Vose alias table over the cached exponentials, in
    /// O(k), and clears the dirty-arm overlay. No-op (beyond clearing) under
    /// the other strategies.
    ///
    /// Vose's method: scale every mass to `e_i · k / Σe`, split the columns
    /// into deficit (< 1) and surplus (≥ 1) stacks, then repeatedly top a
    /// deficit column up from a surplus one so every column holds exactly
    /// one unit — `alias_prob[c]` of it belonging to arm `c` and the rest to
    /// `alias_idx[c]`. Floating-point leftovers keep their initialised
    /// `prob = 1, idx = self`, which is the exact-arithmetic limit.
    fn rebuild_alias(&mut self) {
        self.alias_prob.clear();
        self.alias_idx.clear();
        self.alias_mass.clear();
        self.alias_total = 0.0;
        self.dirty.clear();
        self.dirty_mass = 0.0;
        if self.strategy != SamplerStrategy::Alias {
            return;
        }
        self.sampler_rebuilds += 1;
        let k = self.exp_weights.len();
        if k == 0 {
            return;
        }
        // The freeze total is summed from scratch — the alias decode must be
        // internally consistent with `alias_mass`, not with the incrementally
        // drifting `exp_sum`.
        let total: f64 = self.exp_weights.iter().sum();
        self.alias_prob.resize(k, 1.0);
        self.alias_idx.extend(0..k);
        if !(total.is_finite() && total > 0.0) {
            // Damaged masses (the non-finite-update guard failed upstream):
            // freeze a uniform table so sampling stays sound, mirroring the
            // linear walk's never-panic contract.
            self.alias_mass.resize(k, 1.0);
            self.alias_total = k as f64;
            return;
        }
        self.alias_mass.extend_from_slice(&self.exp_weights);
        self.alias_total = total;
        let scale = k as f64 / total;
        let mut scaled: Vec<f64> = self.exp_weights.iter().map(|&e| e * scale).collect();
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(deficit), Some(surplus)) = (small.pop(), large.pop()) {
            self.alias_prob[deficit] = scaled[deficit];
            self.alias_idx[deficit] = surplus;
            scaled[surplus] = (scaled[surplus] + scaled[deficit]) - 1.0;
            if scaled[surplus] < 1.0 {
                small.push(surplus);
            } else {
                large.push(surplus);
            }
        }
    }

    /// Folds a constant-time cache patch into the dirty-arm overlay: arm `i`
    /// now carries `delta_mass` more mass than the frozen alias table gives
    /// it. Only positive deltas reach here (the rebuild condition routes
    /// negative ones to a full rebuild), so the overlay mass never goes
    /// negative. Re-freezes the table when the overlay outgrows
    /// [`DIRTY_MASS_FRACTION`] of the total.
    fn overlay_patch(&mut self, i: usize, delta_mass: f64) {
        // O(dirty) dedup keeps the overlay walk exact: a duplicate entry
        // would double-count the arm's delta. `dirty` is bounded by
        // `PATCH_LIMIT`, so this scan is as constant as the patch itself.
        if !self.dirty.contains(&i) {
            self.dirty.push(i);
        }
        self.dirty_mass += delta_mass;
        let total = self.alias_total + self.dirty_mass;
        if !(total.is_finite() && total > 0.0) || self.dirty_mass > DIRTY_MASS_FRACTION * total {
            self.rebuild_alias();
        }
    }

    /// Times the alias table has been (re)built over this table's lifetime
    /// (0 under the linear and tree strategies) — serialized, so restored
    /// fleets keep counting from the snapshot.
    #[must_use]
    pub fn sampler_rebuilds(&self) -> u64 {
        self.sampler_rebuilds
    }

    /// Draws resolved through the dirty-arm overlay walk instead of the O(1)
    /// alias lookup (0 under the linear and tree strategies).
    #[must_use]
    pub fn overlay_hits(&self) -> u64 {
        self.overlay_hits
    }

    /// Rebuilds the Fenwick tree from the cached exponentials, in place and
    /// in O(k). No-op (and no allocation) under the linear strategy.
    fn rebuild_tree(&mut self) {
        self.tree.clear();
        if self.strategy != SamplerStrategy::Tree {
            return;
        }
        let k = self.exp_weights.len();
        self.tree.extend_from_slice(&self.exp_weights);
        for node in 1..=k {
            let parent = node + (node & node.wrapping_neg());
            if parent <= k {
                let child_sum = self.tree[node - 1];
                self.tree[parent - 1] += child_sum;
            }
        }
    }

    /// Point-adds `delta` to position `i` of the Fenwick tree, in O(log k).
    fn tree_add(&mut self, i: usize, delta: f64) {
        let mut node = i + 1;
        while node <= self.tree.len() {
            self.tree[node - 1] += delta;
            node += node & node.wrapping_neg();
        }
    }

    /// Rebuilds the sorted arm index (positions shift after a removal).
    fn rebuild_index(&mut self) {
        self.index.clear();
        self.index
            .extend(self.arms.iter().copied().enumerate().map(|(i, a)| (a, i)));
        self.index.sort_unstable_by_key(|&(a, _)| a);
    }

    /// The EXP3 probability of the arm at position `i` under `gamma`,
    /// computed from the cache in O(1).
    #[inline]
    fn probability_at(&self, i: usize, gamma: f64) -> f64 {
        let k = self.arms.len() as f64;
        (1.0 - gamma) * (self.exp_weights[i] / self.exp_sum) + gamma / k
    }

    /// Applies the EXP3 multiplicative update `w ← w · exp(γ ĝ / k)` to `arm`.
    ///
    /// `estimated_gain` is the importance-weighted gain `ĝ = g / p`.
    /// Unknown arms are ignored (this can only happen transiently around a
    /// change in the available-network set). Non-finite estimates are
    /// rejected outright: a single NaN or ±∞ gain would otherwise poison the
    /// whole distribution, so the update is dropped and the table left
    /// unchanged.
    pub fn multiplicative_update(&mut self, arm: NetworkId, gamma: f64, estimated_gain: f64) {
        if !estimated_gain.is_finite() {
            return;
        }
        let k = self.arms.len().max(1) as f64;
        let delta = gamma * estimated_gain / k;
        let Some(i) = self.position(arm) else {
            return;
        };
        if delta == 0.0 {
            return;
        }
        let old_lw = self.log_weights[i];
        let new_lw = old_lw + delta;
        self.log_weights[i] = new_lw;

        let removed = self.exp_weights[i];
        if self.needs_cache_rebuild(old_lw, new_lw, delta, removed) {
            // The maximum shifted, the arm that defined it shrank, a dominant
            // term is about to be cancelled out of the running sum, or the
            // drift budget is spent: recompute from the ground truth.
            self.rebuild_cache();
        } else {
            let added = (new_lw - self.max_log_weight).exp();
            self.exp_weights[i] = added;
            self.exp_sum += added - removed;
            self.patches += 1;
            if self.exp_sum.is_finite() && self.exp_sum > 0.0 {
                // The cache patch held; mirror it into the sampler structure
                // so draws see the same incrementally maintained masses.
                match self.strategy {
                    SamplerStrategy::Linear => {}
                    SamplerStrategy::Tree => self.tree_add(i, added - removed),
                    SamplerStrategy::Alias => self.overlay_patch(i, added - removed),
                }
            } else {
                self.rebuild_cache();
            }
        }
        self.renormalize();
    }

    /// The one shared rebuild condition for every sampling strategy: decides
    /// whether this update can be a constant-time cache patch or must
    /// recompute from the ground truth.
    ///
    /// The strategies differ only in two knobs. **Shift slack**: the linear
    /// strategy rebuilds on any overshoot of the cached shift (the exact
    /// historical condition its golden pins encode — the `+ 0.0` is
    /// bit-exact), while the tree and alias strategies tolerate
    /// `MAX_SHIFT_SLACK` so the large-K hot path stays a patch (see that
    /// constant's docs). **Negative patchability**: linear and tree caches
    /// patch a shrinking arm in place, but the alias overlay cannot express
    /// negative delta mass without breaking the single-draw decode, so any
    /// negative delta rebuilds — harmless in practice, since EXP3-proper
    /// estimated gains are ≥ 0.
    fn needs_cache_rebuild(&self, old_lw: f64, new_lw: f64, delta: f64, removed: f64) -> bool {
        let (slack, patchable_negative) = match self.strategy {
            SamplerStrategy::Linear => (0.0, true),
            SamplerStrategy::Tree => (MAX_SHIFT_SLACK, true),
            SamplerStrategy::Alias => (MAX_SHIFT_SLACK, false),
        };
        self.patches >= PATCH_LIMIT
            || new_lw > self.max_log_weight + slack
            || (delta < 0.0
                && (!patchable_negative
                    || old_lw == self.max_log_weight
                    || removed > 0.5 * self.exp_sum))
    }

    /// Folds one **shared** (gossiped) gain estimate into `arm`'s weight —
    /// the Co-Bandit cooperative-feedback path, reusing the incremental
    /// cached-distribution update so gossip costs the same one `exp` as a
    /// bandit update.
    ///
    /// Shared rates come from neighbours' raw measurements, so the guard is
    /// stricter than [`multiplicative_update`](Self::multiplicative_update)'s:
    /// besides non-finite estimates, **negative** shared rates are rejected
    /// outright (a scaled gain is `[0, 1]` by construction; a negative report
    /// is a corrupt or hostile message, and folding it in would drain weight
    /// from an arm based on data nobody observed).
    pub fn shared_update(&mut self, arm: NetworkId, gamma: f64, shared_gain: f64) {
        if !shared_gain.is_finite() || shared_gain < 0.0 {
            return;
        }
        self.multiplicative_update(arm, gamma, shared_gain);
    }

    /// EXP3 probability distribution `p_i = (1-γ)·softmax(w)_i + γ/k`,
    /// returned in the same order as [`arms`](Self::arms).
    #[must_use]
    pub fn probabilities(&self, gamma: f64) -> Vec<f64> {
        let mut out = Vec::new();
        self.probabilities_into(gamma, &mut out);
        out
    }

    /// Zero-alloc variant of [`probabilities`](Self::probabilities): fills
    /// `out` (cleared first), reusing its capacity.
    pub fn probabilities_into(&self, gamma: f64, out: &mut Vec<f64>) {
        out.clear();
        if self.arms.is_empty() {
            return;
        }
        out.extend((0..self.arms.len()).map(|i| self.probability_at(i, gamma)));
    }

    /// Zero-alloc `(arm, probability)` listing in insertion order: fills
    /// `out` (cleared first), reusing its capacity.
    pub fn probability_pairs_into(&self, gamma: f64, out: &mut Vec<(NetworkId, f64)>) {
        out.clear();
        out.extend(
            self.arms
                .iter()
                .enumerate()
                .map(|(i, &arm)| (arm, self.probability_at(i, gamma))),
        );
    }

    /// Bounded top-`k` `(arm, probability)` selection over the cached
    /// exponentials, highest probability first: fills `out` (cleared first,
    /// capacity reused) with at most `k` pairs without materialising the full
    /// O(K) listing — an O(K·k) insertion-select, so dense-world readers that
    /// only consume the top choice pay O(K) instead of O(K) + an O(K)
    /// allocation-sized copy.
    ///
    /// Ties break towards the **later-inserted** arm (the opposite of
    /// [`summary`](Self::summary)), matching what a reader gets from scanning
    /// the full [`probability_pairs_into`](Self::probability_pairs_into)
    /// listing with `Iterator::max_by` — the historical engine idiom this
    /// method replaces. Comparisons use `f64::total_cmp`.
    pub fn top_probabilities_into(&self, gamma: f64, k: usize, out: &mut Vec<(NetworkId, f64)>) {
        out.clear();
        if k == 0 {
            return;
        }
        for (i, &arm) in self.arms.iter().enumerate() {
            let p = self.probability_at(i, gamma);
            if out.len() == k && out[k - 1].1.total_cmp(&p).is_gt() {
                continue;
            }
            let pos = out
                .iter()
                .position(|&(_, q)| q.total_cmp(&p).is_le())
                .unwrap_or(out.len());
            out.insert(pos, (arm, p));
            out.truncate(k);
        }
    }

    /// Probability of a specific arm under the EXP3 rule, in O(log k) (an
    /// index lookup plus a constant-time cache read).
    #[must_use]
    pub fn probability_of(&self, arm: NetworkId, gamma: f64) -> f64 {
        match self.position(arm) {
            Some(i) => self.probability_at(i, gamma),
            None => 0.0,
        }
    }

    /// The most probable arm and its probability, breaking ties towards the
    /// earliest-inserted arm. `None` when the table is empty.
    #[must_use]
    pub fn most_probable(&self, gamma: f64) -> Option<(NetworkId, f64)> {
        self.summary(gamma).map(|s| (s.most_probable, s.max))
    }

    /// `(min, max)` of the distribution, or `None` when the table is empty.
    #[must_use]
    pub fn probability_bounds(&self, gamma: f64) -> Option<(f64, f64)> {
        self.summary(gamma).map(|s| (s.min, s.max))
    }

    /// One-pass summary of the distribution (argmax arm, maximum and minimum
    /// probability), or `None` when the table is empty. The EXP3-family
    /// policies consult all three for every fresh decision (greedy and reset
    /// conditions), so they are produced together from the cache.
    #[must_use]
    pub fn summary(&self, gamma: f64) -> Option<DistributionSummary> {
        if self.arms.is_empty() {
            return None;
        }
        let mut best = 0;
        let mut max_p = self.probability_at(0, gamma);
        let mut min_p = max_p;
        for i in 1..self.arms.len() {
            let p = self.probability_at(i, gamma);
            if p > max_p {
                best = i;
                max_p = p;
            }
            if p < min_p {
                min_p = p;
            }
        }
        Some(DistributionSummary {
            most_probable: self.arms[best],
            max: max_p,
            min: min_p,
        })
    }

    /// Samples an arm from the EXP3 distribution, reusing the cache (no
    /// allocation, no softmax recomputation). Exactly one `f64` is drawn
    /// from `rng`, whichever [`SamplerStrategy`] is active.
    ///
    /// If the distribution has been damaged despite the non-finite-update
    /// guard (probabilities that fail to accumulate past the drawn target),
    /// the walk falls back to an arm instead of panicking — one poisoned
    /// session must never take down a fleet.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty.
    pub fn sample(&mut self, gamma: f64, rng: &mut dyn RngCore) -> (NetworkId, f64) {
        let target: f64 = rng.gen();
        let (i, overlay) = self.invert_at(gamma, target);
        // `&mut self` exists solely for this count: overlay traffic is the
        // alias strategy's cost signal, surfaced through `PolicyStats`.
        if overlay {
            self.overlay_hits += 1;
        }
        (self.arms[i], self.probability_at(i, gamma))
    }

    /// Deterministic core of [`sample`](Self::sample): inverts the CDF at
    /// `target ∈ [0, 1)` using the active strategy. Exposed so tests can pin
    /// strategy equivalence at chosen targets without mocking an RNG. Does
    /// not count overlay hits (it takes `&self`); [`sample`](Self::sample)
    /// is the counting entry point.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty.
    #[must_use]
    pub fn sample_at(&self, gamma: f64, target: f64) -> (NetworkId, f64) {
        let (i, _) = self.invert_at(gamma, target);
        (self.arms[i], self.probability_at(i, gamma))
    }

    /// Strategy dispatch for the CDF inversion. The second return value
    /// reports whether the draw resolved through the dirty-arm overlay
    /// (always `false` for the linear and tree strategies).
    fn invert_at(&self, gamma: f64, target: f64) -> (usize, bool) {
        assert!(
            !self.arms.is_empty(),
            "cannot sample from an empty weight table"
        );
        match self.strategy {
            SamplerStrategy::Linear => (self.invert_linear(gamma, target), false),
            SamplerStrategy::Tree => (self.invert_tree(gamma, target), false),
            SamplerStrategy::Alias => self.invert_alias(gamma, target),
        }
    }

    /// O(k) CDF walk — the historical sampler. Its exact subtraction order
    /// defines the pre-existing golden decision pins, so it must never
    /// change.
    fn invert_linear(&self, gamma: f64, mut target: f64) -> usize {
        let k = self.arms.len();
        for i in 0..k {
            let p = self.probability_at(i, gamma);
            if target < p || i + 1 == k {
                return i;
            }
            target -= p;
        }
        // Unreachable through the loop above (the `i + 1 == k` branch fires
        // on the final arm), but kept as a defensive fallback.
        k - 1
    }

    /// O(log k) Fenwick descent. The mixed per-arm mass is
    /// `(1-γ)·e_i/Σe + γ/k`; the tree stores prefix sums of the `e_i` alone
    /// and the uniform γ/k share is added analytically from the arm count
    /// covered so far, so the structure is γ-free and survives schedule
    /// decay without rebuilds. Finds the largest prefix whose cumulative
    /// mass is ≤ `target`, i.e. the same arm the linear walk selects (up to
    /// floating-point accumulation order at CDF boundaries).
    fn invert_tree(&self, gamma: f64, target: f64) -> usize {
        let k = self.arms.len();
        let scale = (1.0 - gamma) / self.exp_sum;
        let uniform = gamma / k as f64;
        let mut covered = 0usize; // arms confirmed to lie below the target
        let mut acc = 0.0f64; // Fenwick prefix of exp_weights over them
        let mut step = 1usize << (usize::BITS - 1 - k.leading_zeros());
        while step > 0 {
            let next = covered + step;
            if next <= k {
                let prefix = acc + self.tree[next - 1];
                let mass = scale * prefix + uniform * next as f64;
                if mass <= target {
                    covered = next;
                    acc = prefix;
                }
            }
            step >>= 1;
        }
        // `covered == k` only when the target sits at or beyond the total
        // mass (≈1 up to rounding) — mirror the linear walk's last-arm
        // fallback. A damaged cache (NaN masses) never advances the descent
        // and resolves to the first arm.
        covered.min(k - 1)
    }

    /// Amortised-O(1) alias decode. The single `target ∈ [0, 1)` is consumed
    /// in stages, each stage rescaling the remainder back to `[0, 1)` so the
    /// next stage sees a full-precision uniform variate (splitting the one
    /// draw rather than drawing again — the one-RNG-draw contract):
    ///
    /// 1. `target < γ` resolves the uniform γ/k mixture analytically to arm
    ///    `⌊target/γ · k⌋`.
    /// 2. Otherwise the remainder selects softmax mass. A slice proportional
    ///    to the overlay's share routes to an O(dirty) walk over the dirty
    ///    arms' fresh deltas (`overlay = true`).
    /// 3. The rest drives the Vose table: the integer part of `u·k` picks a
    ///    column, the fractional part is the coin against `alias_prob` —
    ///    two array reads.
    ///
    /// Clean arms' frozen mass equals their current mass, so the mixture of
    /// stale table plus fresh deltas is the exact cached distribution.
    /// A damaged table (non-finite totals) falls back to the linear walk —
    /// one poisoned session must never take down a fleet.
    fn invert_alias(&self, gamma: f64, target: f64) -> (usize, bool) {
        let k = self.arms.len();
        if target < gamma {
            // γ > 0 here (`target < γ` is unreachable for γ ≤ 0), and the
            // `min` clamps the `x ≈ k` rounding edge into the last arm.
            let x = target / gamma * k as f64;
            return ((x as usize).min(k - 1), false);
        }
        let total = self.alias_total + self.dirty_mass;
        if !(total.is_finite() && total > 0.0) || self.alias_prob.len() != k {
            return (self.invert_linear(gamma, target), false);
        }
        let s = (target - gamma) / (1.0 - gamma);
        let fresh_frac = self.dirty_mass / total;
        if s < fresh_frac {
            // Overlay walk over the fresh deltas, in patch order. The
            // accumulated `dirty_mass` and the per-arm recomputed deltas can
            // disagree by ulps, so the walk clamps to the last dirty arm
            // exactly as the linear walk clamps to its last arm.
            let mut remaining = s * total;
            for (walked, &j) in self.dirty.iter().enumerate() {
                let delta = self.exp_weights[j] - self.alias_mass[j];
                if remaining < delta || walked + 1 == self.dirty.len() {
                    return (j, true);
                }
                remaining -= delta;
            }
            // Unreachable (the walk clamps on its final entry; `s <
            // fresh_frac` implies the overlay is non-empty), kept defensive.
            return (k - 1, true);
        }
        let u = (s - fresh_frac) / (1.0 - fresh_frac);
        let x = u * k as f64;
        let column = (x as usize).min(k - 1);
        let coin = x - column as f64;
        // A NaN coin or prob fails the comparison and takes the alias
        // branch, which always holds a valid arm index.
        let arm = if coin < self.alias_prob[column] {
            column
        } else {
            self.alias_idx[column]
        };
        (arm, false)
    }

    /// Adds a newly discovered arm.
    ///
    /// Following §III ("Change in set of networks"), the new arm's weight is
    /// set to the maximum weight of the existing arms (or 1 if the table was
    /// empty), so that it has a realistic chance of being explored.
    pub fn add_arm(&mut self, arm: NetworkId) {
        let slot = match self.index_slot(arm) {
            Ok(_) => return,
            Err(slot) => slot,
        };
        // The ground-truth maximum, not the cached shift reference (under
        // the tree strategy the reference may lag the maximum by up to
        // `MAX_SHIFT_SLACK`; under the linear strategy the two are equal).
        let true_max = self
            .log_weights
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let lw = if true_max.is_finite() { true_max } else { 0.0 };
        self.index.insert(slot, (arm, self.arms.len()));
        self.arms.push(arm);
        self.log_weights.push(lw);
        self.rebuild_cache();
    }

    /// Removes an arm that is no longer available. Returns `true` if it was
    /// present.
    pub fn remove_arm(&mut self, arm: NetworkId) -> bool {
        match self.position(arm) {
            Some(i) => {
                self.arms.remove(i);
                self.log_weights.remove(i);
                self.rebuild_index();
                self.rebuild_cache();
                true
            }
            None => false,
        }
    }

    /// Resets every weight back to 1 (log-weight 0), keeping the arm set.
    pub fn reset_uniform(&mut self) {
        for lw in &mut self.log_weights {
            *lw = 0.0;
        }
        self.rebuild_cache();
    }

    /// Keeps log-weights centred around zero so they never overflow even over
    /// billions of updates. Shifting all log-weights by a constant does not
    /// change the softmax — nor the cached exponentials, which are stored
    /// relative to the maximum.
    fn renormalize(&mut self) {
        let max_lw = self.max_log_weight;
        if max_lw.is_finite() && max_lw.abs() > 1e3 {
            for lw in &mut self.log_weights {
                *lw -= max_lw;
            }
            self.max_log_weight = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn arms(k: u32) -> Vec<NetworkId> {
        (0..k).map(NetworkId).collect()
    }

    /// From-scratch reference distribution, bypassing the cache entirely.
    fn naive_probabilities(table: &WeightTable, gamma: f64) -> Vec<f64> {
        let k = table.len();
        let lws: Vec<f64> = table
            .arms()
            .iter()
            .map(|&a| table.log_weight(a).unwrap())
            .collect();
        let max = lws.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = lws.iter().map(|&lw| (lw - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        exps.into_iter()
            .map(|e| (1.0 - gamma) * e / sum + gamma / k as f64)
            .collect()
    }

    #[test]
    fn uniform_table_gives_uniform_probabilities() {
        let table = WeightTable::uniform(&arms(4));
        let probs = table.probabilities(0.1);
        for p in probs {
            assert!((p - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn top_probabilities_match_a_full_listing_scan() {
        let mut rng = StdRng::seed_from_u64(71);
        for strategy in [SamplerStrategy::Linear, SamplerStrategy::Tree] {
            let mut table = WeightTable::uniform_with_strategy(&arms(17), strategy);
            let gamma = 0.07;
            for round in 0..200 {
                let arm = NetworkId(round % 17);
                table.multiplicative_update(arm, gamma, ((round % 13) as f64).mul_add(0.17, 0.4));
                let mut pairs = Vec::new();
                table.probability_pairs_into(gamma, &mut pairs);
                // The engine's historical idiom: scan the full listing, last
                // maximal element wins ties.
                let expected_top = pairs.iter().copied().max_by(|a, b| a.1.total_cmp(&b.1));
                let mut top = Vec::new();
                table.top_probabilities_into(gamma, 1, &mut top);
                assert_eq!(top.first().copied(), expected_top);

                // Full-width selection must be a descending permutation of
                // the listing; k = 0 must yield nothing.
                table.top_probabilities_into(gamma, 17, &mut top);
                assert_eq!(top.len(), 17);
                let mut sorted = pairs.clone();
                sorted.sort_by(|a, b| b.1.total_cmp(&a.1));
                for (got, want) in top.iter().zip(&sorted) {
                    assert_eq!(got.1.to_bits(), want.1.to_bits());
                }
                table.top_probabilities_into(gamma, 0, &mut top);
                assert!(top.is_empty());
                let _ = table.sample(gamma, &mut rng);
            }
        }
    }

    #[test]
    fn top_probabilities_tie_towards_the_later_arm() {
        // A fresh table is exactly uniform: every arm ties, so the selected
        // top-1 must be the *last* arm (engine `max_by` semantics), and the
        // top-3 must come back in reverse insertion order.
        let table = WeightTable::uniform(&arms(5));
        let mut top = Vec::new();
        table.top_probabilities_into(0.1, 1, &mut top);
        assert_eq!(top[0].0, NetworkId(4));
        table.top_probabilities_into(0.1, 3, &mut top);
        assert_eq!(
            top.iter().map(|&(a, _)| a).collect::<Vec<_>>(),
            vec![NetworkId(4), NetworkId(3), NetworkId(2)]
        );
    }

    #[test]
    fn duplicate_arms_are_collapsed() {
        let table = WeightTable::uniform(&[NetworkId(1), NetworkId(0), NetworkId(1)]);
        assert_eq!(table.len(), 2);
        assert_eq!(table.arms(), &[NetworkId(1), NetworkId(0)]);
        assert_eq!(table.position(NetworkId(1)), Some(0));
        assert_eq!(table.position(NetworkId(0)), Some(1));
    }

    #[test]
    fn probabilities_sum_to_one_after_updates() {
        let mut table = WeightTable::uniform(&arms(3));
        table.multiplicative_update(NetworkId(1), 0.3, 5.0);
        table.multiplicative_update(NetworkId(2), 0.3, 1.0);
        let probs = table.probabilities(0.2);
        let sum: f64 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rewarded_arm_gains_probability() {
        let mut table = WeightTable::uniform(&arms(3));
        for _ in 0..20 {
            table.multiplicative_update(NetworkId(2), 0.2, 2.0);
        }
        let probs = table.probabilities(0.1);
        assert!(probs[2] > probs[0]);
        assert!(probs[2] > probs[1]);
    }

    #[test]
    fn gamma_one_forces_uniform_exploration() {
        let mut table = WeightTable::uniform(&arms(5));
        table.multiplicative_update(NetworkId(0), 0.5, 50.0);
        let probs = table.probabilities(1.0);
        for p in probs {
            assert!((p - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn huge_updates_do_not_overflow() {
        let mut table = WeightTable::uniform(&arms(3));
        for _ in 0..10_000 {
            table.multiplicative_update(NetworkId(0), 1.0, 500.0);
        }
        let probs = table.probabilities(0.01);
        assert!(probs.iter().all(|p| p.is_finite()));
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(probs[0] > 0.98);
    }

    #[test]
    fn cached_distribution_tracks_the_naive_softmax() {
        let mut table = WeightTable::uniform(&arms(5));
        let mut rng = StdRng::seed_from_u64(99);
        for step in 0..5_000 {
            let arm = NetworkId((rng.gen::<u32>()) % 5);
            let gain = rng.gen::<f64>() * 40.0 - 5.0; // includes negative updates
            table.multiplicative_update(arm, 0.3, gain);
            let gamma = rng.gen::<f64>();
            let cached = table.probabilities(gamma);
            let naive = naive_probabilities(&table, gamma);
            for (c, n) in cached.iter().zip(&naive) {
                assert!((c - n).abs() < 1e-12, "step {step}: cached {c} naive {n}");
            }
        }
    }

    #[test]
    fn non_finite_updates_are_rejected() {
        let mut table = WeightTable::uniform(&arms(3));
        table.multiplicative_update(NetworkId(1), 0.5, 4.0);
        let before = table.probabilities(0.1);
        table.multiplicative_update(NetworkId(0), 0.5, f64::NAN);
        table.multiplicative_update(NetworkId(1), 0.5, f64::INFINITY);
        table.multiplicative_update(NetworkId(2), 0.5, f64::NEG_INFINITY);
        assert_eq!(table.probabilities(0.1), before);
        // Sampling still works and never panics.
        let mut rng = StdRng::seed_from_u64(7);
        let (arm, p) = table.sample(0.1, &mut rng);
        assert!(table.arms().contains(&arm));
        assert!(p.is_finite() && p > 0.0);
    }

    #[test]
    fn shared_updates_reject_non_finite_and_negative_rates() {
        let mut table = WeightTable::uniform(&arms(3));
        table.multiplicative_update(NetworkId(1), 0.5, 4.0);
        let before = table.probabilities(0.1);
        table.shared_update(NetworkId(0), 0.5, f64::NAN);
        table.shared_update(NetworkId(1), 0.5, f64::INFINITY);
        table.shared_update(NetworkId(2), 0.5, f64::NEG_INFINITY);
        table.shared_update(NetworkId(0), 0.5, -0.4);
        assert_eq!(table.probabilities(0.1), before);
        // A valid shared rate behaves exactly like a multiplicative update.
        let mut reference = table.clone();
        table.shared_update(NetworkId(2), 0.3, 0.8);
        reference.multiplicative_update(NetworkId(2), 0.3, 0.8);
        assert_eq!(table.probabilities(0.2), reference.probabilities(0.2));
    }

    #[test]
    fn new_arm_inherits_max_weight() {
        let mut table = WeightTable::uniform(&arms(2));
        table.multiplicative_update(NetworkId(1), 0.5, 10.0);
        let best_lw = table.log_weight(NetworkId(1)).unwrap();
        table.add_arm(NetworkId(7));
        assert_eq!(table.log_weight(NetworkId(7)), Some(best_lw));
    }

    #[test]
    fn remove_arm_shrinks_distribution() {
        let mut table = WeightTable::uniform(&arms(3));
        assert!(table.remove_arm(NetworkId(1)));
        assert!(!table.remove_arm(NetworkId(1)));
        assert_eq!(table.len(), 2);
        let probs = table.probabilities(0.0);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Positions stay consistent after the removal.
        assert_eq!(table.position(NetworkId(0)), Some(0));
        assert_eq!(table.position(NetworkId(2)), Some(1));
        assert_eq!(table.position(NetworkId(1)), None);
    }

    #[test]
    fn probability_of_matches_the_full_listing() {
        let mut table = WeightTable::uniform(&arms(4));
        for step in 0..200 {
            table.multiplicative_update(NetworkId(step % 4), 0.4, (step % 7) as f64);
            let probs = table.probabilities(0.2);
            for (i, &arm) in table.arms().iter().enumerate() {
                assert_eq!(table.probability_of(arm, 0.2), probs[i]);
            }
        }
        assert_eq!(table.probability_of(NetworkId(9), 0.2), 0.0);
    }

    #[test]
    fn most_probable_and_bounds_agree_with_the_listing() {
        let mut table = WeightTable::uniform(&arms(4));
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..500 {
            table.multiplicative_update(
                NetworkId(rng.gen::<u32>() % 4),
                0.3,
                rng.gen::<f64>() * 9.0,
            );
            let probs = table.probabilities(0.15);
            let naive_best =
                probs
                    .iter()
                    .enumerate()
                    .fold(0usize, |b, (i, &p)| if p > probs[b] { i } else { b });
            let (arm, p) = table.most_probable(0.15).unwrap();
            assert_eq!(arm, table.arms()[naive_best]);
            assert_eq!(p, probs[naive_best]);
            let (min_p, max_p) = table.probability_bounds(0.15).unwrap();
            assert_eq!(min_p, probs.iter().cloned().fold(f64::INFINITY, f64::min));
            assert_eq!(
                max_p,
                probs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            );
        }
    }

    #[test]
    fn probabilities_into_reuses_the_buffer() {
        let mut table = WeightTable::uniform(&arms(3));
        table.multiplicative_update(NetworkId(0), 0.2, 3.0);
        let mut buffer = Vec::new();
        table.probabilities_into(0.1, &mut buffer);
        assert_eq!(buffer, table.probabilities(0.1));
        let capacity = buffer.capacity();
        table.probabilities_into(0.4, &mut buffer);
        assert_eq!(buffer.capacity(), capacity, "buffer must be reused");
        assert_eq!(buffer, table.probabilities(0.4));
    }

    #[test]
    fn sampling_respects_distribution() {
        let mut table = WeightTable::uniform(&arms(2));
        for _ in 0..50 {
            table.multiplicative_update(NetworkId(1), 0.3, 3.0);
        }
        let mut rng = StdRng::seed_from_u64(42);
        let mut hits = 0;
        for _ in 0..2000 {
            let (arm, p) = table.sample(0.1, &mut rng);
            assert!(p > 0.0 && p <= 1.0);
            if arm == NetworkId(1) {
                hits += 1;
            }
        }
        assert!(hits > 1600, "expected heavy bias towards arm 1, got {hits}");
    }

    /// Property test for the Fenwick path: a tree-strategy table driven
    /// through a random mix of updates, arm churn and resets must keep its
    /// distribution within 1e-12 of the from-scratch softmax after every
    /// operation. The tree cache's shift reference is allowed to lag the true
    /// max (`MAX_SHIFT_SLACK`), so agreeing with the naive computation is
    /// exactly the shift-invariance the design claims.
    #[test]
    fn tree_distribution_tracks_the_naive_softmax_under_churn() {
        let mut table = WeightTable::uniform_with_strategy(&arms(12), SamplerStrategy::Tree);
        let mut rng = StdRng::seed_from_u64(314);
        let mut next_arm = 12u32;
        for step in 0..4_000 {
            match rng.gen::<u32>() % 20 {
                0 => {
                    table.add_arm(NetworkId(next_arm));
                    next_arm += 1;
                }
                1 if table.len() > 2 => {
                    let victim = table.arms()[rng.gen::<usize>() % table.len()];
                    assert!(table.remove_arm(victim));
                }
                2 if step % 500 == 2 => table.reset_uniform(),
                _ => {
                    let arm = table.arms()[rng.gen::<usize>() % table.len()];
                    let gain = rng.gen::<f64>() * 40.0 - 5.0;
                    table.multiplicative_update(arm, 0.3, gain);
                }
            }
            let gamma = rng.gen::<f64>();
            let cached = table.probabilities(gamma);
            let naive = naive_probabilities(&table, gamma);
            for (c, n) in cached.iter().zip(&naive) {
                assert!((c - n).abs() < 1e-12, "step {step}: cached {c} naive {n}");
            }
        }
    }

    /// The two CDF inverters must agree decision-for-decision: identical
    /// update histories, identical targets, same chosen arm at every draw.
    #[test]
    fn linear_and_tree_inversion_agree_decision_for_decision() {
        for k in [2u32, 64, 1024] {
            let mut linear = WeightTable::uniform_with_strategy(&arms(k), SamplerStrategy::Linear);
            let mut tree = WeightTable::uniform_with_strategy(&arms(k), SamplerStrategy::Tree);
            let mut rng = StdRng::seed_from_u64(u64::from(k));
            for step in 0..1_500 {
                let target = rng.gen::<f64>();
                let gamma = 0.05 + 0.9 * rng.gen::<f64>();
                let (arm_l, p_l) = linear.sample_at(gamma, target);
                let (arm_t, p_t) = tree.sample_at(gamma, target);
                assert_eq!(arm_l, arm_t, "K={k} step {step}: inverters disagreed");
                assert!(
                    (p_l - p_t).abs() < 1e-12,
                    "K={k} step {step}: probabilities drifted: {p_l} vs {p_t}"
                );
                let gain = rng.gen::<f64>() / p_l.max(1e-6);
                linear.multiplicative_update(arm_l, gamma, gain);
                tree.multiplicative_update(arm_t, gamma, gain);
            }
            // Boundary targets: 0 must land on the first arm's mass, and
            // targets at (or past) 1.0 must clamp into the last arm rather
            // than walk off the table.
            for target in [0.0, 1.0 - 1e-15, 1.0] {
                let (arm_l, _) = linear.sample_at(0.2, target);
                let (arm_t, _) = tree.sample_at(0.2, target);
                assert_eq!(arm_l, arm_t, "K={k} target {target}: boundary drifted");
            }
        }
    }

    /// Per-arm probabilities the alias decode actually samples: mass decoded
    /// from the Vose columns (each column holds `alias_total / k`, split by
    /// its coin threshold) plus each dirty arm's fresh delta, mixed with the
    /// γ/k uniform share — the ground truth for what `invert_alias` draws,
    /// reconstructed without inverting anything.
    fn alias_decoded_probabilities(table: &WeightTable, gamma: f64) -> Vec<f64> {
        let k = table.len();
        let column_mass = table.alias_total / k as f64;
        let mut mass = vec![0.0f64; k];
        for c in 0..k {
            mass[c] += column_mass * table.alias_prob[c];
            mass[table.alias_idx[c]] += column_mass * (1.0 - table.alias_prob[c]);
        }
        for &j in &table.dirty {
            mass[j] += table.exp_weights[j] - table.alias_mass[j];
        }
        let total = table.alias_total + table.dirty_mass;
        mass.into_iter()
            .map(|m| (1.0 - gamma) * m / total + gamma / k as f64)
            .collect()
    }

    /// Property test for the alias path: an alias-strategy table driven
    /// through random updates, arm churn, resets and **sleep phases**
    /// (draw-only stretches, the static-weight regime the strategy exists
    /// for) must keep both its cached distribution *and* the distribution
    /// its decode actually samples within 1e-12 of the from-scratch softmax
    /// after every operation.
    #[test]
    fn alias_distribution_tracks_the_naive_softmax_under_churn() {
        let mut table = WeightTable::uniform_with_strategy(&arms(12), SamplerStrategy::Alias);
        let mut rng = StdRng::seed_from_u64(314);
        let mut next_arm = 12u32;
        for step in 0..4_000 {
            match rng.gen::<u32>() % 20 {
                0 => {
                    table.add_arm(NetworkId(next_arm));
                    next_arm += 1;
                }
                1 if table.len() > 2 => {
                    let victim = table.arms()[rng.gen::<usize>() % table.len()];
                    assert!(table.remove_arm(victim));
                }
                2 if step % 500 == 2 => table.reset_uniform(),
                3 => {
                    // Sleep: frozen weights, sampling only. The overlay and
                    // table must be untouched by draws.
                    let before = table.probabilities(0.3);
                    for _ in 0..25 {
                        let (arm, p) = table.sample(0.3, &mut rng);
                        assert!(table.arms().contains(&arm));
                        assert!(p.is_finite() && p > 0.0);
                    }
                    assert_eq!(table.probabilities(0.3), before);
                }
                _ => {
                    let arm = table.arms()[rng.gen::<usize>() % table.len()];
                    let gain = rng.gen::<f64>() * 40.0 - 5.0;
                    table.multiplicative_update(arm, 0.3, gain);
                }
            }
            let gamma = rng.gen::<f64>();
            let cached = table.probabilities(gamma);
            let naive = naive_probabilities(&table, gamma);
            let decoded = alias_decoded_probabilities(&table, gamma);
            for ((c, n), d) in cached.iter().zip(&naive).zip(&decoded) {
                assert!((c - n).abs() < 1e-12, "step {step}: cached {c} naive {n}");
                assert!((d - n).abs() < 1e-12, "step {step}: decoded {d} naive {n}");
            }
        }
        assert!(
            table.sampler_rebuilds() > 0,
            "churn must have re-frozen the table"
        );
    }

    /// Single-draw inversion fuzz for the alias decode: at every target the
    /// chosen arm must be valid and carry its exact cached probability
    /// (checked against an update-for-update linear twin), the seam targets
    /// between the uniform head, the dirty overlay and the frozen table must
    /// resolve without panicking, and a full grid inversion must map
    /// Lebesgue measure back to the distribution.
    #[test]
    fn alias_inversion_is_sound_decision_for_decision() {
        for k in [2u32, 64, 1024] {
            let mut linear = WeightTable::uniform_with_strategy(&arms(k), SamplerStrategy::Linear);
            let mut alias = WeightTable::uniform_with_strategy(&arms(k), SamplerStrategy::Alias);
            let mut rng = StdRng::seed_from_u64(2_000 + u64::from(k));
            for step in 0..1_500 {
                let target = rng.gen::<f64>();
                let gamma = 0.05 + 0.9 * rng.gen::<f64>();
                // The alias decode spends the draw's bits differently from
                // the linear walk, so the *arm* may differ at equal targets;
                // what must hold decision-for-decision is that the arm is
                // real and its reported probability is the distribution's.
                let (arm, p) = alias.sample_at(gamma, target);
                assert!(alias.arms().contains(&arm), "K={k} step {step}");
                let p_twin = linear.probability_of(arm, gamma);
                assert!(
                    (p - p_twin).abs() < 1e-12,
                    "K={k} step {step}: alias {p} vs twin {p_twin}"
                );
                let gain = rng.gen::<f64>() / p.max(1e-6);
                linear.multiplicative_update(arm, gamma, gain);
                alias.multiplicative_update(arm, gamma, gain);
            }
            // Force a live overlay, then probe the decode's seams: 0, the
            // uniform/softmax boundary γ, the overlay/table split, and the
            // top of the range (which must clamp, never walk off).
            linear.reset_uniform();
            alias.reset_uniform();
            let gamma = 0.2;
            for arm in [0u32, 1] {
                linear.multiplicative_update(NetworkId(arm), gamma, 0.6);
                alias.multiplicative_update(NetworkId(arm), gamma, 0.6);
            }
            assert!(!alias.dirty.is_empty(), "K={k}: overlay should be live");
            let total = alias.alias_total + alias.dirty_mass;
            let split = (1.0 - gamma).mul_add(alias.dirty_mass / total, gamma);
            for target in [
                0.0,
                gamma - 1e-12,
                gamma,
                split - 1e-12,
                split,
                split + 1e-12,
                1.0 - 1e-15,
                1.0,
            ] {
                let (arm, p) = alias.sample_at(gamma, target);
                assert!(alias.arms().contains(&arm), "K={k} target {target}");
                let p_twin = linear.probability_of(arm, gamma);
                assert!(
                    (p - p_twin).abs() < 1e-12,
                    "K={k} target {target}: {p} vs {p_twin}"
                );
            }
            // Grid inversion: each decode segment misattributes at most one
            // cell, and there are ≤ k uniform-head slots, ≤ 2k Vose column
            // halves and ≤ |dirty| overlay slices — so total variation is
            // bounded by (3k + |dirty| + 4) / n.
            let n = 1usize << 16;
            let mut counts = vec![0usize; k as usize];
            for i in 0..n {
                let t = (i as f64 + 0.5) / n as f64;
                let (arm, _) = alias.sample_at(gamma, t);
                counts[alias.position(arm).unwrap()] += 1;
            }
            let probs = alias.probabilities(gamma);
            let tv = counts
                .iter()
                .zip(&probs)
                .map(|(&c, &p)| (c as f64 / n as f64 - p).abs())
                .sum::<f64>()
                / 2.0;
            let bound = (3 * k as usize + alias.dirty.len() + 4) as f64 / n as f64;
            assert!(tv <= bound + 1e-9, "K={k}: TV {tv} exceeds {bound}");
        }
    }

    /// Draws through the overlay are counted; rebuilds re-freeze and clear
    /// it. The counters are the observability contract `PolicyStats`
    /// surfaces, so their mechanics are pinned here.
    #[test]
    fn alias_overlay_counts_hits_and_rebuilds() {
        let mut table = WeightTable::uniform_with_strategy(&arms(8), SamplerStrategy::Alias);
        let built_at_start = table.sampler_rebuilds();
        assert_eq!(built_at_start, 1, "construction freezes the first table");
        // A small positive update patches the overlay instead of rebuilding.
        table.multiplicative_update(NetworkId(3), 0.2, 0.4);
        assert_eq!(table.sampler_rebuilds(), built_at_start);
        assert_eq!(table.dirty, vec![3]);
        assert!(table.dirty_mass > 0.0);
        // Sampling inside the overlay slice counts a hit: aim just past the
        // uniform head, inside the fresh fraction.
        let gamma = 0.1f64;
        let total = table.alias_total + table.dirty_mass;
        let inside = (1.0 - gamma).mul_add(0.5 * table.dirty_mass / total, gamma);
        let hits_before = table.overlay_hits();
        let (i, overlay) = table.invert_at(gamma, inside);
        assert!(overlay, "target {inside} should resolve via the overlay");
        assert_eq!(
            table.arms()[i],
            NetworkId(3),
            "the only dirty arm owns the slice"
        );
        assert_eq!(table.overlay_hits(), hits_before, "sample_at never counts");
        // Repeated growth of one arm crosses DIRTY_MASS_FRACTION and forces
        // a re-freeze, clearing the overlay.
        for _ in 0..200 {
            table.multiplicative_update(NetworkId(3), 0.2, 1.0);
        }
        assert!(table.sampler_rebuilds() > built_at_start);
        // A negative update can never live in the overlay: it rebuilds.
        let rebuilds = table.sampler_rebuilds();
        table.multiplicative_update(NetworkId(1), 0.2, -2.0);
        assert_eq!(table.sampler_rebuilds(), rebuilds + 1);
        assert!(table.dirty.is_empty());
        assert_eq!(table.dirty_mass, 0.0);
    }

    /// Linear and tree tables never touch the alias machinery: counters stay
    /// zero and the alias vectors stay empty through heavy churn.
    #[test]
    fn non_alias_strategies_keep_alias_state_empty() {
        for strategy in [SamplerStrategy::Linear, SamplerStrategy::Tree] {
            let mut table = WeightTable::uniform_with_strategy(&arms(6), strategy);
            let mut rng = StdRng::seed_from_u64(17);
            for _ in 0..300 {
                let arm = table.arms()[rng.gen::<usize>() % table.len()];
                table.multiplicative_update(arm, 0.3, rng.gen::<f64>() * 30.0);
                let _ = table.sample(0.3, &mut rng);
            }
            assert_eq!(table.sampler_rebuilds(), 0);
            assert_eq!(table.overlay_hits(), 0);
            assert!(table.alias_prob.is_empty() && table.alias_idx.is_empty());
            assert!(table.dirty.is_empty());
        }
    }

    /// `top_probabilities_into` edge cases: `k = 0`, `k ≥ K`, a single-arm
    /// table, and the all-equal tie contract (reverse insertion order).
    #[test]
    fn top_probabilities_edge_cases() {
        let mut top = vec![(NetworkId(99), 0.5)];
        // K = 1: the lone arm carries the entire distribution, for any γ.
        let single = WeightTable::uniform(&arms(1));
        single.top_probabilities_into(0.3, 1, &mut top);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].0, NetworkId(0));
        assert!((top[0].1 - 1.0).abs() < 1e-12);
        // k ≥ K yields every arm exactly once, never more.
        single.top_probabilities_into(0.3, 9, &mut top);
        assert_eq!(top.len(), 1);
        // k = 0 clears the buffer even on a weighted multi-arm table.
        let mut weighted = WeightTable::uniform(&arms(6));
        weighted.multiplicative_update(NetworkId(2), 0.3, 8.0);
        weighted.top_probabilities_into(0.1, 0, &mut top);
        assert!(top.is_empty());
        // k > K on a weighted table: a full descending permutation.
        weighted.top_probabilities_into(0.1, 10, &mut top);
        assert_eq!(top.len(), 6);
        assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
        assert_eq!(top[0].0, NetworkId(2));
        // All-equal weights tie towards the later-inserted arm, so the
        // selection is exactly reverse insertion order at full width.
        let uniform = WeightTable::uniform(&arms(4));
        uniform.top_probabilities_into(0.2, 4, &mut top);
        assert_eq!(
            top.iter().map(|&(a, _)| a).collect::<Vec<_>>(),
            vec![NetworkId(3), NetworkId(2), NetworkId(1), NetworkId(0)]
        );
    }

    /// Non-finite estimated gains must be rejected on the alias path exactly
    /// as on the linear path: distribution untouched, overlay untouched,
    /// sampling still sound.
    #[test]
    fn alias_path_rejects_non_finite_gains() {
        let mut table = WeightTable::uniform_with_strategy(&arms(6), SamplerStrategy::Alias);
        table.multiplicative_update(NetworkId(3), 0.4, 5.0);
        let before = table.probabilities(0.1);
        let dirty_before = table.dirty.clone();
        table.multiplicative_update(NetworkId(0), 0.4, f64::NAN);
        table.multiplicative_update(NetworkId(1), 0.4, f64::INFINITY);
        table.multiplicative_update(NetworkId(2), 0.4, f64::NEG_INFINITY);
        assert_eq!(table.probabilities(0.1), before);
        assert_eq!(table.dirty, dirty_before);
        let mut rng = StdRng::seed_from_u64(9);
        let (arm, p) = table.sample(0.1, &mut rng);
        assert!(table.arms().contains(&arm));
        assert!(p.is_finite() && p > 0.0);
    }

    /// Non-finite estimated gains must be rejected on the tree path exactly
    /// as on the linear path: distribution untouched, sampling still sound.
    #[test]
    fn tree_path_rejects_non_finite_gains() {
        let mut table = WeightTable::uniform_with_strategy(&arms(6), SamplerStrategy::Tree);
        table.multiplicative_update(NetworkId(3), 0.4, 5.0);
        let before = table.probabilities(0.1);
        table.multiplicative_update(NetworkId(0), 0.4, f64::NAN);
        table.multiplicative_update(NetworkId(1), 0.4, f64::INFINITY);
        table.multiplicative_update(NetworkId(2), 0.4, f64::NEG_INFINITY);
        assert_eq!(table.probabilities(0.1), before);
        let mut rng = StdRng::seed_from_u64(9);
        let (arm, p) = table.sample(0.1, &mut rng);
        assert!(table.arms().contains(&arm));
        assert!(p.is_finite() && p > 0.0);
    }
}
