//! Numerically stable exponential weights shared by the EXP3 family.
//!
//! EXP3 maintains a multiplicative weight per arm and mixes the normalised
//! weights with a uniform distribution:
//!
//! ```text
//! p_i = (1 - γ) · w_i / Σ_j w_j  +  γ / k
//! ```
//!
//! Because the estimated gains `ĝ = g / p` can be large (blocks of dozens of
//! slots divided by small probabilities), weights are stored in the **log
//! domain** and probabilities computed with a max-shifted softmax, which keeps
//! the computation stable over arbitrarily long horizons.

use crate::NetworkId;
use rand::Rng;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Exponential weight table over a (possibly changing) set of networks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightTable {
    arms: Vec<NetworkId>,
    /// Natural-log weights; `log_weights[i]` corresponds to `arms[i]`.
    log_weights: Vec<f64>,
}

impl WeightTable {
    /// Creates a table with uniform (unit) weights over `arms`.
    ///
    /// Duplicate arms are collapsed; the caller is expected to have validated
    /// the arm list already (see [`ConfigError`](crate::ConfigError)).
    #[must_use]
    pub fn uniform(arms: &[NetworkId]) -> Self {
        let mut table = WeightTable {
            arms: Vec::new(),
            log_weights: Vec::new(),
        };
        for &arm in arms {
            if !table.arms.contains(&arm) {
                table.arms.push(arm);
                table.log_weights.push(0.0);
            }
        }
        table
    }

    /// Number of arms currently tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.arms.len()
    }

    /// Returns `true` when no arms are tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.arms.is_empty()
    }

    /// The tracked arms, in insertion order.
    #[must_use]
    pub fn arms(&self) -> &[NetworkId] {
        &self.arms
    }

    /// Returns the position of `arm` in the table, if tracked.
    #[must_use]
    pub fn position(&self, arm: NetworkId) -> Option<usize> {
        self.arms.iter().position(|&a| a == arm)
    }

    /// Log-weight of `arm`, or `None` if the arm is not tracked.
    #[must_use]
    pub fn log_weight(&self, arm: NetworkId) -> Option<f64> {
        self.position(arm).map(|i| self.log_weights[i])
    }

    /// Applies the EXP3 multiplicative update `w ← w · exp(γ ĝ / k)` to `arm`.
    ///
    /// `estimated_gain` is the importance-weighted gain `ĝ = g / p`.
    /// Unknown arms are ignored (this can only happen transiently around a
    /// change in the available-network set).
    pub fn multiplicative_update(&mut self, arm: NetworkId, gamma: f64, estimated_gain: f64) {
        let k = self.arms.len().max(1) as f64;
        if let Some(i) = self.position(arm) {
            self.log_weights[i] += gamma * estimated_gain / k;
        }
        self.renormalize();
    }

    /// EXP3 probability distribution `p_i = (1-γ)·softmax(w)_i + γ/k`,
    /// returned in the same order as [`arms`](Self::arms).
    #[must_use]
    pub fn probabilities(&self, gamma: f64) -> Vec<f64> {
        let k = self.arms.len();
        if k == 0 {
            return Vec::new();
        }
        let soft = self.softmax();
        soft.into_iter()
            .map(|s| (1.0 - gamma) * s + gamma / k as f64)
            .collect()
    }

    /// Probability of a specific arm under the EXP3 rule.
    #[must_use]
    pub fn probability_of(&self, arm: NetworkId, gamma: f64) -> f64 {
        match self.position(arm) {
            Some(i) => self.probabilities(gamma)[i],
            None => 0.0,
        }
    }

    /// Samples an arm from the EXP3 distribution.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty.
    pub fn sample(&self, gamma: f64, rng: &mut dyn RngCore) -> (NetworkId, f64) {
        assert!(
            !self.arms.is_empty(),
            "cannot sample from an empty weight table"
        );
        let probs = self.probabilities(gamma);
        let mut target: f64 = rng.gen();
        for (i, &p) in probs.iter().enumerate() {
            if target < p || i + 1 == probs.len() {
                return (self.arms[i], p);
            }
            target -= p;
        }
        unreachable!("probabilities sum to 1");
    }

    /// Adds a newly discovered arm.
    ///
    /// Following §III ("Change in set of networks"), the new arm's weight is
    /// set to the maximum weight of the existing arms (or 1 if the table was
    /// empty), so that it has a realistic chance of being explored.
    pub fn add_arm(&mut self, arm: NetworkId) {
        if self.position(arm).is_some() {
            return;
        }
        let max_lw = self
            .log_weights
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let lw = if max_lw.is_finite() { max_lw } else { 0.0 };
        self.arms.push(arm);
        self.log_weights.push(lw);
    }

    /// Removes an arm that is no longer available. Returns `true` if it was
    /// present.
    pub fn remove_arm(&mut self, arm: NetworkId) -> bool {
        match self.position(arm) {
            Some(i) => {
                self.arms.remove(i);
                self.log_weights.remove(i);
                true
            }
            None => false,
        }
    }

    /// Resets every weight back to 1 (log-weight 0), keeping the arm set.
    pub fn reset_uniform(&mut self) {
        for lw in &mut self.log_weights {
            *lw = 0.0;
        }
    }

    /// Max-shifted softmax of the log-weights.
    fn softmax(&self) -> Vec<f64> {
        let max_lw = self
            .log_weights
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = self
            .log_weights
            .iter()
            .map(|&lw| (lw - max_lw).exp())
            .collect();
        let sum: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / sum).collect()
    }

    /// Keeps log-weights centred around zero so they never overflow even over
    /// billions of updates. Shifting all log-weights by a constant does not
    /// change the softmax.
    fn renormalize(&mut self) {
        let max_lw = self
            .log_weights
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        if max_lw.is_finite() && max_lw.abs() > 1e3 {
            for lw in &mut self.log_weights {
                *lw -= max_lw;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn arms(k: u32) -> Vec<NetworkId> {
        (0..k).map(NetworkId).collect()
    }

    #[test]
    fn uniform_table_gives_uniform_probabilities() {
        let table = WeightTable::uniform(&arms(4));
        let probs = table.probabilities(0.1);
        for p in probs {
            assert!((p - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn probabilities_sum_to_one_after_updates() {
        let mut table = WeightTable::uniform(&arms(3));
        table.multiplicative_update(NetworkId(1), 0.3, 5.0);
        table.multiplicative_update(NetworkId(2), 0.3, 1.0);
        let probs = table.probabilities(0.2);
        let sum: f64 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rewarded_arm_gains_probability() {
        let mut table = WeightTable::uniform(&arms(3));
        for _ in 0..20 {
            table.multiplicative_update(NetworkId(2), 0.2, 2.0);
        }
        let probs = table.probabilities(0.1);
        assert!(probs[2] > probs[0]);
        assert!(probs[2] > probs[1]);
    }

    #[test]
    fn gamma_one_forces_uniform_exploration() {
        let mut table = WeightTable::uniform(&arms(5));
        table.multiplicative_update(NetworkId(0), 0.5, 50.0);
        let probs = table.probabilities(1.0);
        for p in probs {
            assert!((p - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn huge_updates_do_not_overflow() {
        let mut table = WeightTable::uniform(&arms(3));
        for _ in 0..10_000 {
            table.multiplicative_update(NetworkId(0), 1.0, 500.0);
        }
        let probs = table.probabilities(0.01);
        assert!(probs.iter().all(|p| p.is_finite()));
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(probs[0] > 0.98);
    }

    #[test]
    fn new_arm_inherits_max_weight() {
        let mut table = WeightTable::uniform(&arms(2));
        table.multiplicative_update(NetworkId(1), 0.5, 10.0);
        let best_lw = table.log_weight(NetworkId(1)).unwrap();
        table.add_arm(NetworkId(7));
        assert_eq!(table.log_weight(NetworkId(7)), Some(best_lw));
    }

    #[test]
    fn remove_arm_shrinks_distribution() {
        let mut table = WeightTable::uniform(&arms(3));
        assert!(table.remove_arm(NetworkId(1)));
        assert!(!table.remove_arm(NetworkId(1)));
        assert_eq!(table.len(), 2);
        let probs = table.probabilities(0.0);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_respects_distribution() {
        let mut table = WeightTable::uniform(&arms(2));
        for _ in 0..50 {
            table.multiplicative_update(NetworkId(1), 0.3, 3.0);
        }
        let mut rng = StdRng::seed_from_u64(42);
        let mut hits = 0;
        for _ in 0..2000 {
            let (arm, p) = table.sample(0.1, &mut rng);
            assert!(p > 0.0 && p <= 1.0);
            if arm == NetworkId(1) {
                hits += 1;
            }
        }
        assert!(hits > 1600, "expected heavy bias towards arm 1, got {hits}");
    }
}
