//! Numerically stable exponential weights shared by the EXP3 family.
//!
//! EXP3 maintains a multiplicative weight per arm and mixes the normalised
//! weights with a uniform distribution:
//!
//! ```text
//! p_i = (1 - γ) · w_i / Σ_j w_j  +  γ / k
//! ```
//!
//! Because the estimated gains `ĝ = g / p` can be large (blocks of dozens of
//! slots divided by small probabilities), weights are stored in the **log
//! domain** and probabilities derived from a max-shifted softmax, which keeps
//! the computation stable over arbitrarily long horizons.
//!
//! ## The distribution cache
//!
//! Recomputing the softmax from scratch on every read is the dominant cost of
//! a fleet stepping millions of sessions, so the table keeps the softmax
//! **cached and incrementally maintained** (following the spirit of Sato &
//! Ito's "Fast EXP3 Algorithms"): alongside the log-weights it stores the
//! max-shifted exponentials `e_i = exp(lw_i − max_lw)` and their running sum.
//! A [`multiplicative_update`](WeightTable::multiplicative_update) then costs
//! one `exp` plus a constant-time sum adjustment; a full O(k) rebuild happens
//! only when the maximum shifts, when an arm is added/removed/reset, or
//! periodically to keep floating-point drift of the running sum far below
//! any observable level (see `PATCH_LIMIT`).
//!
//! Cache invariants (checked by the property suite in `tests/`):
//!
//! 1. `log_weights` is always the exact ground truth; the cache is derived
//!    data and never feeds back into it.
//! 2. `max_log_weight` equals `max(log_weights)` at all times under the
//!    linear strategy; under the tree strategy it is a **shift reference**
//!    that may lag the maximum by at most `MAX_SHIFT_SLACK` between rebuilds
//!    (the softmax ratio is shift-invariant, so probabilities are
//!    unaffected).
//! 3. `exp_weights[i]` equals `exp(log_weights[i] − max_log_weight)` exactly;
//!    `exp_sum` equals `Σ exp_weights[i]` up to the accumulated rounding of at
//!    most `PATCH_LIMIT` constant-time adjustments (relative error well below
//!    1e-12, the tolerance the property tests assert).
//! 4. Every field is serialized, so a snapshot restores the cache **bit
//!    identically** and a restored policy continues on the exact trajectory
//!    of the original.
//!
//! ## Sublinear sampling (`SamplerStrategy::Tree`)
//!
//! The cache makes updates O(1), but [`sample`](WeightTable::sample) still
//! walks the CDF in O(k) — fine for the paper's handful of networks, a real
//! cost in dense-spectrum worlds with hundreds of visible arms. The opt-in
//! [`SamplerStrategy::Tree`] keeps a **Fenwick tree of prefix sums over the
//! cached exponentials**, patched in O(log k) on exactly the events that
//! patch the cache and rebuilt on exactly the events that rebuild it, giving
//! an O(log k) CDF inversion (the γ/k uniform mixture is folded in
//! analytically during the descent, so the tree never has to be rebuilt when
//! γ changes).
//!
//! Both strategies sample the same distribution (within the 1e-12 cache
//! tolerance) and consume exactly one `rng.gen::<f64>()` per draw, but their
//! floating-point accumulation orders differ, so a given target can resolve
//! to a different arm at CDF boundaries. Bit-exactness of decision
//! trajectories is therefore **per policy config**: worlds built on the
//! default [`SamplerStrategy::Linear`] keep their historical golden pins,
//! and tree-sampled configs carry their own.

use crate::NetworkId;
use rand::Rng;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Number of constant-time cache adjustments allowed before the next update
/// performs a full rebuild. Each adjustment perturbs the running sum by at
/// most one ulp, so 64 of them keep the cached distribution within ~1e-14 of
/// a from-scratch softmax — two orders of magnitude tighter than the 1e-12
/// contract the property tests assert.
const PATCH_LIMIT: u32 = 64;

/// How far (in the log domain) a weight may rise **above** the cached shift
/// reference before the tree strategy rebuilds. The linear strategy rebuilds
/// on any overshoot — the historical behaviour its golden pins encode — but
/// at large K the near-uniform phase makes almost every update the new
/// maximum, turning each O(1) patch into an O(k) rebuild. Under
/// [`SamplerStrategy::Tree`] the softmax shift only has to keep
/// `exp(lw − reference)` finite and well-scaled, not anchored to the exact
/// maximum: `exp(40) ≈ 2.4e17` stays far from overflow (`exp(709)`) and far
/// above underflow for any arm within the slack, so probabilities keep full
/// double precision (the softmax ratio is shift-invariant). Rebuilds then
/// come from `PATCH_LIMIT` (or churn events), restoring the amortized-O(1)
/// update the cache was built for.
const MAX_SHIFT_SLACK: f64 = 40.0;

/// How [`WeightTable::sample`] inverts the CDF.
///
/// Part of each policy's configuration: changing it changes the
/// floating-point accumulation order of the CDF inversion (not the sampled
/// distribution), so golden decision pins are scoped to a (policy config,
/// strategy) pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SamplerStrategy {
    /// O(k) walk over the cached probabilities — the historical default, and
    /// the fastest option for the paper's small network sets.
    #[default]
    Linear,
    /// O(log k) Fenwick-tree descent over prefix sums of the cached
    /// exponentials — for dense-spectrum worlds with hundreds of arms.
    Tree,
}

/// One-pass digest of an EXP3 distribution (see [`WeightTable::summary`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributionSummary {
    /// The arm with the highest probability (earliest-inserted wins ties).
    pub most_probable: NetworkId,
    /// The highest probability.
    pub max: f64,
    /// The lowest probability.
    pub min: f64,
}

/// Exponential weight table over a (possibly changing) set of networks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightTable {
    arms: Vec<NetworkId>,
    /// Natural-log weights; `log_weights[i]` corresponds to `arms[i]`.
    log_weights: Vec<f64>,
    /// `(arm, position)` pairs sorted by arm, for O(log k) lookups.
    index: Vec<(NetworkId, usize)>,
    /// Cached maximum of `log_weights` (the softmax shift).
    max_log_weight: f64,
    /// Cached `exp(log_weights[i] − max_log_weight)`.
    exp_weights: Vec<f64>,
    /// Cached `Σ exp_weights[i]`, maintained incrementally.
    exp_sum: f64,
    /// Constant-time adjustments applied since the last full rebuild.
    patches: u32,
    /// How [`sample`](Self::sample) inverts the CDF.
    strategy: SamplerStrategy,
    /// Fenwick tree over `exp_weights` (1-indexed semantics in a 0-based
    /// vec). Empty under [`SamplerStrategy::Linear`]; under `Tree` it is
    /// rebuilt by every `rebuild_cache` and patched alongside every
    /// constant-time cache adjustment, so its prefix sums track `exp_weights`
    /// within the same `PATCH_LIMIT`-bounded drift as `exp_sum`.
    tree: Vec<f64>,
}

impl WeightTable {
    /// Creates a table with uniform (unit) weights over `arms`, sampling with
    /// the default [`SamplerStrategy::Linear`].
    ///
    /// Duplicate arms are collapsed; the caller is expected to have validated
    /// the arm list already (see [`ConfigError`](crate::ConfigError)).
    #[must_use]
    pub fn uniform(arms: &[NetworkId]) -> Self {
        Self::uniform_with_strategy(arms, SamplerStrategy::default())
    }

    /// Creates a table with uniform (unit) weights over `arms` and an explicit
    /// sampling strategy.
    ///
    /// Duplicate arms are collapsed keeping the first occurrence, exactly as
    /// [`uniform`](Self::uniform) does (the two constructors produce
    /// identical tables apart from the strategy).
    #[must_use]
    pub fn uniform_with_strategy(arms: &[NetworkId], strategy: SamplerStrategy) -> Self {
        // Collapse duplicates in O(k log k): sort (arm, first position)
        // pairs, dedup by arm (keeping the earliest position), then restore
        // insertion order. A per-arm sorted insert would be O(k²) — felt at
        // the dense-urban scale of ~1000 arms × thousands of sessions.
        let mut pairs: Vec<(NetworkId, usize)> = arms
            .iter()
            .copied()
            .enumerate()
            .map(|(position, arm)| (arm, position))
            .collect();
        pairs.sort_unstable();
        pairs.dedup_by(|later, first| later.0 == first.0);
        pairs.sort_unstable_by_key(|&(_, position)| position);
        let arms: Vec<NetworkId> = pairs.into_iter().map(|(arm, _)| arm).collect();
        let mut table = WeightTable {
            log_weights: vec![0.0; arms.len()],
            index: Vec::with_capacity(arms.len()),
            arms,
            max_log_weight: f64::NEG_INFINITY,
            exp_weights: Vec::new(),
            exp_sum: 0.0,
            patches: 0,
            strategy,
            tree: Vec::new(),
        };
        table.rebuild_index();
        table.rebuild_cache();
        table
    }

    /// The active sampling strategy.
    #[must_use]
    pub fn strategy(&self) -> SamplerStrategy {
        self.strategy
    }

    /// Number of arms currently tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.arms.len()
    }

    /// Returns `true` when no arms are tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.arms.is_empty()
    }

    /// The tracked arms, in insertion order.
    #[must_use]
    pub fn arms(&self) -> &[NetworkId] {
        &self.arms
    }

    /// Binary-search result for `arm` in the sorted index: `Ok` holds the
    /// index entry, `Err` the insertion point.
    fn index_slot(&self, arm: NetworkId) -> Result<usize, usize> {
        self.index.binary_search_by_key(&arm, |&(a, _)| a)
    }

    /// Returns the position of `arm` in the table, if tracked, in O(log k).
    #[must_use]
    pub fn position(&self, arm: NetworkId) -> Option<usize> {
        self.index_slot(arm).ok().map(|slot| self.index[slot].1)
    }

    /// Log-weight of `arm`, or `None` if the arm is not tracked.
    #[must_use]
    pub fn log_weight(&self, arm: NetworkId) -> Option<f64> {
        self.position(arm).map(|i| self.log_weights[i])
    }

    /// Rebuilds the cached softmax from the ground-truth log-weights.
    fn rebuild_cache(&mut self) {
        self.max_log_weight = self
            .log_weights
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let max = self.max_log_weight;
        self.exp_weights.clear();
        self.exp_weights
            .extend(self.log_weights.iter().map(|&lw| (lw - max).exp()));
        self.exp_sum = self.exp_weights.iter().sum();
        self.patches = 0;
        self.rebuild_tree();
    }

    /// Rebuilds the Fenwick tree from the cached exponentials, in place and
    /// in O(k). No-op (and no allocation) under the linear strategy.
    fn rebuild_tree(&mut self) {
        self.tree.clear();
        if self.strategy != SamplerStrategy::Tree {
            return;
        }
        let k = self.exp_weights.len();
        self.tree.extend_from_slice(&self.exp_weights);
        for node in 1..=k {
            let parent = node + (node & node.wrapping_neg());
            if parent <= k {
                let child_sum = self.tree[node - 1];
                self.tree[parent - 1] += child_sum;
            }
        }
    }

    /// Point-adds `delta` to position `i` of the Fenwick tree, in O(log k).
    fn tree_add(&mut self, i: usize, delta: f64) {
        let mut node = i + 1;
        while node <= self.tree.len() {
            self.tree[node - 1] += delta;
            node += node & node.wrapping_neg();
        }
    }

    /// Rebuilds the sorted arm index (positions shift after a removal).
    fn rebuild_index(&mut self) {
        self.index.clear();
        self.index
            .extend(self.arms.iter().copied().enumerate().map(|(i, a)| (a, i)));
        self.index.sort_unstable_by_key(|&(a, _)| a);
    }

    /// The EXP3 probability of the arm at position `i` under `gamma`,
    /// computed from the cache in O(1).
    #[inline]
    fn probability_at(&self, i: usize, gamma: f64) -> f64 {
        let k = self.arms.len() as f64;
        (1.0 - gamma) * (self.exp_weights[i] / self.exp_sum) + gamma / k
    }

    /// Applies the EXP3 multiplicative update `w ← w · exp(γ ĝ / k)` to `arm`.
    ///
    /// `estimated_gain` is the importance-weighted gain `ĝ = g / p`.
    /// Unknown arms are ignored (this can only happen transiently around a
    /// change in the available-network set). Non-finite estimates are
    /// rejected outright: a single NaN or ±∞ gain would otherwise poison the
    /// whole distribution, so the update is dropped and the table left
    /// unchanged.
    pub fn multiplicative_update(&mut self, arm: NetworkId, gamma: f64, estimated_gain: f64) {
        if !estimated_gain.is_finite() {
            return;
        }
        let k = self.arms.len().max(1) as f64;
        let delta = gamma * estimated_gain / k;
        let Some(i) = self.position(arm) else {
            return;
        };
        if delta == 0.0 {
            return;
        }
        let old_lw = self.log_weights[i];
        let new_lw = old_lw + delta;
        self.log_weights[i] = new_lw;

        let removed = self.exp_weights[i];
        // The linear strategy rebuilds on any overshoot of the cached shift
        // (the exact historical condition its golden pins encode); the tree
        // strategy tolerates `MAX_SHIFT_SLACK` of overshoot so the hot path
        // stays an O(log k) patch (see the constant's docs).
        let shift_limit = match self.strategy {
            SamplerStrategy::Linear => self.max_log_weight,
            SamplerStrategy::Tree => self.max_log_weight + MAX_SHIFT_SLACK,
        };
        if self.patches >= PATCH_LIMIT
            || new_lw > shift_limit
            || (delta < 0.0 && (old_lw == self.max_log_weight || removed > 0.5 * self.exp_sum))
        {
            // The maximum shifted, the arm that defined it shrank, a dominant
            // term is about to be cancelled out of the running sum, or the
            // drift budget is spent: recompute from the ground truth.
            self.rebuild_cache();
        } else {
            let added = (new_lw - self.max_log_weight).exp();
            self.exp_weights[i] = added;
            self.exp_sum += added - removed;
            self.patches += 1;
            if self.exp_sum.is_finite() && self.exp_sum > 0.0 {
                // The cache patch held; mirror it into the Fenwick tree so
                // the sampler sees the same O(log k)-maintained prefix sums.
                if self.strategy == SamplerStrategy::Tree {
                    self.tree_add(i, added - removed);
                }
            } else {
                self.rebuild_cache();
            }
        }
        self.renormalize();
    }

    /// Folds one **shared** (gossiped) gain estimate into `arm`'s weight —
    /// the Co-Bandit cooperative-feedback path, reusing the incremental
    /// cached-distribution update so gossip costs the same one `exp` as a
    /// bandit update.
    ///
    /// Shared rates come from neighbours' raw measurements, so the guard is
    /// stricter than [`multiplicative_update`](Self::multiplicative_update)'s:
    /// besides non-finite estimates, **negative** shared rates are rejected
    /// outright (a scaled gain is `[0, 1]` by construction; a negative report
    /// is a corrupt or hostile message, and folding it in would drain weight
    /// from an arm based on data nobody observed).
    pub fn shared_update(&mut self, arm: NetworkId, gamma: f64, shared_gain: f64) {
        if !shared_gain.is_finite() || shared_gain < 0.0 {
            return;
        }
        self.multiplicative_update(arm, gamma, shared_gain);
    }

    /// EXP3 probability distribution `p_i = (1-γ)·softmax(w)_i + γ/k`,
    /// returned in the same order as [`arms`](Self::arms).
    #[must_use]
    pub fn probabilities(&self, gamma: f64) -> Vec<f64> {
        let mut out = Vec::new();
        self.probabilities_into(gamma, &mut out);
        out
    }

    /// Zero-alloc variant of [`probabilities`](Self::probabilities): fills
    /// `out` (cleared first), reusing its capacity.
    pub fn probabilities_into(&self, gamma: f64, out: &mut Vec<f64>) {
        out.clear();
        if self.arms.is_empty() {
            return;
        }
        out.extend((0..self.arms.len()).map(|i| self.probability_at(i, gamma)));
    }

    /// Zero-alloc `(arm, probability)` listing in insertion order: fills
    /// `out` (cleared first), reusing its capacity.
    pub fn probability_pairs_into(&self, gamma: f64, out: &mut Vec<(NetworkId, f64)>) {
        out.clear();
        out.extend(
            self.arms
                .iter()
                .enumerate()
                .map(|(i, &arm)| (arm, self.probability_at(i, gamma))),
        );
    }

    /// Bounded top-`k` `(arm, probability)` selection over the cached
    /// exponentials, highest probability first: fills `out` (cleared first,
    /// capacity reused) with at most `k` pairs without materialising the full
    /// O(K) listing — an O(K·k) insertion-select, so dense-world readers that
    /// only consume the top choice pay O(K) instead of O(K) + an O(K)
    /// allocation-sized copy.
    ///
    /// Ties break towards the **later-inserted** arm (the opposite of
    /// [`summary`](Self::summary)), matching what a reader gets from scanning
    /// the full [`probability_pairs_into`](Self::probability_pairs_into)
    /// listing with `Iterator::max_by` — the historical engine idiom this
    /// method replaces. Comparisons use `f64::total_cmp`.
    pub fn top_probabilities_into(&self, gamma: f64, k: usize, out: &mut Vec<(NetworkId, f64)>) {
        out.clear();
        if k == 0 {
            return;
        }
        for (i, &arm) in self.arms.iter().enumerate() {
            let p = self.probability_at(i, gamma);
            if out.len() == k && out[k - 1].1.total_cmp(&p).is_gt() {
                continue;
            }
            let pos = out
                .iter()
                .position(|&(_, q)| q.total_cmp(&p).is_le())
                .unwrap_or(out.len());
            out.insert(pos, (arm, p));
            out.truncate(k);
        }
    }

    /// Probability of a specific arm under the EXP3 rule, in O(log k) (an
    /// index lookup plus a constant-time cache read).
    #[must_use]
    pub fn probability_of(&self, arm: NetworkId, gamma: f64) -> f64 {
        match self.position(arm) {
            Some(i) => self.probability_at(i, gamma),
            None => 0.0,
        }
    }

    /// The most probable arm and its probability, breaking ties towards the
    /// earliest-inserted arm. `None` when the table is empty.
    #[must_use]
    pub fn most_probable(&self, gamma: f64) -> Option<(NetworkId, f64)> {
        self.summary(gamma).map(|s| (s.most_probable, s.max))
    }

    /// `(min, max)` of the distribution, or `None` when the table is empty.
    #[must_use]
    pub fn probability_bounds(&self, gamma: f64) -> Option<(f64, f64)> {
        self.summary(gamma).map(|s| (s.min, s.max))
    }

    /// One-pass summary of the distribution (argmax arm, maximum and minimum
    /// probability), or `None` when the table is empty. The EXP3-family
    /// policies consult all three for every fresh decision (greedy and reset
    /// conditions), so they are produced together from the cache.
    #[must_use]
    pub fn summary(&self, gamma: f64) -> Option<DistributionSummary> {
        if self.arms.is_empty() {
            return None;
        }
        let mut best = 0;
        let mut max_p = self.probability_at(0, gamma);
        let mut min_p = max_p;
        for i in 1..self.arms.len() {
            let p = self.probability_at(i, gamma);
            if p > max_p {
                best = i;
                max_p = p;
            }
            if p < min_p {
                min_p = p;
            }
        }
        Some(DistributionSummary {
            most_probable: self.arms[best],
            max: max_p,
            min: min_p,
        })
    }

    /// Samples an arm from the EXP3 distribution, reusing the cache (no
    /// allocation, no softmax recomputation). Exactly one `f64` is drawn
    /// from `rng`, whichever [`SamplerStrategy`] is active.
    ///
    /// If the distribution has been damaged despite the non-finite-update
    /// guard (probabilities that fail to accumulate past the drawn target),
    /// the walk falls back to an arm instead of panicking — one poisoned
    /// session must never take down a fleet.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty.
    pub fn sample(&self, gamma: f64, rng: &mut dyn RngCore) -> (NetworkId, f64) {
        let target: f64 = rng.gen();
        self.sample_at(gamma, target)
    }

    /// Deterministic core of [`sample`](Self::sample): inverts the CDF at
    /// `target ∈ [0, 1)` using the active strategy. Exposed so tests can pin
    /// strategy equivalence at chosen targets without mocking an RNG.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty.
    #[must_use]
    pub fn sample_at(&self, gamma: f64, target: f64) -> (NetworkId, f64) {
        assert!(
            !self.arms.is_empty(),
            "cannot sample from an empty weight table"
        );
        let i = match self.strategy {
            SamplerStrategy::Linear => self.invert_linear(gamma, target),
            SamplerStrategy::Tree => self.invert_tree(gamma, target),
        };
        (self.arms[i], self.probability_at(i, gamma))
    }

    /// O(k) CDF walk — the historical sampler. Its exact subtraction order
    /// defines the pre-existing golden decision pins, so it must never
    /// change.
    fn invert_linear(&self, gamma: f64, mut target: f64) -> usize {
        let k = self.arms.len();
        for i in 0..k {
            let p = self.probability_at(i, gamma);
            if target < p || i + 1 == k {
                return i;
            }
            target -= p;
        }
        // Unreachable through the loop above (the `i + 1 == k` branch fires
        // on the final arm), but kept as a defensive fallback.
        k - 1
    }

    /// O(log k) Fenwick descent. The mixed per-arm mass is
    /// `(1-γ)·e_i/Σe + γ/k`; the tree stores prefix sums of the `e_i` alone
    /// and the uniform γ/k share is added analytically from the arm count
    /// covered so far, so the structure is γ-free and survives schedule
    /// decay without rebuilds. Finds the largest prefix whose cumulative
    /// mass is ≤ `target`, i.e. the same arm the linear walk selects (up to
    /// floating-point accumulation order at CDF boundaries).
    fn invert_tree(&self, gamma: f64, target: f64) -> usize {
        let k = self.arms.len();
        let scale = (1.0 - gamma) / self.exp_sum;
        let uniform = gamma / k as f64;
        let mut covered = 0usize; // arms confirmed to lie below the target
        let mut acc = 0.0f64; // Fenwick prefix of exp_weights over them
        let mut step = 1usize << (usize::BITS - 1 - k.leading_zeros());
        while step > 0 {
            let next = covered + step;
            if next <= k {
                let prefix = acc + self.tree[next - 1];
                let mass = scale * prefix + uniform * next as f64;
                if mass <= target {
                    covered = next;
                    acc = prefix;
                }
            }
            step >>= 1;
        }
        // `covered == k` only when the target sits at or beyond the total
        // mass (≈1 up to rounding) — mirror the linear walk's last-arm
        // fallback. A damaged cache (NaN masses) never advances the descent
        // and resolves to the first arm.
        covered.min(k - 1)
    }

    /// Adds a newly discovered arm.
    ///
    /// Following §III ("Change in set of networks"), the new arm's weight is
    /// set to the maximum weight of the existing arms (or 1 if the table was
    /// empty), so that it has a realistic chance of being explored.
    pub fn add_arm(&mut self, arm: NetworkId) {
        let slot = match self.index_slot(arm) {
            Ok(_) => return,
            Err(slot) => slot,
        };
        // The ground-truth maximum, not the cached shift reference (under
        // the tree strategy the reference may lag the maximum by up to
        // `MAX_SHIFT_SLACK`; under the linear strategy the two are equal).
        let true_max = self
            .log_weights
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let lw = if true_max.is_finite() { true_max } else { 0.0 };
        self.index.insert(slot, (arm, self.arms.len()));
        self.arms.push(arm);
        self.log_weights.push(lw);
        self.rebuild_cache();
    }

    /// Removes an arm that is no longer available. Returns `true` if it was
    /// present.
    pub fn remove_arm(&mut self, arm: NetworkId) -> bool {
        match self.position(arm) {
            Some(i) => {
                self.arms.remove(i);
                self.log_weights.remove(i);
                self.rebuild_index();
                self.rebuild_cache();
                true
            }
            None => false,
        }
    }

    /// Resets every weight back to 1 (log-weight 0), keeping the arm set.
    pub fn reset_uniform(&mut self) {
        for lw in &mut self.log_weights {
            *lw = 0.0;
        }
        self.rebuild_cache();
    }

    /// Keeps log-weights centred around zero so they never overflow even over
    /// billions of updates. Shifting all log-weights by a constant does not
    /// change the softmax — nor the cached exponentials, which are stored
    /// relative to the maximum.
    fn renormalize(&mut self) {
        let max_lw = self.max_log_weight;
        if max_lw.is_finite() && max_lw.abs() > 1e3 {
            for lw in &mut self.log_weights {
                *lw -= max_lw;
            }
            self.max_log_weight = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn arms(k: u32) -> Vec<NetworkId> {
        (0..k).map(NetworkId).collect()
    }

    /// From-scratch reference distribution, bypassing the cache entirely.
    fn naive_probabilities(table: &WeightTable, gamma: f64) -> Vec<f64> {
        let k = table.len();
        let lws: Vec<f64> = table
            .arms()
            .iter()
            .map(|&a| table.log_weight(a).unwrap())
            .collect();
        let max = lws.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = lws.iter().map(|&lw| (lw - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        exps.into_iter()
            .map(|e| (1.0 - gamma) * e / sum + gamma / k as f64)
            .collect()
    }

    #[test]
    fn uniform_table_gives_uniform_probabilities() {
        let table = WeightTable::uniform(&arms(4));
        let probs = table.probabilities(0.1);
        for p in probs {
            assert!((p - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn top_probabilities_match_a_full_listing_scan() {
        let mut rng = StdRng::seed_from_u64(71);
        for strategy in [SamplerStrategy::Linear, SamplerStrategy::Tree] {
            let mut table = WeightTable::uniform_with_strategy(&arms(17), strategy);
            let gamma = 0.07;
            for round in 0..200 {
                let arm = NetworkId(round % 17);
                table.multiplicative_update(arm, gamma, ((round % 13) as f64).mul_add(0.17, 0.4));
                let mut pairs = Vec::new();
                table.probability_pairs_into(gamma, &mut pairs);
                // The engine's historical idiom: scan the full listing, last
                // maximal element wins ties.
                let expected_top = pairs.iter().copied().max_by(|a, b| a.1.total_cmp(&b.1));
                let mut top = Vec::new();
                table.top_probabilities_into(gamma, 1, &mut top);
                assert_eq!(top.first().copied(), expected_top);

                // Full-width selection must be a descending permutation of
                // the listing; k = 0 must yield nothing.
                table.top_probabilities_into(gamma, 17, &mut top);
                assert_eq!(top.len(), 17);
                let mut sorted = pairs.clone();
                sorted.sort_by(|a, b| b.1.total_cmp(&a.1));
                for (got, want) in top.iter().zip(&sorted) {
                    assert_eq!(got.1.to_bits(), want.1.to_bits());
                }
                table.top_probabilities_into(gamma, 0, &mut top);
                assert!(top.is_empty());
                let _ = table.sample(gamma, &mut rng);
            }
        }
    }

    #[test]
    fn top_probabilities_tie_towards_the_later_arm() {
        // A fresh table is exactly uniform: every arm ties, so the selected
        // top-1 must be the *last* arm (engine `max_by` semantics), and the
        // top-3 must come back in reverse insertion order.
        let table = WeightTable::uniform(&arms(5));
        let mut top = Vec::new();
        table.top_probabilities_into(0.1, 1, &mut top);
        assert_eq!(top[0].0, NetworkId(4));
        table.top_probabilities_into(0.1, 3, &mut top);
        assert_eq!(
            top.iter().map(|&(a, _)| a).collect::<Vec<_>>(),
            vec![NetworkId(4), NetworkId(3), NetworkId(2)]
        );
    }

    #[test]
    fn duplicate_arms_are_collapsed() {
        let table = WeightTable::uniform(&[NetworkId(1), NetworkId(0), NetworkId(1)]);
        assert_eq!(table.len(), 2);
        assert_eq!(table.arms(), &[NetworkId(1), NetworkId(0)]);
        assert_eq!(table.position(NetworkId(1)), Some(0));
        assert_eq!(table.position(NetworkId(0)), Some(1));
    }

    #[test]
    fn probabilities_sum_to_one_after_updates() {
        let mut table = WeightTable::uniform(&arms(3));
        table.multiplicative_update(NetworkId(1), 0.3, 5.0);
        table.multiplicative_update(NetworkId(2), 0.3, 1.0);
        let probs = table.probabilities(0.2);
        let sum: f64 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rewarded_arm_gains_probability() {
        let mut table = WeightTable::uniform(&arms(3));
        for _ in 0..20 {
            table.multiplicative_update(NetworkId(2), 0.2, 2.0);
        }
        let probs = table.probabilities(0.1);
        assert!(probs[2] > probs[0]);
        assert!(probs[2] > probs[1]);
    }

    #[test]
    fn gamma_one_forces_uniform_exploration() {
        let mut table = WeightTable::uniform(&arms(5));
        table.multiplicative_update(NetworkId(0), 0.5, 50.0);
        let probs = table.probabilities(1.0);
        for p in probs {
            assert!((p - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn huge_updates_do_not_overflow() {
        let mut table = WeightTable::uniform(&arms(3));
        for _ in 0..10_000 {
            table.multiplicative_update(NetworkId(0), 1.0, 500.0);
        }
        let probs = table.probabilities(0.01);
        assert!(probs.iter().all(|p| p.is_finite()));
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(probs[0] > 0.98);
    }

    #[test]
    fn cached_distribution_tracks_the_naive_softmax() {
        let mut table = WeightTable::uniform(&arms(5));
        let mut rng = StdRng::seed_from_u64(99);
        for step in 0..5_000 {
            let arm = NetworkId((rng.gen::<u32>()) % 5);
            let gain = rng.gen::<f64>() * 40.0 - 5.0; // includes negative updates
            table.multiplicative_update(arm, 0.3, gain);
            let gamma = rng.gen::<f64>();
            let cached = table.probabilities(gamma);
            let naive = naive_probabilities(&table, gamma);
            for (c, n) in cached.iter().zip(&naive) {
                assert!((c - n).abs() < 1e-12, "step {step}: cached {c} naive {n}");
            }
        }
    }

    #[test]
    fn non_finite_updates_are_rejected() {
        let mut table = WeightTable::uniform(&arms(3));
        table.multiplicative_update(NetworkId(1), 0.5, 4.0);
        let before = table.probabilities(0.1);
        table.multiplicative_update(NetworkId(0), 0.5, f64::NAN);
        table.multiplicative_update(NetworkId(1), 0.5, f64::INFINITY);
        table.multiplicative_update(NetworkId(2), 0.5, f64::NEG_INFINITY);
        assert_eq!(table.probabilities(0.1), before);
        // Sampling still works and never panics.
        let mut rng = StdRng::seed_from_u64(7);
        let (arm, p) = table.sample(0.1, &mut rng);
        assert!(table.arms().contains(&arm));
        assert!(p.is_finite() && p > 0.0);
    }

    #[test]
    fn shared_updates_reject_non_finite_and_negative_rates() {
        let mut table = WeightTable::uniform(&arms(3));
        table.multiplicative_update(NetworkId(1), 0.5, 4.0);
        let before = table.probabilities(0.1);
        table.shared_update(NetworkId(0), 0.5, f64::NAN);
        table.shared_update(NetworkId(1), 0.5, f64::INFINITY);
        table.shared_update(NetworkId(2), 0.5, f64::NEG_INFINITY);
        table.shared_update(NetworkId(0), 0.5, -0.4);
        assert_eq!(table.probabilities(0.1), before);
        // A valid shared rate behaves exactly like a multiplicative update.
        let mut reference = table.clone();
        table.shared_update(NetworkId(2), 0.3, 0.8);
        reference.multiplicative_update(NetworkId(2), 0.3, 0.8);
        assert_eq!(table.probabilities(0.2), reference.probabilities(0.2));
    }

    #[test]
    fn new_arm_inherits_max_weight() {
        let mut table = WeightTable::uniform(&arms(2));
        table.multiplicative_update(NetworkId(1), 0.5, 10.0);
        let best_lw = table.log_weight(NetworkId(1)).unwrap();
        table.add_arm(NetworkId(7));
        assert_eq!(table.log_weight(NetworkId(7)), Some(best_lw));
    }

    #[test]
    fn remove_arm_shrinks_distribution() {
        let mut table = WeightTable::uniform(&arms(3));
        assert!(table.remove_arm(NetworkId(1)));
        assert!(!table.remove_arm(NetworkId(1)));
        assert_eq!(table.len(), 2);
        let probs = table.probabilities(0.0);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Positions stay consistent after the removal.
        assert_eq!(table.position(NetworkId(0)), Some(0));
        assert_eq!(table.position(NetworkId(2)), Some(1));
        assert_eq!(table.position(NetworkId(1)), None);
    }

    #[test]
    fn probability_of_matches_the_full_listing() {
        let mut table = WeightTable::uniform(&arms(4));
        for step in 0..200 {
            table.multiplicative_update(NetworkId(step % 4), 0.4, (step % 7) as f64);
            let probs = table.probabilities(0.2);
            for (i, &arm) in table.arms().iter().enumerate() {
                assert_eq!(table.probability_of(arm, 0.2), probs[i]);
            }
        }
        assert_eq!(table.probability_of(NetworkId(9), 0.2), 0.0);
    }

    #[test]
    fn most_probable_and_bounds_agree_with_the_listing() {
        let mut table = WeightTable::uniform(&arms(4));
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..500 {
            table.multiplicative_update(
                NetworkId(rng.gen::<u32>() % 4),
                0.3,
                rng.gen::<f64>() * 9.0,
            );
            let probs = table.probabilities(0.15);
            let naive_best =
                probs
                    .iter()
                    .enumerate()
                    .fold(0usize, |b, (i, &p)| if p > probs[b] { i } else { b });
            let (arm, p) = table.most_probable(0.15).unwrap();
            assert_eq!(arm, table.arms()[naive_best]);
            assert_eq!(p, probs[naive_best]);
            let (min_p, max_p) = table.probability_bounds(0.15).unwrap();
            assert_eq!(min_p, probs.iter().cloned().fold(f64::INFINITY, f64::min));
            assert_eq!(
                max_p,
                probs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            );
        }
    }

    #[test]
    fn probabilities_into_reuses_the_buffer() {
        let mut table = WeightTable::uniform(&arms(3));
        table.multiplicative_update(NetworkId(0), 0.2, 3.0);
        let mut buffer = Vec::new();
        table.probabilities_into(0.1, &mut buffer);
        assert_eq!(buffer, table.probabilities(0.1));
        let capacity = buffer.capacity();
        table.probabilities_into(0.4, &mut buffer);
        assert_eq!(buffer.capacity(), capacity, "buffer must be reused");
        assert_eq!(buffer, table.probabilities(0.4));
    }

    #[test]
    fn sampling_respects_distribution() {
        let mut table = WeightTable::uniform(&arms(2));
        for _ in 0..50 {
            table.multiplicative_update(NetworkId(1), 0.3, 3.0);
        }
        let mut rng = StdRng::seed_from_u64(42);
        let mut hits = 0;
        for _ in 0..2000 {
            let (arm, p) = table.sample(0.1, &mut rng);
            assert!(p > 0.0 && p <= 1.0);
            if arm == NetworkId(1) {
                hits += 1;
            }
        }
        assert!(hits > 1600, "expected heavy bias towards arm 1, got {hits}");
    }

    /// Property test for the Fenwick path: a tree-strategy table driven
    /// through a random mix of updates, arm churn and resets must keep its
    /// distribution within 1e-12 of the from-scratch softmax after every
    /// operation. The tree cache's shift reference is allowed to lag the true
    /// max (`MAX_SHIFT_SLACK`), so agreeing with the naive computation is
    /// exactly the shift-invariance the design claims.
    #[test]
    fn tree_distribution_tracks_the_naive_softmax_under_churn() {
        let mut table = WeightTable::uniform_with_strategy(&arms(12), SamplerStrategy::Tree);
        let mut rng = StdRng::seed_from_u64(314);
        let mut next_arm = 12u32;
        for step in 0..4_000 {
            match rng.gen::<u32>() % 20 {
                0 => {
                    table.add_arm(NetworkId(next_arm));
                    next_arm += 1;
                }
                1 if table.len() > 2 => {
                    let victim = table.arms()[rng.gen::<usize>() % table.len()];
                    assert!(table.remove_arm(victim));
                }
                2 if step % 500 == 2 => table.reset_uniform(),
                _ => {
                    let arm = table.arms()[rng.gen::<usize>() % table.len()];
                    let gain = rng.gen::<f64>() * 40.0 - 5.0;
                    table.multiplicative_update(arm, 0.3, gain);
                }
            }
            let gamma = rng.gen::<f64>();
            let cached = table.probabilities(gamma);
            let naive = naive_probabilities(&table, gamma);
            for (c, n) in cached.iter().zip(&naive) {
                assert!((c - n).abs() < 1e-12, "step {step}: cached {c} naive {n}");
            }
        }
    }

    /// The two CDF inverters must agree decision-for-decision: identical
    /// update histories, identical targets, same chosen arm at every draw.
    #[test]
    fn linear_and_tree_inversion_agree_decision_for_decision() {
        for k in [2u32, 64, 1024] {
            let mut linear = WeightTable::uniform_with_strategy(&arms(k), SamplerStrategy::Linear);
            let mut tree = WeightTable::uniform_with_strategy(&arms(k), SamplerStrategy::Tree);
            let mut rng = StdRng::seed_from_u64(u64::from(k));
            for step in 0..1_500 {
                let target = rng.gen::<f64>();
                let gamma = 0.05 + 0.9 * rng.gen::<f64>();
                let (arm_l, p_l) = linear.sample_at(gamma, target);
                let (arm_t, p_t) = tree.sample_at(gamma, target);
                assert_eq!(arm_l, arm_t, "K={k} step {step}: inverters disagreed");
                assert!(
                    (p_l - p_t).abs() < 1e-12,
                    "K={k} step {step}: probabilities drifted: {p_l} vs {p_t}"
                );
                let gain = rng.gen::<f64>() / p_l.max(1e-6);
                linear.multiplicative_update(arm_l, gamma, gain);
                tree.multiplicative_update(arm_t, gamma, gain);
            }
            // Boundary targets: 0 must land on the first arm's mass, and
            // targets at (or past) 1.0 must clamp into the last arm rather
            // than walk off the table.
            for target in [0.0, 1.0 - 1e-15, 1.0] {
                let (arm_l, _) = linear.sample_at(0.2, target);
                let (arm_t, _) = tree.sample_at(0.2, target);
                assert_eq!(arm_l, arm_t, "K={k} target {target}: boundary drifted");
            }
        }
    }

    /// Non-finite estimated gains must be rejected on the tree path exactly
    /// as on the linear path: distribution untouched, sampling still sound.
    #[test]
    fn tree_path_rejects_non_finite_gains() {
        let mut table = WeightTable::uniform_with_strategy(&arms(6), SamplerStrategy::Tree);
        table.multiplicative_update(NetworkId(3), 0.4, 5.0);
        let before = table.probabilities(0.1);
        table.multiplicative_update(NetworkId(0), 0.4, f64::NAN);
        table.multiplicative_update(NetworkId(1), 0.4, f64::INFINITY);
        table.multiplicative_update(NetworkId(2), 0.4, f64::NEG_INFINITY);
        assert_eq!(table.probabilities(0.1), before);
        let mut rng = StdRng::seed_from_u64(9);
        let (arm, p) = table.sample(0.1, &mut rng);
        assert!(table.arms().contains(&arm));
        assert!(p.is_finite() && p > 0.0);
    }
}
