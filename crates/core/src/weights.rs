//! Numerically stable exponential weights shared by the EXP3 family.
//!
//! EXP3 maintains a multiplicative weight per arm and mixes the normalised
//! weights with a uniform distribution:
//!
//! ```text
//! p_i = (1 - γ) · w_i / Σ_j w_j  +  γ / k
//! ```
//!
//! Because the estimated gains `ĝ = g / p` can be large (blocks of dozens of
//! slots divided by small probabilities), weights are stored in the **log
//! domain** and probabilities derived from a max-shifted softmax, which keeps
//! the computation stable over arbitrarily long horizons.
//!
//! ## The distribution cache
//!
//! Recomputing the softmax from scratch on every read is the dominant cost of
//! a fleet stepping millions of sessions, so the table keeps the softmax
//! **cached and incrementally maintained** (following the spirit of Sato &
//! Ito's "Fast EXP3 Algorithms"): alongside the log-weights it stores the
//! max-shifted exponentials `e_i = exp(lw_i − max_lw)` and their running sum.
//! A [`multiplicative_update`](WeightTable::multiplicative_update) then costs
//! one `exp` plus a constant-time sum adjustment; a full O(k) rebuild happens
//! only when the maximum shifts, when an arm is added/removed/reset, or
//! periodically to keep floating-point drift of the running sum far below
//! any observable level (see `PATCH_LIMIT`).
//!
//! Cache invariants (checked by the property suite in `tests/`):
//!
//! 1. `log_weights` is always the exact ground truth; the cache is derived
//!    data and never feeds back into it.
//! 2. `max_log_weight` equals `max(log_weights)` at all times.
//! 3. `exp_weights[i]` equals `exp(log_weights[i] − max_log_weight)` exactly;
//!    `exp_sum` equals `Σ exp_weights[i]` up to the accumulated rounding of at
//!    most `PATCH_LIMIT` constant-time adjustments (relative error well below
//!    1e-12, the tolerance the property tests assert).
//! 4. Every field is serialized, so a snapshot restores the cache **bit
//!    identically** and a restored policy continues on the exact trajectory
//!    of the original.

use crate::NetworkId;
use rand::Rng;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Number of constant-time cache adjustments allowed before the next update
/// performs a full rebuild. Each adjustment perturbs the running sum by at
/// most one ulp, so 64 of them keep the cached distribution within ~1e-14 of
/// a from-scratch softmax — two orders of magnitude tighter than the 1e-12
/// contract the property tests assert.
const PATCH_LIMIT: u32 = 64;

/// One-pass digest of an EXP3 distribution (see [`WeightTable::summary`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributionSummary {
    /// The arm with the highest probability (earliest-inserted wins ties).
    pub most_probable: NetworkId,
    /// The highest probability.
    pub max: f64,
    /// The lowest probability.
    pub min: f64,
}

/// Exponential weight table over a (possibly changing) set of networks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightTable {
    arms: Vec<NetworkId>,
    /// Natural-log weights; `log_weights[i]` corresponds to `arms[i]`.
    log_weights: Vec<f64>,
    /// `(arm, position)` pairs sorted by arm, for O(log k) lookups.
    index: Vec<(NetworkId, usize)>,
    /// Cached maximum of `log_weights` (the softmax shift).
    max_log_weight: f64,
    /// Cached `exp(log_weights[i] − max_log_weight)`.
    exp_weights: Vec<f64>,
    /// Cached `Σ exp_weights[i]`, maintained incrementally.
    exp_sum: f64,
    /// Constant-time adjustments applied since the last full rebuild.
    patches: u32,
}

impl WeightTable {
    /// Creates a table with uniform (unit) weights over `arms`.
    ///
    /// Duplicate arms are collapsed; the caller is expected to have validated
    /// the arm list already (see [`ConfigError`](crate::ConfigError)).
    #[must_use]
    pub fn uniform(arms: &[NetworkId]) -> Self {
        let mut table = WeightTable {
            arms: Vec::with_capacity(arms.len()),
            log_weights: Vec::with_capacity(arms.len()),
            index: Vec::with_capacity(arms.len()),
            max_log_weight: f64::NEG_INFINITY,
            exp_weights: Vec::with_capacity(arms.len()),
            exp_sum: 0.0,
            patches: 0,
        };
        for &arm in arms {
            if let Err(slot) = table.index_slot(arm) {
                table.index.insert(slot, (arm, table.arms.len()));
                table.arms.push(arm);
                table.log_weights.push(0.0);
            }
        }
        table.rebuild_cache();
        table
    }

    /// Number of arms currently tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.arms.len()
    }

    /// Returns `true` when no arms are tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.arms.is_empty()
    }

    /// The tracked arms, in insertion order.
    #[must_use]
    pub fn arms(&self) -> &[NetworkId] {
        &self.arms
    }

    /// Binary-search result for `arm` in the sorted index: `Ok` holds the
    /// index entry, `Err` the insertion point.
    fn index_slot(&self, arm: NetworkId) -> Result<usize, usize> {
        self.index.binary_search_by_key(&arm, |&(a, _)| a)
    }

    /// Returns the position of `arm` in the table, if tracked, in O(log k).
    #[must_use]
    pub fn position(&self, arm: NetworkId) -> Option<usize> {
        self.index_slot(arm).ok().map(|slot| self.index[slot].1)
    }

    /// Log-weight of `arm`, or `None` if the arm is not tracked.
    #[must_use]
    pub fn log_weight(&self, arm: NetworkId) -> Option<f64> {
        self.position(arm).map(|i| self.log_weights[i])
    }

    /// Rebuilds the cached softmax from the ground-truth log-weights.
    fn rebuild_cache(&mut self) {
        self.max_log_weight = self
            .log_weights
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let max = self.max_log_weight;
        self.exp_weights.clear();
        self.exp_weights
            .extend(self.log_weights.iter().map(|&lw| (lw - max).exp()));
        self.exp_sum = self.exp_weights.iter().sum();
        self.patches = 0;
    }

    /// Rebuilds the sorted arm index (positions shift after a removal).
    fn rebuild_index(&mut self) {
        self.index.clear();
        self.index
            .extend(self.arms.iter().copied().enumerate().map(|(i, a)| (a, i)));
        self.index.sort_unstable_by_key(|&(a, _)| a);
    }

    /// The EXP3 probability of the arm at position `i` under `gamma`,
    /// computed from the cache in O(1).
    #[inline]
    fn probability_at(&self, i: usize, gamma: f64) -> f64 {
        let k = self.arms.len() as f64;
        (1.0 - gamma) * (self.exp_weights[i] / self.exp_sum) + gamma / k
    }

    /// Applies the EXP3 multiplicative update `w ← w · exp(γ ĝ / k)` to `arm`.
    ///
    /// `estimated_gain` is the importance-weighted gain `ĝ = g / p`.
    /// Unknown arms are ignored (this can only happen transiently around a
    /// change in the available-network set). Non-finite estimates are
    /// rejected outright: a single NaN or ±∞ gain would otherwise poison the
    /// whole distribution, so the update is dropped and the table left
    /// unchanged.
    pub fn multiplicative_update(&mut self, arm: NetworkId, gamma: f64, estimated_gain: f64) {
        if !estimated_gain.is_finite() {
            return;
        }
        let k = self.arms.len().max(1) as f64;
        let delta = gamma * estimated_gain / k;
        let Some(i) = self.position(arm) else {
            return;
        };
        if delta == 0.0 {
            return;
        }
        let old_lw = self.log_weights[i];
        let new_lw = old_lw + delta;
        self.log_weights[i] = new_lw;

        let removed = self.exp_weights[i];
        if self.patches >= PATCH_LIMIT
            || new_lw > self.max_log_weight
            || (delta < 0.0 && (old_lw == self.max_log_weight || removed > 0.5 * self.exp_sum))
        {
            // The maximum shifted, the arm that defined it shrank, a dominant
            // term is about to be cancelled out of the running sum, or the
            // drift budget is spent: recompute from the ground truth.
            self.rebuild_cache();
        } else {
            let added = (new_lw - self.max_log_weight).exp();
            self.exp_weights[i] = added;
            self.exp_sum += added - removed;
            self.patches += 1;
            if !(self.exp_sum.is_finite() && self.exp_sum > 0.0) {
                self.rebuild_cache();
            }
        }
        self.renormalize();
    }

    /// Folds one **shared** (gossiped) gain estimate into `arm`'s weight —
    /// the Co-Bandit cooperative-feedback path, reusing the incremental
    /// cached-distribution update so gossip costs the same one `exp` as a
    /// bandit update.
    ///
    /// Shared rates come from neighbours' raw measurements, so the guard is
    /// stricter than [`multiplicative_update`](Self::multiplicative_update)'s:
    /// besides non-finite estimates, **negative** shared rates are rejected
    /// outright (a scaled gain is `[0, 1]` by construction; a negative report
    /// is a corrupt or hostile message, and folding it in would drain weight
    /// from an arm based on data nobody observed).
    pub fn shared_update(&mut self, arm: NetworkId, gamma: f64, shared_gain: f64) {
        if !shared_gain.is_finite() || shared_gain < 0.0 {
            return;
        }
        self.multiplicative_update(arm, gamma, shared_gain);
    }

    /// EXP3 probability distribution `p_i = (1-γ)·softmax(w)_i + γ/k`,
    /// returned in the same order as [`arms`](Self::arms).
    #[must_use]
    pub fn probabilities(&self, gamma: f64) -> Vec<f64> {
        let mut out = Vec::new();
        self.probabilities_into(gamma, &mut out);
        out
    }

    /// Zero-alloc variant of [`probabilities`](Self::probabilities): fills
    /// `out` (cleared first), reusing its capacity.
    pub fn probabilities_into(&self, gamma: f64, out: &mut Vec<f64>) {
        out.clear();
        if self.arms.is_empty() {
            return;
        }
        out.extend((0..self.arms.len()).map(|i| self.probability_at(i, gamma)));
    }

    /// Zero-alloc `(arm, probability)` listing in insertion order: fills
    /// `out` (cleared first), reusing its capacity.
    pub fn probability_pairs_into(&self, gamma: f64, out: &mut Vec<(NetworkId, f64)>) {
        out.clear();
        out.extend(
            self.arms
                .iter()
                .enumerate()
                .map(|(i, &arm)| (arm, self.probability_at(i, gamma))),
        );
    }

    /// Probability of a specific arm under the EXP3 rule, in O(log k) (an
    /// index lookup plus a constant-time cache read).
    #[must_use]
    pub fn probability_of(&self, arm: NetworkId, gamma: f64) -> f64 {
        match self.position(arm) {
            Some(i) => self.probability_at(i, gamma),
            None => 0.0,
        }
    }

    /// The most probable arm and its probability, breaking ties towards the
    /// earliest-inserted arm. `None` when the table is empty.
    #[must_use]
    pub fn most_probable(&self, gamma: f64) -> Option<(NetworkId, f64)> {
        self.summary(gamma).map(|s| (s.most_probable, s.max))
    }

    /// `(min, max)` of the distribution, or `None` when the table is empty.
    #[must_use]
    pub fn probability_bounds(&self, gamma: f64) -> Option<(f64, f64)> {
        self.summary(gamma).map(|s| (s.min, s.max))
    }

    /// One-pass summary of the distribution (argmax arm, maximum and minimum
    /// probability), or `None` when the table is empty. The EXP3-family
    /// policies consult all three for every fresh decision (greedy and reset
    /// conditions), so they are produced together from the cache.
    #[must_use]
    pub fn summary(&self, gamma: f64) -> Option<DistributionSummary> {
        if self.arms.is_empty() {
            return None;
        }
        let mut best = 0;
        let mut max_p = self.probability_at(0, gamma);
        let mut min_p = max_p;
        for i in 1..self.arms.len() {
            let p = self.probability_at(i, gamma);
            if p > max_p {
                best = i;
                max_p = p;
            }
            if p < min_p {
                min_p = p;
            }
        }
        Some(DistributionSummary {
            most_probable: self.arms[best],
            max: max_p,
            min: min_p,
        })
    }

    /// Samples an arm from the EXP3 distribution, reusing the cache (no
    /// allocation, no softmax recomputation).
    ///
    /// If the distribution has been damaged despite the non-finite-update
    /// guard (probabilities that fail to accumulate past the drawn target),
    /// the walk falls back to the **last arm** instead of panicking — one
    /// poisoned session must never take down a fleet.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty.
    pub fn sample(&self, gamma: f64, rng: &mut dyn RngCore) -> (NetworkId, f64) {
        assert!(
            !self.arms.is_empty(),
            "cannot sample from an empty weight table"
        );
        let k = self.arms.len();
        let mut target: f64 = rng.gen();
        for i in 0..k {
            let p = self.probability_at(i, gamma);
            if target < p || i + 1 == k {
                return (self.arms[i], p);
            }
            target -= p;
        }
        // Unreachable through the loop above (the `i + 1 == k` branch fires
        // on the final arm), but kept as a defensive fallback.
        (self.arms[k - 1], self.probability_at(k - 1, gamma))
    }

    /// Adds a newly discovered arm.
    ///
    /// Following §III ("Change in set of networks"), the new arm's weight is
    /// set to the maximum weight of the existing arms (or 1 if the table was
    /// empty), so that it has a realistic chance of being explored.
    pub fn add_arm(&mut self, arm: NetworkId) {
        let slot = match self.index_slot(arm) {
            Ok(_) => return,
            Err(slot) => slot,
        };
        let lw = if self.max_log_weight.is_finite() {
            self.max_log_weight
        } else {
            0.0
        };
        self.index.insert(slot, (arm, self.arms.len()));
        self.arms.push(arm);
        self.log_weights.push(lw);
        self.rebuild_cache();
    }

    /// Removes an arm that is no longer available. Returns `true` if it was
    /// present.
    pub fn remove_arm(&mut self, arm: NetworkId) -> bool {
        match self.position(arm) {
            Some(i) => {
                self.arms.remove(i);
                self.log_weights.remove(i);
                self.rebuild_index();
                self.rebuild_cache();
                true
            }
            None => false,
        }
    }

    /// Resets every weight back to 1 (log-weight 0), keeping the arm set.
    pub fn reset_uniform(&mut self) {
        for lw in &mut self.log_weights {
            *lw = 0.0;
        }
        self.rebuild_cache();
    }

    /// Keeps log-weights centred around zero so they never overflow even over
    /// billions of updates. Shifting all log-weights by a constant does not
    /// change the softmax — nor the cached exponentials, which are stored
    /// relative to the maximum.
    fn renormalize(&mut self) {
        let max_lw = self.max_log_weight;
        if max_lw.is_finite() && max_lw.abs() > 1e3 {
            for lw in &mut self.log_weights {
                *lw -= max_lw;
            }
            self.max_log_weight = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn arms(k: u32) -> Vec<NetworkId> {
        (0..k).map(NetworkId).collect()
    }

    /// From-scratch reference distribution, bypassing the cache entirely.
    fn naive_probabilities(table: &WeightTable, gamma: f64) -> Vec<f64> {
        let k = table.len();
        let lws: Vec<f64> = table
            .arms()
            .iter()
            .map(|&a| table.log_weight(a).unwrap())
            .collect();
        let max = lws.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = lws.iter().map(|&lw| (lw - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        exps.into_iter()
            .map(|e| (1.0 - gamma) * e / sum + gamma / k as f64)
            .collect()
    }

    #[test]
    fn uniform_table_gives_uniform_probabilities() {
        let table = WeightTable::uniform(&arms(4));
        let probs = table.probabilities(0.1);
        for p in probs {
            assert!((p - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn duplicate_arms_are_collapsed() {
        let table = WeightTable::uniform(&[NetworkId(1), NetworkId(0), NetworkId(1)]);
        assert_eq!(table.len(), 2);
        assert_eq!(table.arms(), &[NetworkId(1), NetworkId(0)]);
        assert_eq!(table.position(NetworkId(1)), Some(0));
        assert_eq!(table.position(NetworkId(0)), Some(1));
    }

    #[test]
    fn probabilities_sum_to_one_after_updates() {
        let mut table = WeightTable::uniform(&arms(3));
        table.multiplicative_update(NetworkId(1), 0.3, 5.0);
        table.multiplicative_update(NetworkId(2), 0.3, 1.0);
        let probs = table.probabilities(0.2);
        let sum: f64 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rewarded_arm_gains_probability() {
        let mut table = WeightTable::uniform(&arms(3));
        for _ in 0..20 {
            table.multiplicative_update(NetworkId(2), 0.2, 2.0);
        }
        let probs = table.probabilities(0.1);
        assert!(probs[2] > probs[0]);
        assert!(probs[2] > probs[1]);
    }

    #[test]
    fn gamma_one_forces_uniform_exploration() {
        let mut table = WeightTable::uniform(&arms(5));
        table.multiplicative_update(NetworkId(0), 0.5, 50.0);
        let probs = table.probabilities(1.0);
        for p in probs {
            assert!((p - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn huge_updates_do_not_overflow() {
        let mut table = WeightTable::uniform(&arms(3));
        for _ in 0..10_000 {
            table.multiplicative_update(NetworkId(0), 1.0, 500.0);
        }
        let probs = table.probabilities(0.01);
        assert!(probs.iter().all(|p| p.is_finite()));
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(probs[0] > 0.98);
    }

    #[test]
    fn cached_distribution_tracks_the_naive_softmax() {
        let mut table = WeightTable::uniform(&arms(5));
        let mut rng = StdRng::seed_from_u64(99);
        for step in 0..5_000 {
            let arm = NetworkId((rng.gen::<u32>()) % 5);
            let gain = rng.gen::<f64>() * 40.0 - 5.0; // includes negative updates
            table.multiplicative_update(arm, 0.3, gain);
            let gamma = rng.gen::<f64>();
            let cached = table.probabilities(gamma);
            let naive = naive_probabilities(&table, gamma);
            for (c, n) in cached.iter().zip(&naive) {
                assert!((c - n).abs() < 1e-12, "step {step}: cached {c} naive {n}");
            }
        }
    }

    #[test]
    fn non_finite_updates_are_rejected() {
        let mut table = WeightTable::uniform(&arms(3));
        table.multiplicative_update(NetworkId(1), 0.5, 4.0);
        let before = table.probabilities(0.1);
        table.multiplicative_update(NetworkId(0), 0.5, f64::NAN);
        table.multiplicative_update(NetworkId(1), 0.5, f64::INFINITY);
        table.multiplicative_update(NetworkId(2), 0.5, f64::NEG_INFINITY);
        assert_eq!(table.probabilities(0.1), before);
        // Sampling still works and never panics.
        let mut rng = StdRng::seed_from_u64(7);
        let (arm, p) = table.sample(0.1, &mut rng);
        assert!(table.arms().contains(&arm));
        assert!(p.is_finite() && p > 0.0);
    }

    #[test]
    fn shared_updates_reject_non_finite_and_negative_rates() {
        let mut table = WeightTable::uniform(&arms(3));
        table.multiplicative_update(NetworkId(1), 0.5, 4.0);
        let before = table.probabilities(0.1);
        table.shared_update(NetworkId(0), 0.5, f64::NAN);
        table.shared_update(NetworkId(1), 0.5, f64::INFINITY);
        table.shared_update(NetworkId(2), 0.5, f64::NEG_INFINITY);
        table.shared_update(NetworkId(0), 0.5, -0.4);
        assert_eq!(table.probabilities(0.1), before);
        // A valid shared rate behaves exactly like a multiplicative update.
        let mut reference = table.clone();
        table.shared_update(NetworkId(2), 0.3, 0.8);
        reference.multiplicative_update(NetworkId(2), 0.3, 0.8);
        assert_eq!(table.probabilities(0.2), reference.probabilities(0.2));
    }

    #[test]
    fn new_arm_inherits_max_weight() {
        let mut table = WeightTable::uniform(&arms(2));
        table.multiplicative_update(NetworkId(1), 0.5, 10.0);
        let best_lw = table.log_weight(NetworkId(1)).unwrap();
        table.add_arm(NetworkId(7));
        assert_eq!(table.log_weight(NetworkId(7)), Some(best_lw));
    }

    #[test]
    fn remove_arm_shrinks_distribution() {
        let mut table = WeightTable::uniform(&arms(3));
        assert!(table.remove_arm(NetworkId(1)));
        assert!(!table.remove_arm(NetworkId(1)));
        assert_eq!(table.len(), 2);
        let probs = table.probabilities(0.0);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Positions stay consistent after the removal.
        assert_eq!(table.position(NetworkId(0)), Some(0));
        assert_eq!(table.position(NetworkId(2)), Some(1));
        assert_eq!(table.position(NetworkId(1)), None);
    }

    #[test]
    fn probability_of_matches_the_full_listing() {
        let mut table = WeightTable::uniform(&arms(4));
        for step in 0..200 {
            table.multiplicative_update(NetworkId(step % 4), 0.4, (step % 7) as f64);
            let probs = table.probabilities(0.2);
            for (i, &arm) in table.arms().iter().enumerate() {
                assert_eq!(table.probability_of(arm, 0.2), probs[i]);
            }
        }
        assert_eq!(table.probability_of(NetworkId(9), 0.2), 0.0);
    }

    #[test]
    fn most_probable_and_bounds_agree_with_the_listing() {
        let mut table = WeightTable::uniform(&arms(4));
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..500 {
            table.multiplicative_update(
                NetworkId(rng.gen::<u32>() % 4),
                0.3,
                rng.gen::<f64>() * 9.0,
            );
            let probs = table.probabilities(0.15);
            let naive_best =
                probs
                    .iter()
                    .enumerate()
                    .fold(0usize, |b, (i, &p)| if p > probs[b] { i } else { b });
            let (arm, p) = table.most_probable(0.15).unwrap();
            assert_eq!(arm, table.arms()[naive_best]);
            assert_eq!(p, probs[naive_best]);
            let (min_p, max_p) = table.probability_bounds(0.15).unwrap();
            assert_eq!(min_p, probs.iter().cloned().fold(f64::INFINITY, f64::min));
            assert_eq!(
                max_p,
                probs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            );
        }
    }

    #[test]
    fn probabilities_into_reuses_the_buffer() {
        let mut table = WeightTable::uniform(&arms(3));
        table.multiplicative_update(NetworkId(0), 0.2, 3.0);
        let mut buffer = Vec::new();
        table.probabilities_into(0.1, &mut buffer);
        assert_eq!(buffer, table.probabilities(0.1));
        let capacity = buffer.capacity();
        table.probabilities_into(0.4, &mut buffer);
        assert_eq!(buffer.capacity(), capacity, "buffer must be reused");
        assert_eq!(buffer, table.probabilities(0.4));
    }

    #[test]
    fn sampling_respects_distribution() {
        let mut table = WeightTable::uniform(&arms(2));
        for _ in 0..50 {
            table.multiplicative_update(NetworkId(1), 0.3, 3.0);
        }
        let mut rng = StdRng::seed_from_u64(42);
        let mut hits = 0;
        for _ in 0..2000 {
            let (arm, p) = table.sample(0.1, &mut rng);
            assert!(p > 0.0 && p <= 1.0);
            if arm == NetworkId(1) {
                hits += 1;
            }
        }
        assert!(hits > 1600, "expected heavy bias towards arm 1, got {hits}");
    }
}
