//! The Centralized oracle baseline (Table II).
//!
//! A central coordinator with global knowledge of every network's bandwidth
//! assigns each device to a network so that the allocation is a Nash
//! equilibrium of the equal-share congestion game, and devices never deviate.
//! It is optimal and switch-free but, as the paper notes, not implementable
//! without coordination — it serves as the upper-bound reference.
//!
//! Devices join the coordinator one at a time ([`CentralizedCoordinator::join`]);
//! each joining device is assigned to the network that maximises its marginal
//! share. For singleton congestion games with equal-share utilities this greedy
//! insertion yields a pure Nash equilibrium allocation.

use crate::policy::{Observation, Policy, PolicyStats, SelectionKind};
use crate::{ConfigError, NetworkId, SlotIndex};
use rand::RngCore;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::sync::Mutex;

#[derive(Debug)]
struct CoordinatorState {
    /// Bandwidth (Mbps) of each network.
    rates: BTreeMap<NetworkId, f64>,
    /// Number of devices currently assigned to each network.
    loads: BTreeMap<NetworkId, usize>,
    next_device: u64,
}

/// Central allocator that hands out Nash-equilibrium assignments.
#[derive(Debug, Clone)]
pub struct CentralizedCoordinator {
    state: Arc<Mutex<CoordinatorState>>,
}

impl CentralizedCoordinator {
    /// Creates a coordinator that knows the bandwidth of every network.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::NoNetworks`] if `network_rates` is empty, or
    /// [`ConfigError::ParameterOutOfRange`] if any rate is not finite and
    /// positive.
    pub fn new(network_rates: Vec<(NetworkId, f64)>) -> Result<Self, ConfigError> {
        if network_rates.is_empty() {
            return Err(ConfigError::NoNetworks);
        }
        let mut rates = BTreeMap::new();
        for (id, rate) in network_rates {
            if !(rate.is_finite() && rate > 0.0) {
                return Err(ConfigError::ParameterOutOfRange {
                    parameter: "network_rate",
                    value: rate,
                    expected: "a finite value > 0",
                });
            }
            rates.insert(id, rate);
        }
        let loads = rates.keys().map(|&id| (id, 0usize)).collect();
        Ok(CentralizedCoordinator {
            state: Arc::new(Mutex::new(CoordinatorState {
                rates,
                loads,
                next_device: 0,
            })),
        })
    }

    /// Registers a new device and returns its policy, pinned to the network
    /// that maximises the device's share given the devices already assigned.
    pub fn join(&self) -> CentralizedPolicy {
        let assigned = self
            .assign_within(None)
            .expect("coordinator always has at least one network");
        CentralizedPolicy {
            coordinator: self.clone(),
            assigned,
        }
    }

    /// Assigns one device to the best marginal-share network, optionally
    /// restricted to `allowed`, and records the added load. Returns `None` if
    /// the restriction excludes every known network.
    fn assign_within(&self, allowed: Option<&[NetworkId]>) -> Option<NetworkId> {
        let mut state = self.state.lock().expect("coordinator lock poisoned");
        let assigned = state
            .rates
            .iter()
            .filter(|(id, _)| allowed.is_none_or(|a| a.contains(id)))
            .map(|(&id, &rate)| {
                let load = state.loads.get(&id).copied().unwrap_or(0);
                (id, rate / (load + 1) as f64)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(id, _)| id)?;
        *state.loads.entry(assigned).or_insert(0) += 1;
        state.next_device += 1;
        Some(assigned)
    }

    /// Removes a device previously assigned to `network` (used when devices
    /// leave the service area).
    pub fn leave(&self, network: NetworkId) {
        let mut state = self.state.lock().expect("coordinator lock poisoned");
        if let Some(load) = state.loads.get_mut(&network) {
            *load = load.saturating_sub(1);
        }
    }

    /// Current number of devices assigned to each network.
    #[must_use]
    pub fn allocation(&self) -> Vec<(NetworkId, usize)> {
        let state = self.state.lock().expect("coordinator lock poisoned");
        state.loads.iter().map(|(&id, &n)| (id, n)).collect()
    }
}

/// A device-side handle of the [`CentralizedCoordinator`]: always selects the
/// network it was assigned at join time.
#[derive(Debug, Clone)]
pub struct CentralizedPolicy {
    coordinator: CentralizedCoordinator,
    assigned: NetworkId,
}

impl CentralizedPolicy {
    /// The network this device was assigned to.
    #[must_use]
    pub fn assigned(&self) -> NetworkId {
        self.assigned
    }

    /// Access to the coordinator (e.g. to deregister on leave).
    #[must_use]
    pub fn coordinator(&self) -> &CentralizedCoordinator {
        &self.coordinator
    }
}

impl Policy for CentralizedPolicy {
    fn name(&self) -> &'static str {
        "Centralized"
    }

    fn choose(&mut self, _slot: SlotIndex, _rng: &mut dyn RngCore) -> NetworkId {
        self.assigned
    }

    fn observe(&mut self, _observation: &Observation, _rng: &mut dyn RngCore) {}

    fn on_networks_changed(&mut self, available: &[NetworkId], _rng: &mut dyn RngCore) {
        if !available.contains(&self.assigned) {
            // Re-join through the coordinator, restricted to the networks this
            // device can still see.
            self.coordinator.leave(self.assigned);
            if let Some(assigned) = self.coordinator.assign_within(Some(available)) {
                self.assigned = assigned;
            }
        }
    }

    fn probabilities(&self) -> Vec<(NetworkId, f64)> {
        vec![(self.assigned, 1.0)]
    }

    fn last_selection_kind(&self) -> SelectionKind {
        SelectionKind::Fixed
    }

    fn stats(&self) -> PolicyStats {
        PolicyStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setting1() -> Vec<(NetworkId, f64)> {
        vec![
            (NetworkId(0), 4.0),
            (NetworkId(1), 7.0),
            (NetworkId(2), 22.0),
        ]
    }

    #[test]
    fn twenty_devices_reach_the_unique_nash_allocation() {
        // Setting 1 of the paper: rates 4/7/22 Mbps, 20 devices → NE is 2/4/14.
        let coordinator = CentralizedCoordinator::new(setting1()).unwrap();
        let _policies: Vec<CentralizedPolicy> = (0..20).map(|_| coordinator.join()).collect();
        let mut alloc = coordinator.allocation();
        alloc.sort();
        assert_eq!(
            alloc,
            vec![(NetworkId(0), 2), (NetworkId(1), 4), (NetworkId(2), 14)]
        );
    }

    #[test]
    fn uniform_rates_spread_devices_evenly() {
        let coordinator = CentralizedCoordinator::new(vec![
            (NetworkId(0), 11.0),
            (NetworkId(1), 11.0),
            (NetworkId(2), 11.0),
        ])
        .unwrap();
        let _policies: Vec<CentralizedPolicy> = (0..20).map(|_| coordinator.join()).collect();
        let mut counts: Vec<usize> = coordinator
            .allocation()
            .into_iter()
            .map(|(_, n)| n)
            .collect();
        counts.sort_unstable();
        assert_eq!(counts, vec![6, 7, 7]);
    }

    #[test]
    fn allocation_is_a_nash_equilibrium() {
        // No device can improve by unilaterally moving.
        let coordinator = CentralizedCoordinator::new(setting1()).unwrap();
        let _policies: Vec<CentralizedPolicy> = (0..20).map(|_| coordinator.join()).collect();
        let alloc: BTreeMap<NetworkId, usize> = coordinator.allocation().into_iter().collect();
        let rates: BTreeMap<NetworkId, f64> = setting1().into_iter().collect();
        for (&net, &load) in &alloc {
            if load == 0 {
                continue;
            }
            let own_share = rates[&net] / load as f64;
            for (&other, &other_load) in &alloc {
                if other == net {
                    continue;
                }
                let share_if_moved = rates[&other] / (other_load + 1) as f64;
                assert!(
                    share_if_moved <= own_share + 1e-9,
                    "device on {net} could improve by moving to {other}"
                );
            }
        }
    }

    #[test]
    fn policy_never_switches_and_reports_point_mass() {
        let coordinator = CentralizedCoordinator::new(setting1()).unwrap();
        let mut policy = coordinator.join();
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        let first = policy.choose(0, &mut rng);
        for t in 1..50 {
            assert_eq!(policy.choose(t, &mut rng), first);
        }
        assert_eq!(policy.probabilities(), vec![(first, 1.0)]);
        assert_eq!(policy.stats().switches, 0);
    }

    #[test]
    fn rejects_empty_or_invalid_rates() {
        assert!(CentralizedCoordinator::new(vec![]).is_err());
        assert!(CentralizedCoordinator::new(vec![(NetworkId(0), -1.0)]).is_err());
    }

    #[test]
    fn reassigns_when_assigned_network_disappears() {
        let coordinator = CentralizedCoordinator::new(setting1()).unwrap();
        let mut policy = coordinator.join();
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        let original = policy.assigned();
        let remaining: Vec<NetworkId> = setting1()
            .into_iter()
            .map(|(n, _)| n)
            .filter(|&n| n != original)
            .collect();
        policy.on_networks_changed(&remaining, &mut rng);
        assert_ne!(policy.assigned(), original);
    }
}
