//! Block EXP3 (Table III): EXP3 with adaptive blocking, and nothing else.
//!
//! This is a thin constructor around [`SmartExp3`] with only the blocking
//! mechanism enabled (see [`SmartExp3Features::block_exp3`]). It exists as a
//! named type because the paper evaluates it as a distinct algorithm.

use crate::{ConfigError, NetworkId, SmartExp3, SmartExp3Config, SmartExp3Features};

/// EXP3 that commits to each selection for a geometrically growing block.
pub type BlockExp3 = SmartExp3;

impl BlockExp3 {
    /// Creates a Block EXP3 policy over `networks` with the paper's default
    /// parameters (β = 0.1, γ = b^{-1/3}).
    ///
    /// # Errors
    ///
    /// Returns an error if `networks` is empty or contains duplicates.
    pub fn block_exp3(networks: Vec<NetworkId>) -> Result<BlockExp3, ConfigError> {
        SmartExp3::new(
            networks,
            SmartExp3Config::with_features(SmartExp3Features::block_exp3()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Policy;

    #[test]
    fn block_exp3_constructor_disables_all_extras() {
        let policy = BlockExp3::block_exp3((0..3).map(NetworkId).collect()).unwrap();
        assert_eq!(policy.name(), "Block EXP3");
        let features = policy.config().features;
        assert!(!features.initial_exploration);
        assert!(!features.greedy);
        assert!(!features.switch_back);
        assert!(!features.reset);
    }
}
