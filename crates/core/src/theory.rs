//! Closed forms of the paper's theoretical guarantees.
//!
//! * **Theorem 2** — the expected number of network switches of Smart EXP3
//!   over a horizon `T` is at most `(T/τ) · 3k·log(τ/t_d + 1) / log(1+β)`.
//! * **Theorem 3** — the expected weak regret is at most
//!   `(T·t_d/τ)·((1 + γ·l·(e−2))·G_max(τ) + k·ln k / γ)
//!    + (T·µ_d·µ_g/τ)·3k·log(τ/t_d + 1)/log(1+β)`.
//!
//! These functions are used by the test suite (the empirical switch counts of
//! every simulated run must stay below the Theorem 2 bound) and by the
//! `theory_bounds` bench, which tabulates how the bounds scale with `k`, `β`
//! and `τ` alongside measured values.

/// Theorem 2: upper bound on the expected number of switches over horizon
/// `total_time`, with `k` networks, block growth factor `beta`, slot duration
/// `slot_duration` and reset period `tau` (all in the same time unit).
///
/// # Panics
///
/// Panics if `k == 0` or any duration is non-positive (these are programming
/// errors in the calling experiment, not data-dependent conditions).
#[must_use]
pub fn switch_bound(k: usize, beta: f64, slot_duration: f64, tau: f64, total_time: f64) -> f64 {
    assert!(k > 0, "at least one network is required");
    assert!(slot_duration > 0.0 && tau > 0.0 && total_time > 0.0);
    assert!(beta > 0.0 && beta <= 1.0);
    let per_period = 3.0 * k as f64 * (tau / slot_duration + 1.0).ln() / (1.0 + beta).ln();
    (total_time / tau) * per_period
}

/// Theorem 2 specialised to `t_d = 1`, `τ = T` (no reset):
/// `3k·log(T+1)/log(1+β)`.
#[must_use]
pub fn switch_bound_no_reset(k: usize, beta: f64, total_slots: f64) -> f64 {
    switch_bound(k, beta, 1.0, total_slots, total_slots)
}

/// Parameters of the Theorem 3 weak-regret bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegretBoundParams {
    /// Number of networks `k`.
    pub networks: usize,
    /// Exploration rate γ ∈ (0, 1].
    pub gamma: f64,
    /// Block growth factor β ∈ (0, 1].
    pub beta: f64,
    /// Largest block length `l` reached.
    pub max_block_length: f64,
    /// Cumulative gain of the best single network over one reset period,
    /// `G_max(τ)` (in scaled-gain units, i.e. slots).
    pub best_gain_per_period: f64,
    /// Slot duration `t_d` (seconds).
    pub slot_duration: f64,
    /// Reset period `τ` (seconds).
    pub tau: f64,
    /// Total horizon `T` (seconds).
    pub total_time: f64,
    /// Mean switching delay `µ_d` (seconds).
    pub mean_delay: f64,
    /// Mean observed gain `µ_g` (scaled units).
    pub mean_gain: f64,
}

/// Theorem 3: upper bound on the expected weak regret.
///
/// # Panics
///
/// Panics on non-positive durations or `networks == 0`.
#[must_use]
pub fn regret_bound(params: &RegretBoundParams) -> f64 {
    let RegretBoundParams {
        networks,
        gamma,
        beta,
        max_block_length,
        best_gain_per_period,
        slot_duration,
        tau,
        total_time,
        mean_delay,
        mean_gain,
    } = *params;
    assert!(networks > 0);
    assert!(slot_duration > 0.0 && tau > 0.0 && total_time > 0.0);
    let k = networks as f64;
    let e_minus_2 = std::f64::consts::E - 2.0;
    let learning_term = (total_time * slot_duration / tau)
        * ((1.0 + gamma * max_block_length * e_minus_2) * best_gain_per_period
            + k * k.ln() / gamma);
    let switching_term = (total_time * mean_delay * mean_gain / tau)
        * (3.0 * k * (tau / slot_duration + 1.0).ln() / (1.0 + beta).ln());
    learning_term + switching_term
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_bound_matches_hand_computation() {
        // 3 networks, beta = 0.1, td = 1, tau = T = 1200:
        // 3*3*ln(1201)/ln(1.1) ≈ 9 * 7.0909 / 0.09531 ≈ 669.6
        let bound = switch_bound_no_reset(3, 0.1, 1200.0);
        assert!((bound - 669.0).abs() < 5.0, "bound = {bound}");
    }

    #[test]
    fn switch_bound_decreases_with_beta_and_increases_with_k() {
        let base = switch_bound_no_reset(3, 0.1, 1000.0);
        assert!(switch_bound_no_reset(3, 0.5, 1000.0) < base);
        assert!(switch_bound_no_reset(7, 0.1, 1000.0) > base);
    }

    #[test]
    fn more_frequent_resets_allow_more_switches() {
        let rare = switch_bound(3, 0.1, 1.0, 1000.0, 10_000.0);
        let frequent = switch_bound(3, 0.1, 1.0, 100.0, 10_000.0);
        assert!(frequent > rare);
    }

    #[test]
    fn regret_bound_is_positive_and_grows_with_horizon() {
        let mut params = RegretBoundParams {
            networks: 3,
            gamma: 0.1,
            beta: 0.1,
            max_block_length: 40.0,
            best_gain_per_period: 1200.0,
            slot_duration: 1.0,
            tau: 1200.0,
            total_time: 1200.0,
            mean_delay: 0.3,
            mean_gain: 0.5,
        };
        let short = regret_bound(&params);
        assert!(short > 0.0);
        params.total_time = 2400.0;
        let long = regret_bound(&params);
        assert!(long > short);
    }

    #[test]
    #[should_panic(expected = "at least one network")]
    fn zero_networks_panics() {
        let _ = switch_bound(0, 0.1, 1.0, 10.0, 10.0);
    }
}
