//! The [`Environment`] trait: the world on the other side of the
//! [`Policy`](crate::Policy) boundary.
//!
//! A policy answers "which network do I pick this slot?"; an environment
//! answers everything else — which networks each session can currently see,
//! and what gain every session obtains once the *joint* choice vector of all
//! sessions is known (bandwidth sharing, switching delays, scheduled capacity
//! changes, mobility between service areas).
//!
//! The trait is deliberately split into phases so a fleet engine can drive
//! millions of sessions in parallel while keeping results bit-identical at
//! any thread count:
//!
//! 1. [`begin_slot`](Environment::begin_slot) — sequential; the environment
//!    advances its own state (scheduled bandwidth events, mobility walks,
//!    activity windows).
//! 2. [`session_view`](Environment::session_view) — called concurrently from
//!    worker threads (`&self`); reports whether a session participates this
//!    slot and whether its visible-network set changed.
//! 3. [`feedback`](Environment::feedback) — converts the joint choice vector
//!    into one observation per session. Any randomness the environment needs
//!    (noisy bandwidth shares, sampled switching delays) must come from state
//!    owned by the environment, never from per-session RNG streams, so the
//!    result is independent of how sessions were sharded. Worlds that are
//!    unions of independent areas can additionally advertise
//!    [`feedback_partitions`](Environment::feedback_partitions) and implement
//!    [`feedback_partitioned`](Environment::feedback_partitioned), letting
//!    the driver fan the feedback phase itself over worker threads — see
//!    *Partitioned feedback* below.
//! 4. [`end_slot`](Environment::end_slot) — sequential; an event hook for
//!    recorders and metrics, fired after every session has observed its
//!    feedback.
//!
//! # Partitioned feedback
//!
//! For a fleet of millions of sessions, a sequential feedback phase bounds
//! the whole engine on one core. Most large worlds are unions of
//! **independent areas**: disjoint session ranges whose feedback depends
//! only on the choices of sessions in the same range. Such environments
//! advertise the split as a list of [`SessionRange`]s (ordered, disjoint,
//! tiling `0..sessions()`) and grade each partition from **its own RNG
//! stream**, advanced in canonical session order — so the trajectory is a
//! pure function of the seed, independent of which worker grades which
//! partition, and [`feedback`](Environment::feedback) (the sequential
//! fallback, required to iterate the same partitions in order) produces
//! bit-identical results to
//! [`feedback_partitioned`](Environment::feedback_partitioned) under any
//! [`PartitionExecutor`].
//!
//! Environments that support checkpointing serialize their dynamic state as
//! an opaque JSON string via [`state`](Environment::state) /
//! [`restore`](Environment::restore); a fleet engine embeds that string in
//! its own snapshot so a mid-scenario checkpoint resumes bit-identically —
//! pending events, mobility positions and the environment RNG included.
//!
//! # Event-driven stepping
//!
//! Slot-synchronous stepping advances every session one global slot at a
//! time. Real devices do not tick in lock-step: each decides on its own
//! cadence (duty cycles, block boundaries), and the world pushes events
//! (bandwidth changes, area transitions) between decisions. The wake
//! protocol — [`wake_cadence`](Environment::wake_cadence),
//! [`first_wake`](Environment::first_wake),
//! [`next_wake`](Environment::next_wake) and
//! [`next_env_event`](Environment::next_env_event) — lets an event-driven
//! driver ask each session when it decides next and the environment when
//! its own state next changes, so the driver only materialises the
//! timestamps where something actually happens.
//!
//! Every method has a **uniform-cadence default** (every session wakes every
//! slot, no pushed events), under which an event-driven driver degenerates
//! to exactly the slot-synchronous schedule — existing environments satisfy
//! the protocol unchanged, and a driver honouring it must produce
//! bit-identical trajectories to slot stepping at cadence 1.

use crate::{NetworkId, Observation, SlotIndex};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What one session is allowed to do in the coming slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionView<'a> {
    /// `false` when the session sits this slot out (outside its activity
    /// window); the engine then neither asks its policy to choose nor
    /// delivers feedback.
    pub active: bool,
    /// `Some(networks)` exactly when the session's set of visible networks
    /// changed entering this slot (mobility, AP churn, first activation into
    /// an area that differs from the one its policy was built for). The
    /// engine forwards it to [`Policy::on_networks_changed`] before the
    /// session chooses.
    ///
    /// [`Policy::on_networks_changed`]: crate::Policy::on_networks_changed
    pub networks_changed: Option<&'a [NetworkId]>,
}

impl SessionView<'_> {
    /// The static-world view: active every slot, networks never change.
    #[must_use]
    pub fn active_static() -> Self {
        SessionView {
            active: true,
            networks_changed: None,
        }
    }
}

/// A contiguous range of sessions `[start, end)` forming one independent
/// feedback partition (see the [module documentation](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SessionRange {
    /// First session of the partition (inclusive).
    pub start: usize,
    /// One past the last session of the partition (exclusive).
    pub end: usize,
}

impl SessionRange {
    /// The range `[start, end)` (empty when `end <= start`).
    #[must_use]
    pub fn new(start: usize, end: usize) -> Self {
        SessionRange { start, end }
    }

    /// Number of sessions in the partition.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// `true` when the partition holds no sessions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// `true` when `ranges` is a valid partition layout for `sessions`
    /// sessions: ordered, disjoint and tiling `0..sessions` exactly (empty
    /// ranges are permitted). Drivers may use this to reject malformed
    /// layouts before fanning work out.
    #[must_use]
    pub fn tile(ranges: &[SessionRange], sessions: usize) -> bool {
        let mut cursor = 0usize;
        for range in ranges {
            if range.start != cursor || range.end < range.start {
                return false;
            }
            cursor = range.end;
        }
        cursor == sessions
    }
}

/// One unit of partitioned-feedback work: grades exactly one partition.
/// Jobs borrow disjoint mutable state from the environment, so an executor
/// may run them in any order, concurrently or not, without changing the
/// result.
pub type PartitionJob<'a> = Box<dyn FnOnce() + Send + 'a>;

/// Executes a batch of independent [`PartitionJob`]s — the driver-provided
/// half of the partitioned-feedback protocol. A fleet engine backs this with
/// its worker pool; the sequential fallback is [`SequentialExecutor`].
pub trait PartitionExecutor: Sync {
    /// Runs every job exactly once, in any order. Must not return until all
    /// jobs have finished.
    fn run(&self, jobs: Vec<PartitionJob<'_>>);
}

/// A [`PartitionExecutor`] that runs jobs on the calling thread, in order —
/// the reference execution every parallel executor must agree with
/// bit-for-bit.
#[derive(Debug, Clone, Copy, Default)]
pub struct SequentialExecutor;

impl PartitionExecutor for SequentialExecutor {
    fn run(&self, jobs: Vec<PartitionJob<'_>>) {
        for job in jobs {
            job();
        }
    }
}

/// Error restoring an environment from serialized state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvStateError(pub String);

impl fmt::Display for EnvStateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "environment state error: {}", self.0)
    }
}

impl std::error::Error for EnvStateError {}

/// A world that couples a fleet of sessions: per-slot visibility and
/// activity per session, plus joint-choice → per-session feedback.
///
/// See the [module documentation](self) for the phase protocol and the
/// determinism contract. `Send + Sync` is required because
/// [`session_view`](Self::session_view) is called from parallel workers.
pub trait Environment: Send + Sync {
    /// Number of sessions this environment provides feedback for. A driver
    /// must host exactly this many sessions, in the same order.
    fn sessions(&self) -> usize;

    /// Advances environment state to the start of `slot`: applies scheduled
    /// bandwidth events, moves walking devices between service areas,
    /// opens/closes activity windows. Called exactly once per slot, before
    /// any session chooses.
    fn begin_slot(&mut self, slot: SlotIndex);

    /// Partition-parallel variant of [`begin_slot`](Self::begin_slot),
    /// sharded over the same [`feedback_partitions`](Self::feedback_partitions)
    /// as the feedback phase. Drivers may call it instead of `begin_slot`
    /// whenever the environment advertises partitions; both must produce
    /// bit-identical state (the slot refresh is expected to be RNG-free per
    /// session, so unlike `feedback_partitioned` there are no per-partition
    /// RNG streams to carry).
    ///
    /// The default ignores `executor` and runs the sequential
    /// [`begin_slot`](Self::begin_slot) — third-party environments are
    /// untouched.
    fn begin_slot_partitioned(&mut self, slot: SlotIndex, executor: &dyn PartitionExecutor) {
        let _ = executor;
        self.begin_slot(slot);
    }

    /// The view of session `session` for the current slot. Called from
    /// parallel workers during the choose phase, after
    /// [`begin_slot`](Self::begin_slot); implementations must precompute any
    /// per-session changes there.
    fn session_view(&self, session: usize, slot: SlotIndex) -> SessionView<'_>;

    /// Converts the joint choices of the current slot into per-session
    /// feedback.
    ///
    /// `choices[i]` is `None` for sessions that sat the slot out; `out` is a
    /// persistent buffer owned by the driver, resized to one entry per
    /// session (entries still hold the previous slot's observations, so
    /// implementations may scavenge their heap allocations — e.g.
    /// full-information gain vectors — before overwriting). Write `None` for
    /// inactive sessions.
    ///
    /// Runs sequentially; environment randomness must be drawn from the
    /// environment's own state in a canonical (session-order) sequence.
    fn feedback(
        &mut self,
        slot: SlotIndex,
        choices: &[Option<NetworkId>],
        out: &mut [Option<Observation>],
    );

    /// The independent feedback partitions of this world, or `None` when the
    /// feedback phase is inherently sequential (the default — third-party
    /// environments are untouched).
    ///
    /// When `Some`, the ranges must be ordered, disjoint and tile
    /// `0..sessions()` exactly (see [`SessionRange::tile`]), must stay fixed
    /// for the environment's lifetime, and feedback for a session in one
    /// partition must not depend on the choices of sessions in another.
    /// Drivers are then allowed to call
    /// [`feedback_partitioned`](Self::feedback_partitioned) instead of
    /// [`feedback`](Self::feedback); both must produce bit-identical results.
    fn feedback_partitions(&self) -> Option<&[SessionRange]> {
        None
    }

    /// Partition-parallel variant of [`feedback`](Self::feedback):
    /// implementations package one [`PartitionJob`] per advertised partition
    /// — each owning disjoint mutable state (the partition's RNG stream,
    /// share/load buffers, its slice of `out`) — and hand the batch to the
    /// driver's `executor`, then perform any sequential cross-partition
    /// reduce (recorders, global accounting) after it returns.
    ///
    /// The default ignores `executor` and runs the sequential
    /// [`feedback`](Self::feedback); environments advertising partitions
    /// must override it (and keep the two paths bit-identical — the
    /// recommended shape is to implement `feedback` as
    /// `self.feedback_partitioned(slot, choices, out, &SequentialExecutor)`).
    fn feedback_partitioned(
        &mut self,
        slot: SlotIndex,
        choices: &[Option<NetworkId>],
        out: &mut [Option<Observation>],
        executor: &dyn PartitionExecutor,
    ) {
        let _ = executor;
        self.feedback(slot, choices, out);
    }

    /// `true` when this environment produces **shared** (gossiped) feedback:
    /// the driver will then call
    /// [`shared_feedback_into`](Self::shared_feedback_into) for every session
    /// that observed feedback this slot and forward the digest to
    /// [`Policy::observe_shared`](crate::Policy::observe_shared). The default
    /// is `false` — isolated worlds pay nothing.
    fn shares_feedback(&self) -> bool {
        false
    }

    /// Copies the gossip digest visible to `session` this slot into `out`
    /// (a driver-owned scratch buffer, overwritten entirely); returns `true`
    /// when the digest carries any entries.
    ///
    /// Called from parallel workers during the observe phase (`&self`), after
    /// [`feedback`](Self::feedback) has run — implementations must have
    /// finalised their digests there.
    fn shared_feedback_into(&self, session: usize, out: &mut crate::SharedFeedback) -> bool {
        let _ = (session, out);
        false
    }

    /// `true` when [`end_slot`](Self::end_slot) wants each session's
    /// most-probable network (the `tops` argument). Computing it costs one
    /// distribution read per session per slot, so fleet-scale environments
    /// leave this `false` (the default) and `end_slot` receives an empty
    /// slice.
    fn wants_top_choices(&self) -> bool {
        false
    }

    /// End-of-slot event hook, fired after every session has observed its
    /// feedback. `tops[i]` is session `i`'s most probable network and its
    /// probability (only populated when
    /// [`wants_top_choices`](Self::wants_top_choices) returns `true`;
    /// recorders use it for stable-state detection). The default does
    /// nothing.
    fn end_slot(
        &mut self,
        slot: SlotIndex,
        choices: &[Option<NetworkId>],
        tops: &[Option<(NetworkId, f64)>],
    ) {
        let _ = (slot, choices, tops);
    }

    /// Enables or disables streaming telemetry accumulation; returns `true`
    /// when this environment supports it (and the new setting took effect).
    ///
    /// Telemetry is pure observation: toggling it must not change choices,
    /// gains, the environment RNG trajectory or [`state`](Self::state).
    /// Environments that support partitioned feedback accumulate one
    /// [`SlotMetrics`](smartexp3_telemetry::SlotMetrics) per partition while
    /// grading and merge them in canonical partition order, so the series is
    /// identical at any thread count and with partitioning on or off. The
    /// default declines (`false`): worlds without telemetry pay nothing.
    fn set_telemetry(&mut self, enabled: bool) -> bool {
        let _ = enabled;
        false
    }

    /// The metrics accumulated for the most recently graded slot, or `None`
    /// when telemetry is unsupported or disabled.
    fn telemetry(&self) -> Option<&smartexp3_telemetry::SlotMetrics> {
        None
    }

    /// The decision cadence of `session` in slots: once awake at time `t`,
    /// the session next decides at `t + wake_cadence(session)` (unless
    /// [`next_wake`](Self::next_wake) is overridden with a richer schedule).
    /// The default — cadence 1, every session decides every slot — is the
    /// uniform-cadence adapter that makes slot-synchronous environments
    /// satisfy the event protocol unchanged. Implementations must return a
    /// value ≥ 1; drivers clamp 0 to 1.
    fn wake_cadence(&self, session: usize) -> usize {
        let _ = session;
        1
    }

    /// The first slot at which `session` decides. The default (slot 0,
    /// matching slot-synchronous stepping) suits uniform worlds; duty-cycle
    /// worlds stagger first wakes so cohorts do not all collide at 0.
    fn first_wake(&self, session: usize) -> SlotIndex {
        let _ = session;
        0
    }

    /// The next slot at which `session` decides, given that it just decided
    /// at `woke_at`. Must be strictly greater than `woke_at` (drivers clamp
    /// to `woke_at + 1`). The default applies
    /// [`wake_cadence`](Self::wake_cadence) as a fixed period.
    fn next_wake(&self, session: usize, woke_at: SlotIndex) -> SlotIndex {
        woke_at + self.wake_cadence(session).max(1)
    }

    /// The earliest slot **at or after** `from` at which the environment's
    /// own state changes (a scheduled bandwidth event fires, a device moves
    /// between areas, an activity window opens or closes) — or `None` when
    /// no such slot remains. An event-driven driver must call
    /// [`begin_slot`](Self::begin_slot) (or its partitioned variant) at
    /// every such slot even when no session wakes there, because slot-state
    /// advances like event-schedule cursors are applied, not skipped.
    ///
    /// The default (`None`) declares the environment free of pushed events:
    /// its `begin_slot` must then tolerate being called only at wake times
    /// (i.e. its per-slot refresh is a pure function of the absolute slot).
    fn next_env_event(&self, from: SlotIndex) -> Option<SlotIndex> {
        let _ = from;
        None
    }

    /// Serializes the environment's dynamic state (current bandwidths,
    /// pending events, mobility positions, environment RNG, per-session
    /// accounting) as an opaque JSON string, or `None` when this environment
    /// cannot be checkpointed.
    fn state(&self) -> Option<String> {
        None
    }

    /// Restores dynamic state captured by [`state`](Self::state) on a
    /// freshly built environment with the same static configuration.
    ///
    /// # Errors
    ///
    /// Returns [`EnvStateError`] when the state text does not parse or does
    /// not match this environment's configuration.
    fn restore(&mut self, state: &str) -> Result<(), EnvStateError> {
        let _ = state;
        Err(EnvStateError(
            "this environment does not support checkpointing".to_string(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_view_is_active_without_changes() {
        let view = SessionView::active_static();
        assert!(view.active);
        assert!(view.networks_changed.is_none());
        assert_eq!(
            view,
            SessionView {
                active: true,
                networks_changed: None
            }
        );
    }

    #[test]
    fn default_view_is_inactive() {
        assert!(!SessionView::default().active);
    }

    #[test]
    fn state_error_displays_its_message() {
        let error = EnvStateError("bad cursor".to_string());
        assert!(error.to_string().contains("bad cursor"));
    }

    struct Trivial;

    impl Environment for Trivial {
        fn sessions(&self) -> usize {
            1
        }
        fn begin_slot(&mut self, _slot: SlotIndex) {}
        fn session_view(&self, _session: usize, _slot: SlotIndex) -> SessionView<'_> {
            SessionView::active_static()
        }
        fn feedback(
            &mut self,
            slot: SlotIndex,
            choices: &[Option<NetworkId>],
            out: &mut [Option<Observation>],
        ) {
            out[0] = choices[0].map(|network| Observation::bandit(slot, network, 1.0, 0.5));
        }
    }

    #[test]
    fn session_ranges_validate_tilings() {
        let tiling = [
            SessionRange::new(0, 3),
            SessionRange::new(3, 3),
            SessionRange::new(3, 7),
        ];
        assert!(SessionRange::tile(&tiling, 7));
        assert!(SessionRange::tile(&[], 0));
        assert_eq!(tiling[0].len(), 3);
        assert!(tiling[1].is_empty());
        // Gaps, overlaps, inversions and short covers are all rejected.
        assert!(!SessionRange::tile(&tiling, 8));
        assert!(!SessionRange::tile(&[SessionRange::new(1, 4)], 4));
        assert!(!SessionRange::tile(
            &[SessionRange::new(0, 3), SessionRange::new(2, 4)],
            4
        ));
        assert!(!SessionRange::tile(&[SessionRange::new(0, 3)], 4));
        let inverted = SessionRange::new(5, 2);
        assert!(inverted.is_empty());
        assert_eq!(inverted.len(), 0);
        assert!(!SessionRange::tile(&[inverted], 2));
    }

    #[test]
    fn sequential_executor_runs_every_job_in_order() {
        let order = std::sync::Mutex::new(Vec::new());
        let jobs: Vec<PartitionJob<'_>> = (0..4)
            .map(|i| {
                let order = &order;
                Box::new(move || order.lock().unwrap().push(i)) as PartitionJob<'_>
            })
            .collect();
        SequentialExecutor.run(jobs);
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn trait_defaults_are_usable() {
        let mut env = Trivial;
        assert!(!env.wants_top_choices());
        assert!(!env.shares_feedback());
        assert!(env.feedback_partitions().is_none());
        let mut digest = crate::SharedFeedback::default();
        assert!(!env.shared_feedback_into(0, &mut digest));
        assert!(digest.is_empty());
        assert!(env.state().is_none());
        assert!(env.restore("{}").is_err());
        env.end_slot(0, &[Some(NetworkId(0))], &[]);
        let mut out = vec![None];
        env.feedback(0, &[Some(NetworkId(0))], &mut out);
        assert_eq!(out[0].as_ref().map(|o| o.network), Some(NetworkId(0)));
        // The default partitioned path is the sequential one.
        out[0] = None;
        env.feedback_partitioned(0, &[Some(NetworkId(0))], &mut out, &SequentialExecutor);
        assert_eq!(out[0].as_ref().map(|o| o.network), Some(NetworkId(0)));
    }

    #[test]
    fn wake_protocol_defaults_to_uniform_cadence() {
        let env = Trivial;
        assert_eq!(env.wake_cadence(0), 1);
        assert_eq!(env.first_wake(0), 0);
        // Uniform cadence 1: the wake schedule is exactly the slot sequence.
        assert_eq!(env.next_wake(0, 0), 1);
        assert_eq!(env.next_wake(0, 41), 42);
        // No pushed events anywhere.
        assert!(env.next_env_event(0).is_none());
        assert!(env.next_env_event(1_000_000).is_none());
    }

    #[test]
    fn next_wake_clamps_zero_cadence_to_one() {
        struct ZeroCadence;
        impl Environment for ZeroCadence {
            fn sessions(&self) -> usize {
                1
            }
            fn begin_slot(&mut self, _slot: SlotIndex) {}
            fn session_view(&self, _session: usize, _slot: SlotIndex) -> SessionView<'_> {
                SessionView::active_static()
            }
            fn feedback(
                &mut self,
                _slot: SlotIndex,
                _choices: &[Option<NetworkId>],
                _out: &mut [Option<Observation>],
            ) {
            }
            fn wake_cadence(&self, _session: usize) -> usize {
                0
            }
        }
        // A buggy cadence of 0 must still make forward progress.
        assert_eq!(ZeroCadence.next_wake(0, 7), 8);
    }
}
