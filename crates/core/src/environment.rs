//! The [`Environment`] trait: the world on the other side of the
//! [`Policy`](crate::Policy) boundary.
//!
//! A policy answers "which network do I pick this slot?"; an environment
//! answers everything else — which networks each session can currently see,
//! and what gain every session obtains once the *joint* choice vector of all
//! sessions is known (bandwidth sharing, switching delays, scheduled capacity
//! changes, mobility between service areas).
//!
//! The trait is deliberately split into phases so a fleet engine can drive
//! millions of sessions in parallel while keeping results bit-identical at
//! any thread count:
//!
//! 1. [`begin_slot`](Environment::begin_slot) — sequential; the environment
//!    advances its own state (scheduled bandwidth events, mobility walks,
//!    activity windows).
//! 2. [`session_view`](Environment::session_view) — called concurrently from
//!    worker threads (`&self`); reports whether a session participates this
//!    slot and whether its visible-network set changed.
//! 3. [`feedback`](Environment::feedback) — sequential; converts the joint
//!    choice vector into one observation per session. Any randomness the
//!    environment needs (noisy bandwidth shares, sampled switching delays)
//!    must come from state owned by the environment, never from per-session
//!    RNG streams, so the result is independent of how sessions were sharded.
//! 4. [`end_slot`](Environment::end_slot) — sequential; an event hook for
//!    recorders and metrics, fired after every session has observed its
//!    feedback.
//!
//! Environments that support checkpointing serialize their dynamic state as
//! an opaque JSON string via [`state`](Environment::state) /
//! [`restore`](Environment::restore); a fleet engine embeds that string in
//! its own snapshot so a mid-scenario checkpoint resumes bit-identically —
//! pending events, mobility positions and the environment RNG included.

use crate::{NetworkId, Observation, SlotIndex};
use std::fmt;

/// What one session is allowed to do in the coming slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionView<'a> {
    /// `false` when the session sits this slot out (outside its activity
    /// window); the engine then neither asks its policy to choose nor
    /// delivers feedback.
    pub active: bool,
    /// `Some(networks)` exactly when the session's set of visible networks
    /// changed entering this slot (mobility, AP churn, first activation into
    /// an area that differs from the one its policy was built for). The
    /// engine forwards it to [`Policy::on_networks_changed`] before the
    /// session chooses.
    ///
    /// [`Policy::on_networks_changed`]: crate::Policy::on_networks_changed
    pub networks_changed: Option<&'a [NetworkId]>,
}

impl SessionView<'_> {
    /// The static-world view: active every slot, networks never change.
    #[must_use]
    pub fn active_static() -> Self {
        SessionView {
            active: true,
            networks_changed: None,
        }
    }
}

/// Error restoring an environment from serialized state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvStateError(pub String);

impl fmt::Display for EnvStateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "environment state error: {}", self.0)
    }
}

impl std::error::Error for EnvStateError {}

/// A world that couples a fleet of sessions: per-slot visibility and
/// activity per session, plus joint-choice → per-session feedback.
///
/// See the [module documentation](self) for the phase protocol and the
/// determinism contract. `Send + Sync` is required because
/// [`session_view`](Self::session_view) is called from parallel workers.
pub trait Environment: Send + Sync {
    /// Number of sessions this environment provides feedback for. A driver
    /// must host exactly this many sessions, in the same order.
    fn sessions(&self) -> usize;

    /// Advances environment state to the start of `slot`: applies scheduled
    /// bandwidth events, moves walking devices between service areas,
    /// opens/closes activity windows. Called exactly once per slot, before
    /// any session chooses.
    fn begin_slot(&mut self, slot: SlotIndex);

    /// The view of session `session` for the current slot. Called from
    /// parallel workers during the choose phase, after
    /// [`begin_slot`](Self::begin_slot); implementations must precompute any
    /// per-session changes there.
    fn session_view(&self, session: usize, slot: SlotIndex) -> SessionView<'_>;

    /// Converts the joint choices of the current slot into per-session
    /// feedback.
    ///
    /// `choices[i]` is `None` for sessions that sat the slot out; `out` is a
    /// persistent buffer owned by the driver, resized to one entry per
    /// session (entries still hold the previous slot's observations, so
    /// implementations may scavenge their heap allocations — e.g.
    /// full-information gain vectors — before overwriting). Write `None` for
    /// inactive sessions.
    ///
    /// Runs sequentially; environment randomness must be drawn from the
    /// environment's own state in a canonical (session-order) sequence.
    fn feedback(
        &mut self,
        slot: SlotIndex,
        choices: &[Option<NetworkId>],
        out: &mut [Option<Observation>],
    );

    /// `true` when this environment produces **shared** (gossiped) feedback:
    /// the driver will then call
    /// [`shared_feedback_into`](Self::shared_feedback_into) for every session
    /// that observed feedback this slot and forward the digest to
    /// [`Policy::observe_shared`](crate::Policy::observe_shared). The default
    /// is `false` — isolated worlds pay nothing.
    fn shares_feedback(&self) -> bool {
        false
    }

    /// Copies the gossip digest visible to `session` this slot into `out`
    /// (a driver-owned scratch buffer, overwritten entirely); returns `true`
    /// when the digest carries any entries.
    ///
    /// Called from parallel workers during the observe phase (`&self`), after
    /// [`feedback`](Self::feedback) has run — implementations must have
    /// finalised their digests there.
    fn shared_feedback_into(&self, session: usize, out: &mut crate::SharedFeedback) -> bool {
        let _ = (session, out);
        false
    }

    /// `true` when [`end_slot`](Self::end_slot) wants each session's
    /// most-probable network (the `tops` argument). Computing it costs one
    /// distribution read per session per slot, so fleet-scale environments
    /// leave this `false` (the default) and `end_slot` receives an empty
    /// slice.
    fn wants_top_choices(&self) -> bool {
        false
    }

    /// End-of-slot event hook, fired after every session has observed its
    /// feedback. `tops[i]` is session `i`'s most probable network and its
    /// probability (only populated when
    /// [`wants_top_choices`](Self::wants_top_choices) returns `true`;
    /// recorders use it for stable-state detection). The default does
    /// nothing.
    fn end_slot(
        &mut self,
        slot: SlotIndex,
        choices: &[Option<NetworkId>],
        tops: &[Option<(NetworkId, f64)>],
    ) {
        let _ = (slot, choices, tops);
    }

    /// Serializes the environment's dynamic state (current bandwidths,
    /// pending events, mobility positions, environment RNG, per-session
    /// accounting) as an opaque JSON string, or `None` when this environment
    /// cannot be checkpointed.
    fn state(&self) -> Option<String> {
        None
    }

    /// Restores dynamic state captured by [`state`](Self::state) on a
    /// freshly built environment with the same static configuration.
    ///
    /// # Errors
    ///
    /// Returns [`EnvStateError`] when the state text does not parse or does
    /// not match this environment's configuration.
    fn restore(&mut self, state: &str) -> Result<(), EnvStateError> {
        let _ = state;
        Err(EnvStateError(
            "this environment does not support checkpointing".to_string(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_view_is_active_without_changes() {
        let view = SessionView::active_static();
        assert!(view.active);
        assert!(view.networks_changed.is_none());
        assert_eq!(
            view,
            SessionView {
                active: true,
                networks_changed: None
            }
        );
    }

    #[test]
    fn default_view_is_inactive() {
        assert!(!SessionView::default().active);
    }

    #[test]
    fn state_error_displays_its_message() {
        let error = EnvStateError("bad cursor".to_string());
        assert!(error.to_string().contains("bad cursor"));
    }

    struct Trivial;

    impl Environment for Trivial {
        fn sessions(&self) -> usize {
            1
        }
        fn begin_slot(&mut self, _slot: SlotIndex) {}
        fn session_view(&self, _session: usize, _slot: SlotIndex) -> SessionView<'_> {
            SessionView::active_static()
        }
        fn feedback(
            &mut self,
            slot: SlotIndex,
            choices: &[Option<NetworkId>],
            out: &mut [Option<Observation>],
        ) {
            out[0] = choices[0].map(|network| Observation::bandit(slot, network, 1.0, 0.5));
        }
    }

    #[test]
    fn trait_defaults_are_usable() {
        let mut env = Trivial;
        assert!(!env.wants_top_choices());
        assert!(!env.shares_feedback());
        let mut digest = crate::SharedFeedback::default();
        assert!(!env.shared_feedback_into(0, &mut digest));
        assert!(digest.is_empty());
        assert!(env.state().is_none());
        assert!(env.restore("{}").is_err());
        env.end_slot(0, &[Some(NetworkId(0))], &[]);
        let mut out = vec![None];
        env.feedback(0, &[Some(NetworkId(0))], &mut out);
        assert_eq!(out[0].as_ref().map(|o| o.network), Some(NetworkId(0)));
    }
}
