//! The Greedy baseline (Table II of the paper).
//!
//! The device first explores every available network once, in random order.
//! From then on it deterministically selects the network with the highest
//! average observed gain. It never forgets and never deliberately explores
//! again, which is exactly why it gets stuck after environmental changes
//! (Figures 8, 13, 14 of the paper).

use crate::error::check_networks;
use crate::policy::{Observation, Policy, PolicyStats, SelectionKind};
use crate::{ConfigError, NetworkId, NetworkStats, SlotIndex};
use rand::seq::SliceRandom;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Greedy network selection: explore once, then always pick the empirical best.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Greedy {
    available: Vec<NetworkId>,
    to_explore: Vec<NetworkId>,
    explore_shuffled: bool,
    stats_table: NetworkStats,
    current: Option<NetworkId>,
    last_kind: SelectionKind,
    stats: PolicyStats,
}

impl Greedy {
    /// Creates a greedy policy over `networks`.
    ///
    /// # Errors
    ///
    /// Returns an error if `networks` is empty or contains duplicates.
    pub fn new(networks: Vec<NetworkId>) -> Result<Self, ConfigError> {
        check_networks(&networks)?;
        Ok(Greedy {
            to_explore: networks.clone(),
            available: networks,
            explore_shuffled: false,
            stats_table: NetworkStats::new(),
            current: None,
            last_kind: SelectionKind::Exploration,
            stats: PolicyStats::default(),
        })
    }

    fn note_switch(&mut self, next: NetworkId) {
        if let Some(previous) = self.current {
            if previous != next {
                self.stats.switches += 1;
            }
        }
        self.current = Some(next);
    }
}

impl Policy for Greedy {
    fn state(&self) -> Option<crate::PolicyState> {
        Some(crate::PolicyState::Greedy(Box::new(self.clone())))
    }

    fn name(&self) -> &'static str {
        "Greedy"
    }

    fn choose(&mut self, _slot: SlotIndex, rng: &mut dyn RngCore) -> NetworkId {
        self.stats.blocks += 1;
        if !self.explore_shuffled {
            self.to_explore.shuffle(rng);
            self.explore_shuffled = true;
        }
        let next = if let Some(network) = self.to_explore.pop() {
            self.stats.explorations += 1;
            self.last_kind = SelectionKind::Exploration;
            network
        } else {
            self.stats.greedy_selections += 1;
            self.last_kind = SelectionKind::Greedy;
            self.stats_table
                .best_average()
                .filter(|n| self.available.contains(n))
                .or(self.current)
                .unwrap_or(self.available[0])
        };
        self.note_switch(next);
        next
    }

    fn observe(&mut self, observation: &Observation, _rng: &mut dyn RngCore) {
        self.stats_table
            .record_slot(observation.network, observation.scaled_gain);
    }

    fn on_networks_changed(&mut self, available: &[NetworkId], _rng: &mut dyn RngCore) {
        // Newly visible networks are queued for a one-slot exploration visit;
        // vanished networks are dropped from the statistics.
        for &n in available {
            if !self.available.contains(&n) {
                self.to_explore.push(n);
                self.explore_shuffled = false;
            }
        }
        self.available = available.to_vec();
        self.to_explore.retain(|n| available.contains(n));
        self.stats_table.retain_networks(available);
        if let Some(current) = self.current {
            if !available.contains(&current) {
                self.current = None;
            }
        }
    }

    fn probabilities(&self) -> Vec<(NetworkId, f64)> {
        // Deterministic once exploration is done: all mass on the empirical best.
        let target = if self.to_explore.is_empty() {
            self.stats_table
                .best_average()
                .filter(|n| self.available.contains(n))
                .or(self.current)
        } else {
            None
        };
        self.available
            .iter()
            .map(|&n| {
                let p = match target {
                    Some(best) if best == n => 1.0,
                    Some(_) => 0.0,
                    None => 1.0 / self.available.len() as f64,
                };
                (n, p)
            })
            .collect()
    }

    fn last_selection_kind(&self) -> SelectionKind {
        self.last_kind
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn nets(k: u32) -> Vec<NetworkId> {
        (0..k).map(NetworkId).collect()
    }

    #[test]
    fn explores_each_network_exactly_once_first() {
        let mut policy = Greedy::new(nets(4)).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::BTreeSet::new();
        for t in 0..4 {
            let n = policy.choose(t, &mut rng);
            assert!(seen.insert(n), "network {n} explored twice");
            policy.observe(&Observation::bandit(t, n, 5.0, 0.2), &mut rng);
        }
        assert_eq!(seen.len(), 4);
        assert_eq!(policy.stats().explorations, 4);
    }

    #[test]
    fn sticks_to_empirical_best_after_exploration() {
        let mut policy = Greedy::new(nets(3)).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for t in 0..3 {
            let n = policy.choose(t, &mut rng);
            let gain = if n == NetworkId(1) { 0.9 } else { 0.1 };
            policy.observe(&Observation::bandit(t, n, gain * 22.0, gain), &mut rng);
        }
        for t in 3..50 {
            let n = policy.choose(t, &mut rng);
            assert_eq!(n, NetworkId(1));
            policy.observe(&Observation::bandit(t, n, 19.8, 0.9), &mut rng);
        }
        // 3 exploration slots can incur at most 3 switches, plus possibly one
        // switch into the final greedy choice.
        assert!(policy.stats().switches <= 4);
    }

    #[test]
    fn can_get_stuck_when_conditions_change() {
        // The defining weakness of Greedy: after settling, a change in gains
        // does not trigger re-exploration of other networks.
        let mut policy = Greedy::new(nets(2)).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for t in 0..2 {
            let n = policy.choose(t, &mut rng);
            let gain = if n == NetworkId(0) { 0.8 } else { 0.4 };
            policy.observe(&Observation::bandit(t, n, gain * 22.0, gain), &mut rng);
        }
        // Network 0's quality collapses, but its long history keeps its average above 0.4
        // only for a while; greedy still never *tries* network 1 again unless the average
        // crosses. With a short history the average drops quickly, so use few slots and a
        // large prior gap to show stickiness.
        for t in 2..6 {
            let n = policy.choose(t, &mut rng);
            assert_eq!(n, NetworkId(0));
            policy.observe(&Observation::bandit(t, n, 0.7 * 22.0, 0.7), &mut rng);
        }
    }

    #[test]
    fn newly_discovered_network_gets_explored() {
        let mut policy = Greedy::new(nets(2)).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for t in 0..5 {
            let n = policy.choose(t, &mut rng);
            policy.observe(&Observation::bandit(t, n, 11.0, 0.5), &mut rng);
        }
        policy.on_networks_changed(&[NetworkId(0), NetworkId(1), NetworkId(5)], &mut rng);
        let mut visited_new = false;
        for t in 5..8 {
            let n = policy.choose(t, &mut rng);
            if n == NetworkId(5) {
                visited_new = true;
            }
            policy.observe(&Observation::bandit(t, n, 11.0, 0.5), &mut rng);
        }
        assert!(
            visited_new,
            "the newly discovered network should be explored"
        );
    }

    #[test]
    fn handles_current_network_disappearing() {
        let mut policy = Greedy::new(nets(2)).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for t in 0..4 {
            let n = policy.choose(t, &mut rng);
            policy.observe(&Observation::bandit(t, n, 11.0, 0.5), &mut rng);
        }
        policy.on_networks_changed(&[NetworkId(1)], &mut rng);
        let n = policy.choose(4, &mut rng);
        assert_eq!(n, NetworkId(1));
    }
}
