//! Cooperative (gossiped) feedback — the Co-Bandit data path.
//!
//! *Cooperation Speeds Surfing: Use Co-Bandit!* (Appavoo, Gilbert, Tan 2019)
//! shows that devices which gossip their observed rates between slots
//! converge markedly faster than isolated bandits: a device hears what its
//! neighbours obtained on the networks it did *not* try, turning bandit
//! feedback into approximate full information.
//!
//! [`SharedFeedback`] is the digest that crosses the policy boundary: one
//! entry per network, each a **staleness-decayed weighted average** of the
//! scaled gains neighbours reported on that network. The environment owns
//! the digests (one per gossip neighbourhood), decays them once per slot and
//! folds fresh reports in; the driver copies the relevant digest into a
//! per-shard scratch buffer and hands it to
//! [`Policy::observe_shared`](crate::Policy::observe_shared).
//!
//! The digest is deliberately *not* validated on ingest: gossip carries raw
//! measurements, and a hostile or broken report (NaN, ±∞, negative rates)
//! must be rejected where it could do damage — the weight table's
//! [`shared_update`](crate::WeightTable::shared_update) guard — not silently
//! scrubbed at every hop.

use crate::NetworkId;
use serde::{Deserialize, Serialize};

/// Digest entries whose decayed weight falls below this threshold are
/// evicted — a neighbourhood that stopped reporting on a network forgets it
/// instead of carrying a ghost entry forever.
const MIN_WEIGHT: f64 = 1e-6;

/// One network's gossip digest: a staleness-decayed weighted average of the
/// scaled gains neighbours observed on it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SharedRate {
    /// The network the reports are about.
    pub network: NetworkId,
    /// Decay-weighted number of reports behind this entry (1.0 per report,
    /// multiplied by the retention factor once per slot).
    pub weight: f64,
    /// Decay-weighted sum of the reported scaled gains.
    pub weighted_gain: f64,
}

impl SharedRate {
    /// The decayed mean of the reported scaled gains (0 when no weight is
    /// left).
    #[must_use]
    pub fn mean_gain(&self) -> f64 {
        if self.weight > 0.0 {
            self.weighted_gain / self.weight
        } else {
            0.0
        }
    }

    /// How much a consumer should trust this entry, in `[0, 1]`: the decayed
    /// report mass, saturating at one full report. A single fresh neighbour
    /// report counts fully; stale remnants fade with their weight.
    #[must_use]
    pub fn confidence(&self) -> f64 {
        self.weight.clamp(0.0, 1.0)
    }
}

/// Per-network observed-rate digests with staleness decay — what one gossip
/// neighbourhood currently believes about its networks.
///
/// See the [module documentation](self) for the data path and the
/// validation contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharedFeedback {
    /// One entry per reported network, sorted by network id.
    entries: Vec<SharedRate>,
    /// Fraction of each entry's weight retained per slot (`0` = only the
    /// current slot's reports survive, `1` would never forget — clamped
    /// just below so digests stay bounded).
    retention: f64,
}

impl Default for SharedFeedback {
    fn default() -> Self {
        SharedFeedback::new(0.5)
    }
}

impl SharedFeedback {
    /// Creates an empty digest whose entries retain `retention` of their
    /// weight per slot (clamped to `[0, 0.99]`).
    #[must_use]
    pub fn new(retention: f64) -> Self {
        SharedFeedback {
            entries: Vec::new(),
            retention: if retention.is_finite() {
                retention.clamp(0.0, 0.99)
            } else {
                0.0
            },
        }
    }

    /// The per-slot weight retention factor.
    #[must_use]
    pub fn retention(&self) -> f64 {
        self.retention
    }

    /// Number of networks with a live digest entry.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no network has a live entry.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The digest entries, sorted by network id.
    #[must_use]
    pub fn rates(&self) -> &[SharedRate] {
        &self.entries
    }

    /// The digest entry for `network`, if any neighbour reported on it.
    #[must_use]
    pub fn rate_of(&self, network: NetworkId) -> Option<&SharedRate> {
        self.entries
            .binary_search_by_key(&network, |e| e.network)
            .ok()
            .map(|i| &self.entries[i])
    }

    /// Folds one gossiped report (a neighbour observed `scaled_gain` on
    /// `network`) into the digest with unit weight.
    ///
    /// Deliberately permissive: raw measurements go in unchecked and are
    /// validated at the consumption point (see the module documentation).
    pub fn record(&mut self, network: NetworkId, scaled_gain: f64) {
        match self.entries.binary_search_by_key(&network, |e| e.network) {
            Ok(i) => {
                let entry = &mut self.entries[i];
                entry.weight += 1.0;
                entry.weighted_gain += scaled_gain;
            }
            Err(i) => self.entries.insert(
                i,
                SharedRate {
                    network,
                    weight: 1.0,
                    weighted_gain: scaled_gain,
                },
            ),
        }
    }

    /// Applies one slot of staleness decay: every entry keeps `retention` of
    /// its weight and weighted gain; entries whose weight decays away are
    /// evicted, and so are entries whose weight **or gain sum** was poisoned
    /// into a non-finite value — one NaN/∞ report must cost the
    /// neighbourhood at most one slot of feedback on that network, not the
    /// rest of the run (honest reports folded into a NaN sum would otherwise
    /// keep the weight alive while the mean stays NaN forever).
    pub fn decay(&mut self) {
        let retention = self.retention;
        for entry in &mut self.entries {
            entry.weight *= retention;
            entry.weighted_gain *= retention;
        }
        self.entries.retain(|e| {
            e.weight.is_finite() && e.weighted_gain.is_finite() && e.weight >= MIN_WEIGHT
        });
    }

    /// Forgets everything.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Overwrites this digest with `source`, reusing this digest's
    /// allocation — the zero-alloc read path for per-shard scratch buffers.
    pub fn copy_from(&mut self, source: &SharedFeedback) {
        self.retention = source.retention;
        self.entries.clear();
        self.entries.extend_from_slice(&source.entries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_per_network() {
        let mut digest = SharedFeedback::new(0.5);
        digest.record(NetworkId(2), 0.8);
        digest.record(NetworkId(0), 0.2);
        digest.record(NetworkId(2), 0.6);
        assert_eq!(digest.len(), 2);
        let entry = digest.rate_of(NetworkId(2)).unwrap();
        assert_eq!(entry.weight, 2.0);
        assert!((entry.mean_gain() - 0.7).abs() < 1e-12);
        assert_eq!(entry.confidence(), 1.0);
        // Entries come out sorted by network id.
        let networks: Vec<NetworkId> = digest.rates().iter().map(|e| e.network).collect();
        assert_eq!(networks, vec![NetworkId(0), NetworkId(2)]);
    }

    #[test]
    fn decay_fades_and_eventually_evicts_entries() {
        let mut digest = SharedFeedback::new(0.5);
        digest.record(NetworkId(1), 1.0);
        digest.decay();
        let entry = *digest.rate_of(NetworkId(1)).unwrap();
        assert_eq!(entry.weight, 0.5);
        assert!((entry.mean_gain() - 1.0).abs() < 1e-12, "mean is unchanged");
        assert!(entry.confidence() < 1.0);
        for _ in 0..80 {
            digest.decay();
        }
        assert!(digest.is_empty(), "stale entries must be evicted");
    }

    #[test]
    fn poisoned_entries_are_evicted_at_the_next_decay() {
        // One hostile report must not mute a network's gossip for the rest
        // of the run: the poisoned entry dies at the next decay and honest
        // reports rebuild a clean one.
        let mut digest = SharedFeedback::new(0.5);
        digest.record(NetworkId(1), f64::NAN);
        digest.record(NetworkId(1), 0.8); // honest report folded into the NaN sum
        assert!(digest.rate_of(NetworkId(1)).unwrap().mean_gain().is_nan());
        digest.decay();
        assert!(digest.rate_of(NetworkId(1)).is_none(), "poison evicted");
        digest.record(NetworkId(1), 0.8);
        assert!((digest.rate_of(NetworkId(1)).unwrap().mean_gain() - 0.8).abs() < 1e-12);
        // Same for an ∞ report driving the weight itself non-finite later.
        digest.record(NetworkId(2), f64::INFINITY);
        digest.decay();
        assert!(digest.rate_of(NetworkId(2)).is_none());
    }

    #[test]
    fn zero_retention_keeps_only_the_current_slot() {
        let mut digest = SharedFeedback::new(0.0);
        digest.record(NetworkId(0), 0.9);
        digest.decay();
        assert!(digest.is_empty());
    }

    #[test]
    fn copy_from_reuses_the_buffer() {
        let mut source = SharedFeedback::new(0.7);
        source.record(NetworkId(0), 0.4);
        source.record(NetworkId(1), 0.6);
        let mut scratch = SharedFeedback::default();
        scratch.record(NetworkId(9), 1.0);
        scratch.copy_from(&source);
        assert_eq!(scratch, source);
        let capacity = {
            scratch.copy_from(&source);
            scratch.entries.capacity()
        };
        scratch.copy_from(&source);
        assert_eq!(scratch.entries.capacity(), capacity, "no reallocation");
    }

    #[test]
    fn hostile_reports_pass_through_for_the_consumer_to_reject() {
        // Ingest is permissive by contract; the weight table's shared_update
        // guard is the validation point.
        let mut digest = SharedFeedback::new(0.5);
        digest.record(NetworkId(0), f64::NAN);
        digest.record(NetworkId(1), -3.0);
        assert_eq!(digest.len(), 2);
        assert!(digest.rate_of(NetworkId(0)).unwrap().mean_gain().is_nan());
        assert!(digest.rate_of(NetworkId(1)).unwrap().mean_gain() < 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let mut digest = SharedFeedback::new(0.25);
        digest.record(NetworkId(3), 0.5);
        digest.decay();
        let text = serde_json::to_string(&digest).unwrap();
        let back: SharedFeedback = serde_json::from_str(&text).unwrap();
        assert_eq!(back, digest);
    }
}
