//! Configuration of [`SmartExp3`](crate::SmartExp3) and its feature-ablation
//! variants.

use crate::error::{check_positive, check_unit_interval};
use crate::{ConfigError, GammaSchedule, SamplerStrategy};
use serde::{Deserialize, Serialize};

/// Which of Smart EXP3's mechanisms are enabled.
///
/// The paper's Table III defines an ablation ladder; each named variant of the
/// algorithm corresponds to one combination of these flags:
///
/// | Variant                | blocks | explore | greedy | switch-back | reset |
/// |------------------------|--------|---------|--------|-------------|-------|
/// | Block EXP3             | ✓      |         |        |             |       |
/// | Hybrid Block EXP3      | ✓      | ✓       | ✓      |             |       |
/// | Smart EXP3 w/o Reset   | ✓      | ✓       | ✓      | ✓           |       |
/// | Smart EXP3             | ✓      | ✓       | ✓      | ✓           | ✓     |
///
/// (Adaptive blocking is always on — it is what distinguishes this whole
/// family from plain [`Exp3`](crate::Exp3).)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SmartExp3Features {
    /// Explore every available network once (in random order) before using the
    /// probability distribution.
    pub initial_exploration: bool,
    /// Occasionally pick the network with the highest average gain
    /// deterministically (coin-flip greedy policy, §III "Greedy choices").
    pub greedy: bool,
    /// Return to the previous network after a disappointing first slot of a
    /// block (§III "Switching back").
    pub switch_back: bool,
    /// Minimal reset: periodic, and on a sustained drop in the quality of the
    /// most-used network (§III "Minimal reset").
    pub reset: bool,
}

impl SmartExp3Features {
    /// All mechanisms on — full Smart EXP3.
    #[must_use]
    pub fn smart_exp3() -> Self {
        SmartExp3Features {
            initial_exploration: true,
            greedy: true,
            switch_back: true,
            reset: true,
        }
    }

    /// Smart EXP3 without the reset mechanism (Table III).
    #[must_use]
    pub fn smart_exp3_without_reset() -> Self {
        SmartExp3Features {
            reset: false,
            ..Self::smart_exp3()
        }
    }

    /// Block EXP3 + initial exploration + greedy policy (Table III).
    #[must_use]
    pub fn hybrid_block_exp3() -> Self {
        SmartExp3Features {
            initial_exploration: true,
            greedy: true,
            switch_back: false,
            reset: false,
        }
    }

    /// Only adaptive blocking on top of EXP3 (Table III).
    #[must_use]
    pub fn block_exp3() -> Self {
        SmartExp3Features {
            initial_exploration: false,
            greedy: false,
            switch_back: false,
            reset: false,
        }
    }
}

impl Default for SmartExp3Features {
    fn default() -> Self {
        Self::smart_exp3()
    }
}

/// Full configuration of the Smart EXP3 family.
///
/// The defaults reproduce the parameter choices of §V of the paper:
/// `β = 0.1`, `γ = b^{-1/3}`, a 15-second slot, an 8-slot switch-back window,
/// periodic reset at `p ≥ 0.75 ∧ l ≥ 40`, and drop-triggered reset at a
/// sustained ≥15 % decline over more than 4 slots.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmartExp3Config {
    /// Block-growth factor β ∈ (0, 1]; block length is `⌈(1+β)^x⌉`.
    pub beta: f64,
    /// Exploration-rate schedule, evaluated at the block index.
    pub gamma: GammaSchedule,
    /// Enabled mechanisms (see [`SmartExp3Features`]).
    pub features: SmartExp3Features,
    /// Number of trailing slots of the previous block consulted by the
    /// switch-back rule (paper: 8).
    pub switch_back_window: usize,
    /// Fraction of the window that must have exceeded the current gain for
    /// the "more than 50 % of the time" switch-back trigger (paper: 0.5).
    pub switch_back_majority: f64,
    /// Periodic reset fires when the most probable network's probability
    /// reaches this threshold … (paper: 0.75).
    pub reset_probability_threshold: f64,
    /// … and its next block length reaches this many slots (paper: 40).
    pub reset_block_length_threshold: u64,
    /// Drop-triggered reset: relative decline on the most-used network that
    /// counts as significant (paper: 0.15, i.e. 15 %).
    pub reset_drop_fraction: f64,
    /// Drop-triggered reset: number of consecutive declining slots that must
    /// be exceeded (paper: 4).
    pub reset_drop_slots: u32,
    /// Optional hard cap on block length, mostly useful for very long
    /// horizons with the reset mechanism disabled. `None` reproduces the
    /// paper exactly.
    pub max_block_length: Option<u64>,
    /// How the fresh-decision random draw inverts the CDF (see
    /// [`SamplerStrategy`]). Golden decision pins are scoped to this choice;
    /// the default `Linear` reproduces the historical trajectories
    /// bit-exactly.
    pub sampler: SamplerStrategy,
}

impl Default for SmartExp3Config {
    fn default() -> Self {
        SmartExp3Config {
            beta: 0.1,
            gamma: GammaSchedule::paper_default(),
            features: SmartExp3Features::smart_exp3(),
            switch_back_window: 8,
            switch_back_majority: 0.5,
            reset_probability_threshold: 0.75,
            reset_block_length_threshold: 40,
            reset_drop_fraction: 0.15,
            reset_drop_slots: 4,
            max_block_length: None,
            sampler: SamplerStrategy::default(),
        }
    }
}

impl SmartExp3Config {
    /// The paper's configuration with a different feature set (used to build
    /// the Table III ablation variants).
    #[must_use]
    pub fn with_features(features: SmartExp3Features) -> Self {
        SmartExp3Config {
            features,
            ..Self::default()
        }
    }

    /// Validates every parameter.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first invalid parameter.
    pub fn validate(&self) -> Result<(), ConfigError> {
        check_unit_interval("beta", self.beta)?;
        if let GammaSchedule::Fixed(g) = self.gamma {
            check_unit_interval("gamma", g)?;
        }
        check_unit_interval("switch_back_majority", self.switch_back_majority)?;
        check_unit_interval(
            "reset_probability_threshold",
            self.reset_probability_threshold,
        )?;
        check_unit_interval("reset_drop_fraction", self.reset_drop_fraction)?;
        check_positive(
            "reset_block_length_threshold",
            self.reset_block_length_threshold as f64,
        )?;
        if self.switch_back_window == 0 {
            return Err(ConfigError::ParameterOutOfRange {
                parameter: "switch_back_window",
                value: 0.0,
                expected: "at least 1 slot",
            });
        }
        if let Some(cap) = self.max_block_length {
            check_positive("max_block_length", cap as f64)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let config = SmartExp3Config::default();
        assert_eq!(config.beta, 0.1);
        assert_eq!(config.switch_back_window, 8);
        assert_eq!(config.reset_probability_threshold, 0.75);
        assert_eq!(config.reset_block_length_threshold, 40);
        assert_eq!(config.reset_drop_fraction, 0.15);
        assert_eq!(config.reset_drop_slots, 4);
        assert!(config.validate().is_ok());
    }

    #[test]
    fn ablation_ladder_is_monotone() {
        let block = SmartExp3Features::block_exp3();
        let hybrid = SmartExp3Features::hybrid_block_exp3();
        let no_reset = SmartExp3Features::smart_exp3_without_reset();
        let smart = SmartExp3Features::smart_exp3();
        assert!(!block.greedy && !block.switch_back && !block.reset);
        assert!(hybrid.greedy && !hybrid.switch_back);
        assert!(no_reset.switch_back && !no_reset.reset);
        assert!(smart.reset);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let config = SmartExp3Config {
            beta: 0.0,
            ..SmartExp3Config::default()
        };
        assert!(config.validate().is_err());

        let config = SmartExp3Config {
            switch_back_window: 0,
            ..SmartExp3Config::default()
        };
        assert!(config.validate().is_err());

        let config = SmartExp3Config {
            reset_drop_fraction: 1.5,
            ..SmartExp3Config::default()
        };
        assert!(config.validate().is_err());
    }
}
