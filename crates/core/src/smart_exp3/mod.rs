//! Smart EXP3 (Algorithm 1 of the paper, plus the §V implementation details).
//!
//! Smart EXP3 keeps the exponential-weight core of EXP3 but wraps it in four
//! practical mechanisms:
//!
//! * **Adaptive blocking** — a network is kept for a whole block of
//!   `⌈(1+β)^x⌉` slots, bounding switching (Theorem 2);
//! * **Initial exploration + greedy choices** — every network is visited once
//!   at start-up, and while the probability distribution is still close to
//!   uniform the device flips a fair coin and, on heads, deterministically
//!   picks the network with the best observed average gain;
//! * **Switch-back** — if the first slot of a block is disappointing compared
//!   to (the tail of) the previous block, the device returns to its previous
//!   network at the next slot;
//! * **Minimal reset** — periodically, and on a sustained quality drop of the
//!   most-used network, block lengths and greedy statistics are cleared and
//!   exploration is forced again, while the learned weights are kept.
//!
//! The same implementation also serves the paper's ablation variants
//! ([`BlockExp3`](crate::BlockExp3), [`HybridBlockExp3`](crate::HybridBlockExp3),
//! Smart EXP3 w/o Reset) through [`SmartExp3Features`].

mod config;

pub use config::{SmartExp3Config, SmartExp3Features};

use crate::block::{block_length, BlockState};
use crate::error::check_networks;
use crate::policy::{Observation, Policy, PolicyStats, SelectionKind};
use crate::{ConfigError, NetworkId, NetworkStats, SlotIndex, WeightTable};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// The Smart EXP3 policy (and, depending on [`SmartExp3Features`], its
/// ablation variants).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SmartExp3 {
    config: SmartExp3Config,
    available: Vec<NetworkId>,
    weights: WeightTable,
    stats_table: NetworkStats,

    /// Global block counter `b` (never reset; drives the γ schedule).
    block_index: usize,
    current_gamma: f64,

    /// Networks still to be visited by the (initial or post-reset) exploration
    /// phase.
    explore_queue: Vec<NetworkId>,
    explore_shuffled: bool,

    current_block: Option<BlockState>,
    previous_block: Option<BlockState>,
    /// Set when the switch-back rule fired; consumed by the next decision.
    pending_switch_back: Option<NetworkId>,
    /// `true` while a new decision is required before the next slot.
    needs_decision: bool,

    /// Network used in the most recent slot (for switch counting).
    last_network: Option<NetworkId>,
    /// Block length of the most probable network when the greedy condition
    /// `max(p) − min(p) ≤ 1/(k−1)` first became false (the `y` of §V).
    greedy_cutoff: Option<u64>,
    /// Consecutive slots with a ≥ `reset_drop_fraction` decline on the
    /// most-used network.
    drop_streak: u32,

    /// Memoised `⌈(1+β)^x⌉` block lengths indexed by `x` (0 = not yet
    /// computed): β is fixed per policy and every fresh decision consults the
    /// formula up to three times (reset condition, greedy condition, final
    /// block length), so the `powf` is paid once per distinct `x` instead of
    /// per decision. Serialized so a restored policy stays byte-identical.
    block_length_memo: Vec<u64>,
    /// Recycled backing storage for [`BlockState::slot_gains`]: the gain log
    /// of a finished block's predecessor is cleared and reused by the next
    /// block, so steady-state block turnover performs no allocation.
    gain_log_pool: Vec<f64>,

    last_kind: SelectionKind,
    stats: PolicyStats,
}

impl SmartExp3 {
    /// Creates a Smart EXP3 policy over `networks`.
    ///
    /// # Errors
    ///
    /// Returns an error if `networks` is empty or contains duplicates, or if
    /// `config` fails validation.
    pub fn new(networks: Vec<NetworkId>, config: SmartExp3Config) -> Result<Self, ConfigError> {
        check_networks(&networks)?;
        config.validate()?;
        let explore_queue = if config.features.initial_exploration {
            networks.clone()
        } else {
            Vec::new()
        };
        Ok(SmartExp3 {
            weights: WeightTable::uniform_with_strategy(&networks, config.sampler),
            stats_table: NetworkStats::new(),
            block_index: 0,
            current_gamma: config.gamma.value(1),
            explore_queue,
            explore_shuffled: false,
            current_block: None,
            previous_block: None,
            pending_switch_back: None,
            needs_decision: true,
            last_network: None,
            greedy_cutoff: None,
            drop_streak: 0,
            block_length_memo: Vec::new(),
            gain_log_pool: Vec::new(),
            last_kind: SelectionKind::Exploration,
            stats: PolicyStats::default(),
            available: networks,
            config,
        })
    }

    /// Convenience constructor for the full Smart EXP3 with paper defaults.
    ///
    /// # Errors
    ///
    /// See [`SmartExp3::new`].
    pub fn with_defaults(networks: Vec<NetworkId>) -> Result<Self, ConfigError> {
        Self::new(networks, SmartExp3Config::default())
    }

    /// The configuration this policy was built with.
    #[must_use]
    pub fn config(&self) -> &SmartExp3Config {
        &self.config
    }

    /// The γ used for the current block.
    #[must_use]
    pub fn current_gamma(&self) -> f64 {
        self.current_gamma
    }

    /// Number of blocks started so far.
    #[must_use]
    pub fn block_index(&self) -> usize {
        self.block_index
    }

    /// Length (in slots) of the block currently being executed, if any.
    #[must_use]
    pub fn current_block_length(&self) -> Option<u64> {
        self.current_block.as_ref().map(|b| b.length)
    }

    // ------------------------------------------------------------------
    // Decision making
    // ------------------------------------------------------------------

    fn block_length_for(&mut self, network: NetworkId) -> u64 {
        let x = self.stats_table.blocks(network);
        let len = self.memoized_block_length(x);
        match self.config.max_block_length {
            Some(cap) => len.min(cap.max(1)),
            None => len,
        }
    }

    /// `⌈(1+β)^x⌉` through the memo (exact: the memo stores the very value
    /// [`block_length`] computes). Degenerate `x` beyond the memo range —
    /// unreachable through real block counts — falls back to the direct
    /// computation.
    fn memoized_block_length(&mut self, x: u64) -> u64 {
        const MEMO_LIMIT: u64 = 4_096;
        if x >= MEMO_LIMIT {
            return block_length(self.config.beta, x);
        }
        let index = x as usize;
        if index >= self.block_length_memo.len() {
            self.block_length_memo.resize(index + 1, 0);
        }
        if self.block_length_memo[index] == 0 {
            self.block_length_memo[index] = block_length(self.config.beta, x);
        }
        self.block_length_memo[index]
    }

    /// §V "Greedy choices": whether the greedy coin flip may be used for the
    /// next decision. Also records `y` the first time condition (a) fails.
    ///
    /// Reads the one-pass distribution digest — no per-decision probability
    /// vector is materialised.
    fn greedy_allowed(&mut self, summary: &crate::DistributionSummary) -> bool {
        let k = self.weights.len();
        if k < 2 {
            return false;
        }
        let near_uniform = summary.max - summary.min <= 1.0 / (k as f64 - 1.0);
        let l_plus = self.block_length_for(summary.most_probable);
        if near_uniform {
            return true;
        }
        if self.greedy_cutoff.is_none() {
            // Condition (a) just evaluated to false for the first time.
            self.greedy_cutoff = Some(l_plus);
        }
        match self.greedy_cutoff {
            Some(y) => l_plus < y,
            None => false,
        }
    }

    /// Periodic-reset condition of §V: the most probable network has both a
    /// sufficiently high probability and a long next block.
    fn periodic_reset_due(&mut self, summary: &crate::DistributionSummary) -> bool {
        if !self.config.features.reset {
            return false;
        }
        summary.max >= self.config.reset_probability_threshold
            && self.block_length_for(summary.most_probable)
                >= self.config.reset_block_length_threshold
    }

    fn do_reset(&mut self) {
        self.stats.resets += 1;
        self.stats_table.clear();
        self.explore_queue = self.available.clone();
        self.explore_shuffled = false;
        self.previous_block = None;
        self.pending_switch_back = None;
        self.drop_streak = 0;
        // Weights, the block counter and γ are deliberately kept: the reset is
        // minimal so the device "adapts without forsaking everything it has
        // learned".
    }

    fn start_new_block(&mut self, rng: &mut dyn RngCore) -> NetworkId {
        self.block_index += 1;
        self.current_gamma = self.config.gamma.value(self.block_index);
        // One pass over the cached distribution serves the reset check, the
        // greedy conditions and the greedy fallback below. A minimal reset
        // keeps the weights and γ, so the digest stays valid across it.
        let summary = self.weights.summary(self.current_gamma);

        if self.explore_queue.is_empty() {
            if let Some(summary) = &summary {
                if self.periodic_reset_due(summary) {
                    self.do_reset();
                }
            }
        }

        let (network, probability, kind) = if let Some(previous) = self.pending_switch_back.take() {
            self.stats.switch_backs += 1;
            (previous, 1.0, SelectionKind::SwitchBack)
        } else if !self.explore_queue.is_empty() {
            if !self.explore_shuffled {
                self.explore_queue.shuffle(rng);
                self.explore_shuffled = true;
            }
            let probability = 1.0 / self.explore_queue.len() as f64;
            let network = self
                .explore_queue
                .pop()
                .expect("checked non-empty explore queue");
            self.stats.explorations += 1;
            (network, probability, SelectionKind::Exploration)
        } else {
            let greedy_allowed = self.config.features.greedy
                && summary
                    .as_ref()
                    .is_some_and(|summary| self.greedy_allowed(summary));
            if greedy_allowed && rng.gen_bool(0.5) {
                // Deterministic pick of the empirically best network.
                let network = self
                    .stats_table
                    .best_average()
                    .filter(|n| self.available.contains(n))
                    .unwrap_or_else(|| {
                        summary
                            .as_ref()
                            .expect("non-empty weight table")
                            .most_probable
                    });
                self.stats.greedy_selections += 1;
                (network, 0.5, SelectionKind::Greedy)
            } else {
                let (network, p) = self.weights.sample(self.current_gamma, rng);
                let probability = if greedy_allowed { p / 2.0 } else { p };
                (network, probability, SelectionKind::Random)
            }
        };

        let length = self.block_length_for(network);
        self.stats_table.record_block(network);
        self.stats.blocks += 1;
        if let Some(last) = self.last_network {
            if last != network {
                self.stats.switches += 1;
            }
        }
        self.last_kind = kind;
        let gain_log = std::mem::take(&mut self.gain_log_pool);
        self.current_block = Some(BlockState::with_gain_log(
            network,
            length,
            probability,
            kind,
            gain_log,
        ));
        self.needs_decision = false;
        network
    }

    // ------------------------------------------------------------------
    // Feedback processing
    // ------------------------------------------------------------------

    /// Ends the current block: applies the EXP3 weight update with the
    /// importance-weighted block gain and archives the block for the
    /// switch-back rule.
    fn finish_current_block(&mut self) {
        if let Some(block) = self.current_block.take() {
            let estimated = block.accumulated_gain / block.probability.max(f64::MIN_POSITIVE);
            self.weights
                .multiplicative_update(block.network, self.current_gamma, estimated);
            // The outgoing previous block's gain log becomes the pool buffer
            // for the next block — block turnover allocates nothing.
            if let Some(retired) = self.previous_block.replace(block) {
                self.recycle_gain_log(retired.slot_gains);
            }
        }
        self.needs_decision = true;
    }

    /// Returns a retired gain log to the pool (cleared, capacity kept).
    fn recycle_gain_log(&mut self, mut log: Vec<f64>) {
        log.clear();
        self.gain_log_pool = log;
    }

    /// §V "Switch back": evaluates whether the first slot of the current block
    /// is disappointing enough to return to the previous network.
    fn switch_back_triggered(&self, current_gain: f64) -> Option<NetworkId> {
        if !self.config.features.switch_back {
            return None;
        }
        let current = self.current_block.as_ref()?;
        // Only the very first slot of a block can trigger a switch back, and a
        // switch-back block must not immediately switch back again
        // (ping-pong prevention).
        if current.elapsed != 1 || current.kind == SelectionKind::SwitchBack {
            return None;
        }
        let previous = self.previous_block.as_ref()?;
        if previous.network == current.network {
            return None;
        }
        if !self.available.contains(&previous.network) {
            return None;
        }
        let window = previous.recent_gains(self.config.switch_back_window);
        if window.is_empty() {
            return None;
        }
        let window_average = window.iter().sum::<f64>() / window.len() as f64;
        let last_slot = *window.last().expect("non-empty window");
        let higher_fraction =
            window.iter().filter(|&&g| g > current_gain).count() as f64 / window.len() as f64;
        let worse_than_average = current_gain < window_average;
        let worse_than_last = current_gain < last_slot;
        let majority_higher = higher_fraction > self.config.switch_back_majority;
        if worse_than_average || worse_than_last || majority_higher {
            Some(previous.network)
        } else {
            None
        }
    }

    /// Drop-triggered reset of §V: a sustained ≥15 % decline on the most-used
    /// network while connected to it.
    fn drop_reset_triggered(&mut self, observation: &Observation) -> bool {
        if !self.config.features.reset {
            return false;
        }
        let Some(most_used) = self.stats_table.most_used() else {
            return false;
        };
        if most_used != observation.network {
            self.drop_streak = 0;
            return false;
        }
        let Some(average) = self.stats_table.average_gain(most_used) else {
            return false;
        };
        if average <= 0.0 {
            return false;
        }
        let threshold = average * (1.0 - self.config.reset_drop_fraction);
        if observation.scaled_gain < threshold {
            self.drop_streak += 1;
        } else {
            self.drop_streak = 0;
        }
        self.drop_streak > self.config.reset_drop_slots
    }
}

impl Policy for SmartExp3 {
    fn state(&self) -> Option<crate::PolicyState> {
        Some(crate::PolicyState::SmartExp3(Box::new(self.clone())))
    }

    fn name(&self) -> &'static str {
        match (
            self.config.features.initial_exploration,
            self.config.features.greedy,
            self.config.features.switch_back,
            self.config.features.reset,
        ) {
            (_, _, true, true) => "Smart EXP3",
            (_, _, true, false) => "Smart EXP3 w/o Reset",
            (_, true, false, _) => "Hybrid Block EXP3",
            (false, false, false, false) => "Block EXP3",
            _ => "Smart EXP3 (custom)",
        }
    }

    fn choose(&mut self, _slot: SlotIndex, rng: &mut dyn RngCore) -> NetworkId {
        match &self.current_block {
            Some(block) if !self.needs_decision => {
                let network = block.network;
                self.last_kind = SelectionKind::Continuation;
                network
            }
            _ => self.start_new_block(rng),
        }
    }

    fn observe(&mut self, observation: &Observation, _rng: &mut dyn RngCore) {
        let Some(block) = self.current_block.as_mut() else {
            return;
        };
        if block.network != observation.network {
            // Feedback that does not correspond to the running block (can only
            // happen if the environment overrode the choice); ignore it.
            return;
        }
        // Only the trailing switch-back window of a block's gain log is ever
        // consulted, so recording is bounded: block memory stays constant even
        // as block lengths grow geometrically.
        block.record_slot_bounded(observation.scaled_gain, self.config.switch_back_window);
        self.stats_table
            .record_slot(observation.network, observation.scaled_gain);
        self.last_network = Some(observation.network);

        // Drop-triggered reset has priority: it ends the block and forces a
        // fresh exploration.
        if self.drop_reset_triggered(observation) {
            self.finish_current_block();
            self.do_reset();
            return;
        }

        if let Some(previous) = self.switch_back_triggered(observation.scaled_gain) {
            self.finish_current_block();
            self.pending_switch_back = Some(previous);
            return;
        }

        if self
            .current_block
            .as_ref()
            .map(BlockState::is_finished)
            .unwrap_or(false)
        {
            self.finish_current_block();
        }
    }

    fn observe_shared(&mut self, shared: &crate::SharedFeedback, _rng: &mut dyn RngCore) {
        // Co-Bandit folding, as in [`Exp3`](crate::Exp3): gossiped digests
        // nudge the weight table directly (confidence-scaled mean gain, no
        // importance weighting), while the block machinery — own-block gain
        // log, greedy statistics, switch-back windows — stays fed exclusively
        // by the device's own observations, so every blocking guarantee of
        // the paper is untouched. The shared_update guard drops corrupt
        // reports (non-finite or negative rates).
        for rate in shared.rates() {
            self.weights.shared_update(
                rate.network,
                self.current_gamma,
                rate.confidence() * rate.mean_gain(),
            );
        }
        self.stats.shared_observations += shared.len() as u64;
    }

    fn on_networks_changed(&mut self, available: &[NetworkId], _rng: &mut dyn RngCore) {
        let newly_discovered: Vec<NetworkId> = available
            .iter()
            .copied()
            .filter(|n| !self.available.contains(n))
            .collect();
        let removed: Vec<NetworkId> = self
            .available
            .iter()
            .copied()
            .filter(|n| !available.contains(n))
            .collect();

        // A vanished network that was very likely to be selected warrants a
        // reset (§III "Change in set of networks").
        let removed_high_probability = removed.iter().any(|&n| {
            self.weights.probability_of(n, self.current_gamma)
                >= self.config.reset_probability_threshold
        });

        for &n in &newly_discovered {
            self.weights.add_arm(n);
        }
        for &n in &removed {
            self.weights.remove_arm(n);
        }
        self.available = available.to_vec();
        self.stats_table.retain_networks(available);
        self.explore_queue.retain(|n| available.contains(n));
        if let Some(previous) = &self.previous_block {
            if !available.contains(&previous.network) {
                self.previous_block = None;
            }
        }
        if let Some(pending) = self.pending_switch_back {
            if !available.contains(&pending) {
                self.pending_switch_back = None;
            }
        }

        // If the network we are currently connected to is gone, the block is
        // abandoned (no weight update — the arm no longer exists).
        let current_network_gone = self
            .current_block
            .as_ref()
            .map(|b| !available.contains(&b.network))
            .unwrap_or(false);
        if current_network_gone {
            self.current_block = None;
            self.needs_decision = true;
        }

        if self.config.features.reset && (!newly_discovered.is_empty() || removed_high_probability)
        {
            self.do_reset();
            self.needs_decision = true;
        } else if self.config.features.initial_exploration && !newly_discovered.is_empty() {
            // Without the reset mechanism, still queue new networks for a
            // one-block visit so they are not ignored forever.
            self.explore_queue.extend(newly_discovered);
            self.explore_shuffled = false;
        }
    }

    fn probabilities(&self) -> Vec<(NetworkId, f64)> {
        let probs = self.weights.probabilities(self.current_gamma);
        self.weights.arms().iter().copied().zip(probs).collect()
    }

    fn probabilities_into(&self, out: &mut Vec<(NetworkId, f64)>) {
        self.weights.probability_pairs_into(self.current_gamma, out);
    }

    fn top_probabilities_into(&self, k: usize, out: &mut Vec<(NetworkId, f64)>) {
        self.weights
            .top_probabilities_into(self.current_gamma, k, out);
    }

    fn last_selection_kind(&self) -> SelectionKind {
        self.last_kind
    }

    fn stats(&self) -> PolicyStats {
        // The sampler counters live in the weight table; overlay them at
        // read time (same idiom as `Exp3::stats`).
        let mut stats = self.stats;
        stats.sampler_rebuilds = self.weights.sampler_rebuilds();
        stats.overlay_hits = self.weights.overlay_hits();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::probability_of;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn nets(k: u32) -> Vec<NetworkId> {
        (0..k).map(NetworkId).collect()
    }

    /// Drives a policy against a static environment where `best` always gives
    /// `high` and every other network gives `low`.
    fn run_static(
        policy: &mut SmartExp3,
        best: NetworkId,
        high: f64,
        low: f64,
        slots: usize,
        seed: u64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        for t in 0..slots {
            let chosen = policy.choose(t, &mut rng);
            let gain = if chosen == best { high } else { low };
            let obs = Observation::bandit(t, chosen, gain * 22.0, gain);
            policy.observe(&obs, &mut rng);
        }
    }

    /// Golden decision pin for the Fenwick-sampler configuration (the
    /// `Linear` default keeps its historical pins; each sampler config owns
    /// its trajectory).
    #[test]
    fn tree_sampler_decisions_are_pinned() {
        let config = SmartExp3Config {
            sampler: crate::SamplerStrategy::Tree,
            ..SmartExp3Config::default()
        };
        let mut policy = SmartExp3::new(nets(8), config).unwrap();
        let mut rng = StdRng::seed_from_u64(2026);
        let mut sequence = Vec::new();
        for slot in 0..24 {
            let chosen = policy.choose(slot, &mut rng);
            let gain = if chosen == NetworkId(5) { 0.9 } else { 0.2 };
            policy.observe(
                &Observation::bandit(slot, chosen, gain * 22.0, gain),
                &mut rng,
            );
            sequence.push(chosen.0);
        }
        assert_eq!(
            sequence,
            [7, 5, 1, 5, 5, 6, 5, 5, 2, 5, 5, 4, 5, 5, 0, 5, 5, 3, 5, 5, 6, 5, 5, 4],
            "tree-sampler SmartExp3 decision pin drifted"
        );
    }

    /// Golden decision pin for the alias-sampler configuration — Smart
    /// EXP3's block structure is exactly the static-weight phase the alias
    /// table amortises over, so this trajectory is the headline config's
    /// contract.
    #[test]
    fn alias_sampler_decisions_are_pinned() {
        let config = SmartExp3Config {
            sampler: crate::SamplerStrategy::Alias,
            ..SmartExp3Config::default()
        };
        let mut policy = SmartExp3::new(nets(8), config).unwrap();
        let mut rng = StdRng::seed_from_u64(2026);
        let mut sequence = Vec::new();
        for slot in 0..24 {
            let chosen = policy.choose(slot, &mut rng);
            let gain = if chosen == NetworkId(5) { 0.9 } else { 0.2 };
            policy.observe(
                &Observation::bandit(slot, chosen, gain * 22.0, gain),
                &mut rng,
            );
            sequence.push(chosen.0);
        }
        assert_eq!(
            sequence,
            [7, 5, 1, 5, 5, 6, 5, 5, 2, 5, 5, 4, 5, 5, 0, 5, 5, 3, 5, 5, 5, 5, 1, 5],
            "alias-sampler SmartExp3 decision pin drifted"
        );
        let stats = policy.stats();
        assert!(stats.sampler_rebuilds > 0, "alias table was never frozen");
    }

    #[test]
    fn explores_every_network_before_exploiting() {
        let mut policy = SmartExp3::with_defaults(nets(5)).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let mut seen = std::collections::BTreeSet::new();
        for t in 0..5 {
            let n = policy.choose(t, &mut rng);
            seen.insert(n);
            policy.observe(&Observation::bandit(t, n, 5.0, 0.2), &mut rng);
        }
        assert_eq!(
            seen.len(),
            5,
            "first k blocks must visit k distinct networks"
        );
        assert_eq!(policy.stats().explorations, 5);
    }

    #[test]
    fn concentrates_probability_on_the_best_network() {
        let mut policy = SmartExp3::with_defaults(nets(3)).unwrap();
        run_static(&mut policy, NetworkId(2), 0.9, 0.1, 600, 42);
        let p_best = probability_of(&policy.probabilities(), NetworkId(2));
        assert!(
            p_best > 0.5,
            "expected concentration on the best arm, got {p_best}"
        );
    }

    #[test]
    fn switches_far_less_than_slot_level_exp3() {
        let slots = 1000;
        let mut smart = SmartExp3::with_defaults(nets(3)).unwrap();
        run_static(&mut smart, NetworkId(2), 0.9, 0.2, slots, 7);

        let mut exp3 = crate::Exp3::new(nets(3), crate::Exp3Config::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for t in 0..slots {
            let chosen = exp3.choose(t, &mut rng);
            let gain = if chosen == NetworkId(2) { 0.9 } else { 0.2 };
            exp3.observe(&Observation::bandit(t, chosen, gain * 22.0, gain), &mut rng);
        }
        assert!(
            smart.stats().switches * 3 < exp3.stats().switches,
            "smart={} exp3={}",
            smart.stats().switches,
            exp3.stats().switches
        );
    }

    #[test]
    fn switch_count_respects_theorem_2_bound() {
        let slots = 1200usize;
        let config = SmartExp3Config::default();
        for seed in 0..5 {
            let mut policy = SmartExp3::with_defaults(nets(3)).unwrap();
            run_static(&mut policy, NetworkId(1), 0.8, 0.3, slots, seed);
            // Theorem 2 evaluated per observed reset period: with r resets the
            // run is split into ~r+1 periods of length τ = T/(r+1).
            let periods = policy.stats().resets as f64 + 1.0;
            let tau = slots as f64 / periods;
            let bound = crate::theory::switch_bound(3, config.beta, 1.0, tau, slots as f64);
            assert!(
                (policy.stats().switches as f64) < bound,
                "switches {} exceed Theorem 2 bound {}",
                policy.stats().switches,
                bound
            );
        }
    }

    #[test]
    fn block_lengths_grow_over_time() {
        let mut policy = SmartExp3::new(
            nets(3),
            SmartExp3Config::with_features(SmartExp3Features::smart_exp3_without_reset()),
        )
        .unwrap();
        run_static(&mut policy, NetworkId(0), 0.9, 0.1, 800, 3);
        let length = policy.current_block_length().unwrap_or(1);
        assert!(length > 2, "block length should have grown, got {length}");
    }

    #[test]
    fn switch_back_returns_to_previous_network() {
        // Environment: network 0 is great, network 1 is terrible. Whenever the
        // policy wanders to network 1, the first bad slot should trigger a
        // switch-back to network 0 on the following decision.
        let mut policy = SmartExp3::new(
            nets(2),
            SmartExp3Config::with_features(SmartExp3Features::smart_exp3_without_reset()),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let mut saw_switch_back = false;
        for t in 0..400 {
            let chosen = policy.choose(t, &mut rng);
            if policy.last_selection_kind() == SelectionKind::SwitchBack {
                saw_switch_back = true;
                assert_eq!(
                    chosen,
                    NetworkId(0),
                    "switch back should return to the good network"
                );
            }
            let gain = if chosen == NetworkId(0) { 0.9 } else { 0.05 };
            policy.observe(&Observation::bandit(t, chosen, gain * 22.0, gain), &mut rng);
        }
        assert!(saw_switch_back, "the switch-back mechanism never fired");
        assert!(policy.stats().switch_backs > 0);
    }

    #[test]
    fn no_two_consecutive_switch_backs() {
        let mut policy = SmartExp3::with_defaults(nets(3)).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let mut previous_was_switch_back = false;
        for t in 0..2000 {
            let chosen = policy.choose(t, &mut rng);
            let fresh = policy.last_selection_kind();
            if fresh == SelectionKind::SwitchBack {
                assert!(
                    !previous_was_switch_back,
                    "two switch-back blocks in a row at slot {t}"
                );
            }
            if fresh.is_fresh_decision() {
                previous_was_switch_back = fresh == SelectionKind::SwitchBack;
            }
            // Noisy environment to provoke frequent switch-backs.
            let base = match chosen {
                NetworkId(0) => 0.7,
                NetworkId(1) => 0.5,
                _ => 0.3,
            };
            let noise = (t % 7) as f64 * 0.02;
            policy.observe(
                &Observation::bandit(t, chosen, (base + noise) * 22.0, base + noise),
                &mut rng,
            );
        }
    }

    #[test]
    fn periodic_reset_eventually_fires() {
        let mut policy = SmartExp3::with_defaults(nets(3)).unwrap();
        // A long, stable run in which one network dominates: the probability
        // threshold and the block-length threshold will eventually both hold.
        run_static(&mut policy, NetworkId(2), 0.95, 0.05, 4000, 5);
        assert!(
            policy.stats().resets >= 1,
            "expected at least one periodic reset in a long stable run"
        );
    }

    #[test]
    fn without_reset_feature_no_reset_ever_happens() {
        let mut policy = SmartExp3::new(
            nets(3),
            SmartExp3Config::with_features(SmartExp3Features::smart_exp3_without_reset()),
        )
        .unwrap();
        run_static(&mut policy, NetworkId(2), 0.95, 0.05, 4000, 5);
        assert_eq!(policy.stats().resets, 0);
    }

    #[test]
    fn drop_in_quality_triggers_reset_and_adaptation() {
        let mut policy = SmartExp3::with_defaults(nets(2)).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        // Phase 1: network 0 is clearly better.
        for t in 0..400 {
            let chosen = policy.choose(t, &mut rng);
            let gain = if chosen == NetworkId(0) { 0.9 } else { 0.4 };
            policy.observe(&Observation::bandit(t, chosen, gain * 22.0, gain), &mut rng);
        }
        let resets_before = policy.stats().resets;
        // Phase 2: network 0 collapses; network 1 becomes the best.
        for t in 400..1200 {
            let chosen = policy.choose(t, &mut rng);
            let gain = if chosen == NetworkId(0) { 0.2 } else { 0.4 };
            policy.observe(&Observation::bandit(t, chosen, gain * 22.0, gain), &mut rng);
        }
        assert!(
            policy.stats().resets > resets_before,
            "a sustained quality drop should trigger a reset"
        );
        // After adapting, the policy should spend most of its time on network 1.
        let mut on_new_best = 0;
        for t in 1200..1400 {
            let chosen = policy.choose(t, &mut rng);
            if chosen == NetworkId(1) {
                on_new_best += 1;
            }
            let gain = if chosen == NetworkId(0) { 0.2 } else { 0.4 };
            policy.observe(&Observation::bandit(t, chosen, gain * 22.0, gain), &mut rng);
        }
        assert!(
            on_new_best > 100,
            "only {on_new_best}/200 slots on the new best network"
        );
    }

    #[test]
    fn newly_discovered_network_is_explored_and_triggers_reset() {
        let mut policy = SmartExp3::with_defaults(nets(2)).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        run_static(&mut policy, NetworkId(1), 0.6, 0.3, 300, 8);
        let resets_before = policy.stats().resets;
        policy.on_networks_changed(&[NetworkId(0), NetworkId(1), NetworkId(9)], &mut rng);
        assert!(policy.stats().resets > resets_before);
        let mut visited_new = false;
        for t in 300..320 {
            let chosen = policy.choose(t, &mut rng);
            if chosen == NetworkId(9) {
                visited_new = true;
            }
            let gain = if chosen == NetworkId(9) { 0.95 } else { 0.4 };
            policy.observe(&Observation::bandit(t, chosen, gain * 22.0, gain), &mut rng);
        }
        assert!(
            visited_new,
            "the new network should be explored shortly after discovery"
        );
    }

    #[test]
    fn losing_the_current_network_forces_a_new_decision() {
        let mut policy = SmartExp3::with_defaults(nets(3)).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        run_static(&mut policy, NetworkId(2), 0.9, 0.1, 200, 17);
        // Remove whichever network the policy is currently on.
        let current = policy.choose(200, &mut rng);
        let remaining: Vec<NetworkId> = nets(3).into_iter().filter(|&n| n != current).collect();
        policy.on_networks_changed(&remaining, &mut rng);
        let next = policy.choose(201, &mut rng);
        assert!(remaining.contains(&next));
        let sum: f64 = policy.probabilities().iter().map(|(_, p)| p).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn probabilities_remain_a_distribution_throughout() {
        let mut policy = SmartExp3::with_defaults(nets(4)).unwrap();
        let mut rng = StdRng::seed_from_u64(33);
        for t in 0..1500 {
            let chosen = policy.choose(t, &mut rng);
            let gain = 0.2 + 0.6 * ((chosen.index() + t) % 3) as f64 / 3.0;
            policy.observe(&Observation::bandit(t, chosen, gain * 22.0, gain), &mut rng);
            let probs = policy.probabilities();
            let sum: f64 = probs.iter().map(|(_, p)| p).sum();
            assert!(
                (sum - 1.0).abs() < 1e-6,
                "probabilities drifted at slot {t}"
            );
            assert!(probs.iter().all(|(_, p)| *p >= 0.0 && *p <= 1.0 + 1e-9));
        }
    }

    #[test]
    fn shared_feedback_reaches_the_weights_but_not_the_block_machinery() {
        use crate::SharedFeedback;
        let mut policy = SmartExp3::with_defaults(nets(3)).unwrap();
        run_static(&mut policy, NetworkId(0), 0.5, 0.4, 60, 4);
        let mut rng = StdRng::seed_from_u64(4);
        let blocks_before = policy.stats().blocks;
        let p_before = probability_of(&policy.probabilities(), NetworkId(2));
        let mut digest = SharedFeedback::new(0.5);
        for _ in 0..40 {
            digest.decay();
            digest.record(NetworkId(2), 0.95);
            policy.observe_shared(&digest, &mut rng);
        }
        let p_after = probability_of(&policy.probabilities(), NetworkId(2));
        assert!(
            p_after > p_before,
            "gossip should raise network 2: {p_before} -> {p_after}"
        );
        assert_eq!(
            policy.stats().blocks,
            blocks_before,
            "gossip must not start or finish blocks"
        );
        assert_eq!(policy.stats().shared_observations, 40);
        let sum: f64 = policy.probabilities().iter().map(|(_, p)| p).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn block_exp3_variant_never_uses_greedy_or_switch_back() {
        let mut policy = SmartExp3::new(
            nets(3),
            SmartExp3Config::with_features(SmartExp3Features::block_exp3()),
        )
        .unwrap();
        run_static(&mut policy, NetworkId(0), 0.9, 0.1, 1000, 2);
        let stats = policy.stats();
        assert_eq!(stats.greedy_selections, 0);
        assert_eq!(stats.switch_backs, 0);
        assert_eq!(stats.resets, 0);
        assert_eq!(stats.explorations, 0);
        assert_eq!(policy.name(), "Block EXP3");
    }

    #[test]
    fn hybrid_variant_uses_greedy_but_not_switch_back() {
        let mut policy = SmartExp3::new(
            nets(3),
            SmartExp3Config::with_features(SmartExp3Features::hybrid_block_exp3()),
        )
        .unwrap();
        run_static(&mut policy, NetworkId(0), 0.9, 0.1, 1000, 2);
        let stats = policy.stats();
        assert!(stats.greedy_selections > 0);
        assert_eq!(stats.switch_backs, 0);
        assert_eq!(policy.name(), "Hybrid Block EXP3");
    }

    #[test]
    fn variant_names_are_distinct() {
        let names: Vec<&str> = [
            SmartExp3Features::block_exp3(),
            SmartExp3Features::hybrid_block_exp3(),
            SmartExp3Features::smart_exp3_without_reset(),
            SmartExp3Features::smart_exp3(),
        ]
        .into_iter()
        .map(|f| {
            SmartExp3::new(nets(2), SmartExp3Config::with_features(f))
                .unwrap()
                .name()
        })
        .collect();
        let unique: std::collections::BTreeSet<&str> = names.iter().copied().collect();
        assert_eq!(unique.len(), 4, "variant names collide: {names:?}");
    }
}
