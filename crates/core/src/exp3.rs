//! Textbook EXP3 (Auer, Cesa-Bianchi, Freund, Schapire 2002), operating at the
//! granularity of a single time slot.
//!
//! This is the baseline whose practical shortcomings (frequent switching, slow
//! convergence, no adaptation mechanism) motivate Smart EXP3. It keeps one
//! exponential weight per network and, every slot, samples a network from the
//! γ-mixed distribution, then applies the importance-weighted multiplicative
//! update to the chosen network only.

use crate::error::{check_networks, check_unit_interval};
use crate::policy::{Observation, Policy, PolicyStats, SelectionKind};
use crate::{ConfigError, GammaSchedule, NetworkId, SamplerStrategy, SlotIndex, WeightTable};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Configuration of the [`Exp3`] baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Exp3Config {
    /// Exploration-rate schedule, evaluated at the slot index (1-based).
    pub gamma: GammaSchedule,
    /// How the per-slot draw inverts the CDF (see [`SamplerStrategy`]).
    /// Golden decision pins are scoped to this choice; the default `Linear`
    /// reproduces the historical trajectories bit-exactly.
    pub sampler: SamplerStrategy,
}

impl Exp3Config {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ParameterOutOfRange`] if a fixed γ lies outside
    /// `(0, 1]`.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if let GammaSchedule::Fixed(g) = self.gamma {
            check_unit_interval("gamma", g)?;
        }
        Ok(())
    }
}

/// The EXP3 adversarial-bandit algorithm, one decision per slot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Exp3 {
    config: Exp3Config,
    weights: WeightTable,
    decisions: usize,
    current: Option<NetworkId>,
    current_probability: f64,
    current_gamma: f64,
    last_kind: SelectionKind,
    stats: PolicyStats,
}

impl Exp3 {
    /// Creates an EXP3 policy over `networks`.
    ///
    /// # Errors
    ///
    /// Returns an error if `networks` is empty or contains duplicates, or if
    /// the configuration is invalid.
    pub fn new(networks: Vec<NetworkId>, config: Exp3Config) -> Result<Self, ConfigError> {
        check_networks(&networks)?;
        config.validate()?;
        Ok(Exp3 {
            config,
            weights: WeightTable::uniform_with_strategy(&networks, config.sampler),
            decisions: 0,
            current: None,
            current_probability: 1.0,
            current_gamma: config.gamma.value(1),
            last_kind: SelectionKind::Random,
            stats: PolicyStats::default(),
        })
    }

    /// The γ used for the most recent decision.
    #[must_use]
    pub fn current_gamma(&self) -> f64 {
        self.current_gamma
    }

    /// Read access to the weight table (useful for inspection in tests).
    #[must_use]
    pub fn weights(&self) -> &WeightTable {
        &self.weights
    }
}

impl Policy for Exp3 {
    fn state(&self) -> Option<crate::PolicyState> {
        Some(crate::PolicyState::Exp3(Box::new(self.clone())))
    }

    fn name(&self) -> &'static str {
        "EXP3"
    }

    fn choose(&mut self, _slot: SlotIndex, rng: &mut dyn RngCore) -> NetworkId {
        self.decisions += 1;
        self.current_gamma = self.config.gamma.value(self.decisions);
        let (network, probability) = self.weights.sample(self.current_gamma, rng);
        if let Some(previous) = self.current {
            if previous != network {
                self.stats.switches += 1;
            }
        }
        self.stats.blocks += 1;
        self.current = Some(network);
        self.current_probability = probability;
        self.last_kind = SelectionKind::Random;
        network
    }

    fn observe(&mut self, observation: &Observation, _rng: &mut dyn RngCore) {
        if Some(observation.network) != self.current {
            // Feedback for a network we did not (any longer) select — ignore.
            return;
        }
        let estimated = observation.scaled_gain / self.current_probability.max(f64::MIN_POSITIVE);
        self.weights
            .multiplicative_update(observation.network, self.current_gamma, estimated);
    }

    fn observe_shared(&mut self, shared: &crate::SharedFeedback, _rng: &mut dyn RngCore) {
        // Co-Bandit folding: every gossiped digest entry nudges its arm by a
        // confidence-scaled mean gain — *without* importance weighting (the
        // crowd's estimate is approximate full information, not a 1/p-boosted
        // bandit sample). The shared_update guard drops corrupt reports.
        for rate in shared.rates() {
            self.weights.shared_update(
                rate.network,
                self.current_gamma,
                rate.confidence() * rate.mean_gain(),
            );
        }
        self.stats.shared_observations += shared.len() as u64;
    }

    fn on_networks_changed(&mut self, available: &[NetworkId], _rng: &mut dyn RngCore) {
        for &n in available {
            self.weights.add_arm(n);
        }
        let to_remove: Vec<NetworkId> = self
            .weights
            .arms()
            .iter()
            .copied()
            .filter(|n| !available.contains(n))
            .collect();
        for n in to_remove {
            self.weights.remove_arm(n);
        }
        if let Some(current) = self.current {
            if !available.contains(&current) {
                self.current = None;
            }
        }
    }

    fn probabilities(&self) -> Vec<(NetworkId, f64)> {
        let probs = self.weights.probabilities(self.current_gamma);
        self.weights.arms().iter().copied().zip(probs).collect()
    }

    fn probabilities_into(&self, out: &mut Vec<(NetworkId, f64)>) {
        self.weights.probability_pairs_into(self.current_gamma, out);
    }

    fn top_probabilities_into(&self, k: usize, out: &mut Vec<(NetworkId, f64)>) {
        self.weights
            .top_probabilities_into(self.current_gamma, k, out);
    }

    fn last_selection_kind(&self) -> SelectionKind {
        self.last_kind
    }

    fn stats(&self) -> PolicyStats {
        // The sampler counters live in the weight table (they are its
        // internal cost signals); overlay them at read time so the policy's
        // own counter struct never has to mirror table state.
        let mut stats = self.stats;
        stats.sampler_rebuilds = self.weights.sampler_rebuilds();
        stats.overlay_hits = self.weights.overlay_hits();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::probability_of;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn nets(k: u32) -> Vec<NetworkId> {
        (0..k).map(NetworkId).collect()
    }

    fn run_slots(policy: &mut Exp3, best: NetworkId, slots: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for t in 0..slots {
            let chosen = policy.choose(t, &mut rng);
            let gain = if chosen == best { 0.9 } else { 0.1 };
            let obs = Observation::bandit(t, chosen, gain * 22.0, gain);
            policy.observe(&obs, &mut rng);
        }
    }

    /// Golden decision pin for the Fenwick-sampler configuration: the
    /// chosen-arm trajectory from a fixed seed is part of this config's
    /// contract (pins are scoped per policy configuration — the `Linear`
    /// default keeps its own pins via the environment fingerprint tests).
    #[test]
    fn tree_sampler_decisions_are_pinned() {
        let config = Exp3Config {
            sampler: SamplerStrategy::Tree,
            ..Exp3Config::default()
        };
        let mut policy = Exp3::new(nets(8), config).unwrap();
        let mut rng = StdRng::seed_from_u64(2026);
        let mut sequence = Vec::new();
        for slot in 0..24 {
            let chosen = policy.choose(slot, &mut rng);
            let gain = if chosen == NetworkId(5) { 0.9 } else { 0.2 };
            policy.observe(
                &Observation::bandit(slot, chosen, gain * 22.0, gain),
                &mut rng,
            );
            sequence.push(chosen.0);
        }
        assert_eq!(
            sequence,
            [3, 4, 5, 6, 0, 7, 6, 7, 6, 4, 7, 5, 7, 7, 4, 2, 5, 4, 1, 2, 2, 2, 6, 0],
            "tree-sampler Exp3 decision pin drifted"
        );
    }

    /// Golden decision pin for the alias-sampler configuration, captured
    /// from the same fixed-seed harness as the tree pin. The alias decode
    /// spends the single draw's bits differently, so its trajectory is its
    /// own contract.
    #[test]
    fn alias_sampler_decisions_are_pinned() {
        let config = Exp3Config {
            sampler: SamplerStrategy::Alias,
            ..Exp3Config::default()
        };
        let mut policy = Exp3::new(nets(8), config).unwrap();
        let mut rng = StdRng::seed_from_u64(2026);
        let mut sequence = Vec::new();
        for slot in 0..24 {
            let chosen = policy.choose(slot, &mut rng);
            let gain = if chosen == NetworkId(5) { 0.9 } else { 0.2 };
            policy.observe(
                &Observation::bandit(slot, chosen, gain * 22.0, gain),
                &mut rng,
            );
            sequence.push(chosen.0);
        }
        assert_eq!(
            sequence,
            [3, 6, 0, 4, 0, 6, 4, 6, 4, 3, 6, 0, 7, 7, 6, 4, 2, 0, 3, 5, 4, 5, 6, 2],
            "alias-sampler Exp3 decision pin drifted"
        );
        let stats = policy.stats();
        assert!(stats.sampler_rebuilds > 0, "alias table was never frozen");
    }

    #[test]
    fn construction_rejects_bad_inputs() {
        assert!(Exp3::new(vec![], Exp3Config::default()).is_err());
        let bad = Exp3Config {
            gamma: GammaSchedule::Fixed(0.0),
            ..Exp3Config::default()
        };
        assert!(Exp3::new(nets(2), bad).is_err());
    }

    #[test]
    fn learns_the_best_network() {
        let mut policy = Exp3::new(nets(3), Exp3Config::default()).unwrap();
        run_slots(&mut policy, NetworkId(2), 800, 11);
        let probs = policy.probabilities();
        let best = probability_of(&probs, NetworkId(2));
        assert!(best > 0.5, "best-network probability was {best}");
    }

    #[test]
    fn probabilities_always_sum_to_one() {
        let mut policy = Exp3::new(nets(4), Exp3Config::default()).unwrap();
        run_slots(&mut policy, NetworkId(0), 200, 3);
        let sum: f64 = policy.probabilities().iter().map(|(_, p)| p).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn switches_are_counted() {
        let mut policy = Exp3::new(nets(3), Exp3Config::default()).unwrap();
        run_slots(&mut policy, NetworkId(1), 100, 5);
        let stats = policy.stats();
        assert_eq!(stats.blocks, 100);
        assert!(
            stats.switches > 0,
            "EXP3 with decaying gamma should switch early on"
        );
    }

    #[test]
    fn handles_network_set_changes() {
        let mut policy = Exp3::new(nets(3), Exp3Config::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        run_slots(&mut policy, NetworkId(2), 50, 1);
        policy.on_networks_changed(&[NetworkId(2), NetworkId(3)], &mut rng);
        let probs = policy.probabilities();
        assert_eq!(probs.len(), 2);
        assert!(probs.iter().any(|(n, _)| *n == NetworkId(3)));
        // Still able to make decisions afterwards.
        let chosen = policy.choose(51, &mut rng);
        assert!(chosen == NetworkId(2) || chosen == NetworkId(3));
    }

    #[test]
    fn shared_feedback_shifts_weight_without_own_observations() {
        use crate::SharedFeedback;
        let mut policy = Exp3::new(nets(3), Exp3Config::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let uniform = probability_of(&policy.probabilities(), NetworkId(2));
        // Neighbours keep reporting that network 2 is excellent; the policy
        // never tries it itself.
        let mut digest = SharedFeedback::new(0.5);
        for slot in 0..60 {
            let chosen = policy.choose(slot, &mut rng);
            let gain = 0.1;
            policy.observe(
                &Observation::bandit(slot, chosen, gain * 22.0, gain),
                &mut rng,
            );
            digest.decay();
            digest.record(NetworkId(2), 0.95);
            policy.observe_shared(&digest, &mut rng);
        }
        let p_best = probability_of(&policy.probabilities(), NetworkId(2));
        assert!(
            p_best > uniform,
            "gossip about network 2 should raise its probability: {p_best}"
        );
        assert_eq!(policy.stats().shared_observations, 60);
    }

    #[test]
    fn hostile_shared_feedback_is_rejected() {
        use crate::SharedFeedback;
        let mut policy = Exp3::new(nets(3), Exp3Config::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let chosen = policy.choose(0, &mut rng);
        policy.observe(&Observation::bandit(0, chosen, 11.0, 0.5), &mut rng);
        let before = policy.probabilities();
        let mut digest = SharedFeedback::new(0.5);
        digest.record(NetworkId(0), f64::NAN);
        digest.record(NetworkId(1), f64::INFINITY);
        digest.record(NetworkId(2), -4.0);
        policy.observe_shared(&digest, &mut rng);
        assert_eq!(policy.probabilities(), before);
    }

    #[test]
    fn ignores_feedback_for_stale_network() {
        let mut policy = Exp3::new(nets(2), Exp3Config::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let chosen = policy.choose(0, &mut rng);
        let other = if chosen == NetworkId(0) {
            NetworkId(1)
        } else {
            NetworkId(0)
        };
        let before = policy.probabilities();
        policy.observe(&Observation::bandit(0, other, 22.0, 1.0), &mut rng);
        assert_eq!(before, policy.probabilities());
    }
}
