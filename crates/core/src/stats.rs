//! Per-network gain statistics used by greedy choices and reset detection.

use crate::NetworkId;
use serde::{Deserialize, Serialize};

/// Running statistics about the gains observed from each network.
///
/// Smart EXP3 uses these for its greedy choices ("the network from which the
/// highest average gain has been observed"), for its reset heuristic (a
/// sustained ≥15 % drop on the most-used network), and the [`Greedy`]
/// baseline uses them as its whole decision rule.
///
/// These counters sit on the per-slot hot path of every session a fleet
/// engine hosts, so they are stored as a flat vector sorted by network id
/// (one contiguous allocation, binary-searched) rather than a tree map; with
/// the handful of networks a device ever sees, every lookup touches a single
/// cache line. Iteration order (ascending id) and the serialized shape (a
/// sequence of `[id, entry]` pairs) are identical to the previous
/// `BTreeMap`-backed representation.
///
/// [`Greedy`]: crate::Greedy
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// `(network, entry)` pairs sorted by network id.
    per_network: Vec<(NetworkId, PerNetwork)>,
    /// Running `(network, slots)` of the most-used network — the reset
    /// heuristic polls it every slot, and slot counts only ever grow by one,
    /// so the argmax is maintained incrementally instead of rescanned.
    /// Matches [`most_used`](Self::most_used)'s historical tie-break (the
    /// highest id among networks tied for the most slots) exactly.
    most_used_cache: Option<(NetworkId, u64)>,
}

#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct PerNetwork {
    slots: u64,
    blocks: u64,
    total_gain: f64,
}

impl NetworkStats {
    /// Creates an empty statistics table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Mutable entry for `network`, inserted (default) if absent.
    fn entry_mut(&mut self, network: NetworkId) -> &mut PerNetwork {
        match self.per_network.binary_search_by_key(&network, |&(n, _)| n) {
            Ok(i) => &mut self.per_network[i].1,
            Err(i) => {
                self.per_network.insert(i, (network, PerNetwork::default()));
                &mut self.per_network[i].1
            }
        }
    }

    /// Shared entry for `network`, if present.
    fn entry(&self, network: NetworkId) -> Option<&PerNetwork> {
        self.per_network
            .binary_search_by_key(&network, |&(n, _)| n)
            .ok()
            .map(|i| &self.per_network[i].1)
    }

    /// Records one slot's scaled gain on `network`.
    pub fn record_slot(&mut self, network: NetworkId, scaled_gain: f64) {
        let entry = self.entry_mut(network);
        entry.slots += 1;
        entry.total_gain += scaled_gain;
        let slots = entry.slots;
        // Incremental argmax: a single increment can only promote `network`.
        // The tie rule (higher id wins) mirrors the rescan's last-wins
        // iteration over ascending ids.
        match self.most_used_cache {
            Some((cached, cached_slots)) if cached == network => {
                self.most_used_cache = Some((network, slots));
                debug_assert_eq!(slots, cached_slots + 1);
            }
            Some((cached, cached_slots))
                if slots > cached_slots || (slots == cached_slots && network > cached) =>
            {
                self.most_used_cache = Some((network, slots));
            }
            Some(_) => {}
            None => self.most_used_cache = Some((network, slots)),
        }
    }

    /// Records that a block was started on `network`.
    pub fn record_block(&mut self, network: NetworkId) {
        self.entry_mut(network).blocks += 1;
    }

    /// Number of blocks started on `network`.
    #[must_use]
    pub fn blocks(&self, network: NetworkId) -> u64 {
        self.entry(network).map_or(0, |e| e.blocks)
    }

    /// Number of slots spent on `network`.
    #[must_use]
    pub fn slots(&self, network: NetworkId) -> u64 {
        self.entry(network).map_or(0, |e| e.slots)
    }

    /// Average scaled gain per slot on `network` (`None` if never visited).
    #[must_use]
    pub fn average_gain(&self, network: NetworkId) -> Option<f64> {
        self.entry(network).and_then(|e| {
            if e.slots == 0 {
                None
            } else {
                Some(e.total_gain / e.slots as f64)
            }
        })
    }

    /// The network with the highest average gain, breaking ties towards the
    /// lowest identifier. `None` when nothing has been observed yet.
    #[must_use]
    pub fn best_average(&self) -> Option<NetworkId> {
        self.per_network
            .iter()
            .filter(|(_, e)| e.slots > 0)
            .map(|&(n, ref e)| (n, e.total_gain / e.slots as f64))
            .fold(
                None,
                |best: Option<(NetworkId, f64)>, (n, avg)| match best {
                    Some((_, best_avg)) if best_avg >= avg => best,
                    _ => Some((n, avg)),
                },
            )
            .map(|(n, _)| n)
    }

    /// The network on which the most slots have been spent (the `i_max` of
    /// §V), if any observation was made. O(1): read from the incrementally
    /// maintained cache.
    #[must_use]
    pub fn most_used(&self) -> Option<NetworkId> {
        self.most_used_cache.map(|(n, _)| n)
    }

    /// Recomputes the most-used cache from scratch (after bulk mutations).
    fn rescan_most_used(&mut self) {
        self.most_used_cache = self
            .per_network
            .iter()
            .filter(|(_, e)| e.slots > 0)
            .max_by_key(|(_, e)| e.slots)
            .map(|&(n, ref e)| (n, e.slots));
    }

    /// Folds another statistics table into this one, summing slot counts,
    /// block counts and gain totals per network. Used by the fleet engine to
    /// combine per-session (or per-shard) tables into fleet-wide aggregates;
    /// merging is associative, so any grouping yields the same table, and the
    /// fleet engine always merges in session order so the floating-point gain
    /// totals are reproducible too.
    pub fn merge(&mut self, other: &NetworkStats) {
        for &(network, ref stats) in &other.per_network {
            let entry = self.entry_mut(network);
            entry.slots += stats.slots;
            entry.blocks += stats.blocks;
            entry.total_gain += stats.total_gain;
        }
        self.rescan_most_used();
    }

    /// Total slots recorded across all networks.
    #[must_use]
    pub fn total_slots(&self) -> u64 {
        self.per_network.iter().map(|(_, e)| e.slots).sum()
    }

    /// Total gain recorded across all networks.
    #[must_use]
    pub fn total_gain(&self) -> f64 {
        self.per_network.iter().map(|(_, e)| e.total_gain).sum()
    }

    /// The networks with at least one recorded slot or block, ascending.
    pub fn networks(&self) -> impl Iterator<Item = NetworkId> + '_ {
        self.per_network.iter().map(|&(n, _)| n)
    }

    /// Forgets everything (used by Smart EXP3's minimal reset, which clears
    /// the data backing greedy decisions while *keeping* the EXP3 weights).
    pub fn clear(&mut self) {
        self.per_network.clear();
        self.most_used_cache = None;
    }

    /// Drops statistics about networks not in `available` (after mobility).
    pub fn retain_networks(&mut self, available: &[NetworkId]) {
        self.per_network.retain(|(n, _)| available.contains(n));
        self.rescan_most_used();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_and_best_network() {
        let mut stats = NetworkStats::new();
        stats.record_slot(NetworkId(0), 0.2);
        stats.record_slot(NetworkId(0), 0.4);
        stats.record_slot(NetworkId(1), 0.9);
        let avg = stats.average_gain(NetworkId(0)).unwrap();
        assert!((avg - 0.3).abs() < 1e-12);
        assert_eq!(stats.best_average(), Some(NetworkId(1)));
        assert_eq!(stats.average_gain(NetworkId(9)), None);
    }

    #[test]
    fn most_used_counts_slots_not_gain() {
        let mut stats = NetworkStats::new();
        for _ in 0..5 {
            stats.record_slot(NetworkId(2), 0.1);
        }
        stats.record_slot(NetworkId(3), 1.0);
        assert_eq!(stats.most_used(), Some(NetworkId(2)));
    }

    #[test]
    fn tie_break_prefers_lower_id() {
        let mut stats = NetworkStats::new();
        stats.record_slot(NetworkId(5), 0.5);
        stats.record_slot(NetworkId(1), 0.5);
        assert_eq!(stats.best_average(), Some(NetworkId(1)));
    }

    #[test]
    fn clear_and_retain() {
        let mut stats = NetworkStats::new();
        stats.record_slot(NetworkId(0), 0.5);
        stats.record_slot(NetworkId(1), 0.5);
        stats.record_block(NetworkId(1));
        stats.retain_networks(&[NetworkId(1)]);
        assert_eq!(stats.average_gain(NetworkId(0)), None);
        assert_eq!(stats.blocks(NetworkId(1)), 1);
        stats.clear();
        assert_eq!(stats.best_average(), None);
    }

    #[test]
    fn empty_stats_have_no_best() {
        let stats = NetworkStats::new();
        assert_eq!(stats.best_average(), None);
        assert_eq!(stats.most_used(), None);
    }

    #[test]
    fn incremental_most_used_matches_a_rescan() {
        // The O(1) cache must agree with a from-scratch argmax (highest id
        // wins ties) after every kind of mutation.
        let rescan = |stats: &NetworkStats| -> Option<NetworkId> {
            let mut best: Option<(NetworkId, u64)> = None;
            for n in stats.networks() {
                let slots = stats.slots(n);
                if slots > 0 && best.is_none_or(|(_, s)| slots >= s) {
                    best = Some((n, slots));
                }
            }
            best.map(|(n, _)| n)
        };
        let mut stats = NetworkStats::new();
        let ids = [3u32, 0, 7, 0, 3, 3, 7, 7, 1, 7, 0, 0, 0];
        for (step, &id) in ids.iter().enumerate() {
            stats.record_slot(NetworkId(id), 0.5);
            assert_eq!(stats.most_used(), rescan(&stats), "step {step}");
        }
        stats.retain_networks(&[NetworkId(1), NetworkId(3)]);
        assert_eq!(stats.most_used(), rescan(&stats));
        let mut other = NetworkStats::new();
        for _ in 0..9 {
            other.record_slot(NetworkId(1), 0.2);
        }
        stats.merge(&other);
        assert_eq!(stats.most_used(), rescan(&stats));
        assert_eq!(stats.most_used(), Some(NetworkId(1)));
        stats.clear();
        assert_eq!(stats.most_used(), None);
    }
}
