//! Per-network gain statistics used by greedy choices and reset detection.

use crate::NetworkId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Running statistics about the gains observed from each network.
///
/// Smart EXP3 uses these for its greedy choices ("the network from which the
/// highest average gain has been observed"), for its reset heuristic (a
/// sustained ≥15 % drop on the most-used network), and the [`Greedy`]
/// baseline uses them as its whole decision rule.
///
/// [`Greedy`]: crate::Greedy
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NetworkStats {
    per_network: BTreeMap<NetworkId, PerNetwork>,
}

#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct PerNetwork {
    slots: u64,
    blocks: u64,
    total_gain: f64,
}

impl NetworkStats {
    /// Creates an empty statistics table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one slot's scaled gain on `network`.
    pub fn record_slot(&mut self, network: NetworkId, scaled_gain: f64) {
        let entry = self.per_network.entry(network).or_default();
        entry.slots += 1;
        entry.total_gain += scaled_gain;
    }

    /// Records that a block was started on `network`.
    pub fn record_block(&mut self, network: NetworkId) {
        self.per_network.entry(network).or_default().blocks += 1;
    }

    /// Number of blocks started on `network`.
    #[must_use]
    pub fn blocks(&self, network: NetworkId) -> u64 {
        self.per_network.get(&network).map_or(0, |e| e.blocks)
    }

    /// Number of slots spent on `network`.
    #[must_use]
    pub fn slots(&self, network: NetworkId) -> u64 {
        self.per_network.get(&network).map_or(0, |e| e.slots)
    }

    /// Average scaled gain per slot on `network` (`None` if never visited).
    #[must_use]
    pub fn average_gain(&self, network: NetworkId) -> Option<f64> {
        self.per_network.get(&network).and_then(|e| {
            if e.slots == 0 {
                None
            } else {
                Some(e.total_gain / e.slots as f64)
            }
        })
    }

    /// The network with the highest average gain, breaking ties towards the
    /// lowest identifier. `None` when nothing has been observed yet.
    #[must_use]
    pub fn best_average(&self) -> Option<NetworkId> {
        self.per_network
            .iter()
            .filter(|(_, e)| e.slots > 0)
            .map(|(&n, e)| (n, e.total_gain / e.slots as f64))
            .fold(
                None,
                |best: Option<(NetworkId, f64)>, (n, avg)| match best {
                    Some((_, best_avg)) if best_avg >= avg => best,
                    _ => Some((n, avg)),
                },
            )
            .map(|(n, _)| n)
    }

    /// The network on which the most slots have been spent (the `i_max` of
    /// §V), if any observation was made.
    #[must_use]
    pub fn most_used(&self) -> Option<NetworkId> {
        self.per_network
            .iter()
            .filter(|(_, e)| e.slots > 0)
            .max_by_key(|(_, e)| e.slots)
            .map(|(&n, _)| n)
    }

    /// Folds another statistics table into this one, summing slot counts,
    /// block counts and gain totals per network. Used by the fleet engine to
    /// combine per-session (or per-shard) tables into fleet-wide aggregates;
    /// merging is associative, so any grouping yields the same table, and the
    /// fleet engine always merges in session order so the floating-point gain
    /// totals are reproducible too.
    pub fn merge(&mut self, other: &NetworkStats) {
        for (&network, stats) in &other.per_network {
            let entry = self.per_network.entry(network).or_default();
            entry.slots += stats.slots;
            entry.blocks += stats.blocks;
            entry.total_gain += stats.total_gain;
        }
    }

    /// Total slots recorded across all networks.
    #[must_use]
    pub fn total_slots(&self) -> u64 {
        self.per_network.values().map(|e| e.slots).sum()
    }

    /// Total gain recorded across all networks.
    #[must_use]
    pub fn total_gain(&self) -> f64 {
        self.per_network.values().map(|e| e.total_gain).sum()
    }

    /// The networks with at least one recorded slot or block, ascending.
    pub fn networks(&self) -> impl Iterator<Item = NetworkId> + '_ {
        self.per_network.keys().copied()
    }

    /// Forgets everything (used by Smart EXP3's minimal reset, which clears
    /// the data backing greedy decisions while *keeping* the EXP3 weights).
    pub fn clear(&mut self) {
        self.per_network.clear();
    }

    /// Drops statistics about networks not in `available` (after mobility).
    pub fn retain_networks(&mut self, available: &[NetworkId]) {
        self.per_network.retain(|n, _| available.contains(n));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_and_best_network() {
        let mut stats = NetworkStats::new();
        stats.record_slot(NetworkId(0), 0.2);
        stats.record_slot(NetworkId(0), 0.4);
        stats.record_slot(NetworkId(1), 0.9);
        let avg = stats.average_gain(NetworkId(0)).unwrap();
        assert!((avg - 0.3).abs() < 1e-12);
        assert_eq!(stats.best_average(), Some(NetworkId(1)));
        assert_eq!(stats.average_gain(NetworkId(9)), None);
    }

    #[test]
    fn most_used_counts_slots_not_gain() {
        let mut stats = NetworkStats::new();
        for _ in 0..5 {
            stats.record_slot(NetworkId(2), 0.1);
        }
        stats.record_slot(NetworkId(3), 1.0);
        assert_eq!(stats.most_used(), Some(NetworkId(2)));
    }

    #[test]
    fn tie_break_prefers_lower_id() {
        let mut stats = NetworkStats::new();
        stats.record_slot(NetworkId(5), 0.5);
        stats.record_slot(NetworkId(1), 0.5);
        assert_eq!(stats.best_average(), Some(NetworkId(1)));
    }

    #[test]
    fn clear_and_retain() {
        let mut stats = NetworkStats::new();
        stats.record_slot(NetworkId(0), 0.5);
        stats.record_slot(NetworkId(1), 0.5);
        stats.record_block(NetworkId(1));
        stats.retain_networks(&[NetworkId(1)]);
        assert_eq!(stats.average_gain(NetworkId(0)), None);
        assert_eq!(stats.blocks(NetworkId(1)), 1);
        stats.clear();
        assert_eq!(stats.best_average(), None);
    }

    #[test]
    fn empty_stats_have_no_best() {
        let stats = NetworkStats::new();
        assert_eq!(stats.best_average(), None);
        assert_eq!(stats.most_used(), None);
    }
}
