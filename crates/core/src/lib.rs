//! # smartexp3-core
//!
//! Bandit-style policies for **distributed resource selection**, reproducing the
//! algorithms of *"Shrewd Selection Speeds Surfing: Use Smart EXP3!"*
//! (Appavoo, Gilbert, Tan — ICDCS 2018).
//!
//! The paper studies wireless network selection: every time slot, each mobile
//! device independently picks one of the wireless networks available to it and
//! observes the bit rate it obtains (its *gain*). The crate provides:
//!
//! * [`SmartExp3`] — the paper's contribution: EXP3 augmented with adaptive
//!   blocking, an initial exploration phase, occasional greedy choices, a
//!   switch-back mechanism and a minimal reset (Algorithm 1 + §V).
//! * The baselines it is evaluated against: [`Exp3`], [`BlockExp3`],
//!   [`HybridBlockExp3`], [`Greedy`], [`FixedRandom`], [`FullInformation`] and
//!   the oracle [`CentralizedCoordinator`] / [`CentralizedPolicy`].
//! * The [`Policy`] trait that a simulator (see the `netsim` crate) drives one
//!   slot at a time.
//! * [`theory`] — closed forms of the paper's Theorem 2 (switch bound) and
//!   Theorem 3 (weak-regret bound), used by tests and benches.
//!
//! ## Quick example
//!
//! ```rust
//! use rand::SeedableRng;
//! use smartexp3_core::{NetworkId, Policy, SmartExp3, SmartExp3Config};
//!
//! # fn main() -> Result<(), smartexp3_core::ConfigError> {
//! let nets = vec![NetworkId(0), NetworkId(1), NetworkId(2)];
//! let mut policy = SmartExp3::new(nets.clone(), SmartExp3Config::default())?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//!
//! for slot in 0..100 {
//!     let chosen = policy.choose(slot, &mut rng);
//!     // pretend network 2 is consistently the best
//!     let gain = if chosen == NetworkId(2) { 0.9 } else { 0.2 };
//!     let obs = smartexp3_core::Observation::bandit(slot, chosen, gain * 22.0, gain);
//!     policy.observe(&obs, &mut rng);
//! }
//! assert!(policy.probabilities().iter().any(|(n, p)| *n == NetworkId(2) && *p > 0.3));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod block_exp3;
mod centralized;
mod environment;
mod error;
mod exp3;
mod factory;
mod fixed_random;
mod full_information;
mod gamma;
mod greedy;
mod hybrid_block_exp3;
mod policy;
mod shared;
mod smart_exp3;
mod state;
mod stats;
pub mod theory;
mod types;
mod weights;

pub use block::{block_length, BlockState};
pub use block_exp3::BlockExp3;
pub use centralized::{CentralizedCoordinator, CentralizedPolicy};
pub use environment::{
    EnvStateError, Environment, PartitionExecutor, PartitionJob, SequentialExecutor, SessionRange,
    SessionView,
};
pub use error::ConfigError;
pub use exp3::{Exp3, Exp3Config};
pub use factory::{FleetPolicies, PolicyFactory, PolicyKind};
pub use fixed_random::FixedRandom;
pub use full_information::{FullInformation, FullInformationConfig};
pub use gamma::GammaSchedule;
pub use greedy::Greedy;
pub use hybrid_block_exp3::HybridBlockExp3;
pub use policy::{probability_of, Observation, Policy, PolicyStats, SelectionKind};
pub use shared::{SharedFeedback, SharedRate};
pub use smart_exp3::{SmartExp3, SmartExp3Config, SmartExp3Features};
pub use smartexp3_telemetry::SlotMetrics;
pub use state::PolicyState;
pub use stats::NetworkStats;
pub use types::{splitmix64, BlockIndex, NetworkId, SlotIndex};
pub use weights::{DistributionSummary, SamplerStrategy, WeightTable};
