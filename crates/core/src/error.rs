//! Error types returned by policy constructors.

use std::error::Error;
use std::fmt;

/// Error returned when a policy is constructed with an invalid configuration.
///
/// All policy constructors validate their arguments (`C-VALIDATE`): parameters
/// such as γ and β must lie in `(0, 1]`, and at least one network must be
/// available.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A numeric parameter was outside its documented range.
    ParameterOutOfRange {
        /// Name of the offending parameter (e.g. `"beta"`).
        parameter: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable description of the accepted range.
        expected: &'static str,
    },
    /// The policy was constructed with an empty set of networks.
    NoNetworks,
    /// The same network identifier appeared more than once.
    DuplicateNetwork(crate::NetworkId),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ParameterOutOfRange {
                parameter,
                value,
                expected,
            } => write!(
                f,
                "parameter `{parameter}` = {value} is out of range (expected {expected})"
            ),
            ConfigError::NoNetworks => write!(f, "at least one network must be available"),
            ConfigError::DuplicateNetwork(id) => {
                write!(
                    f,
                    "network {id} appears more than once in the available set"
                )
            }
        }
    }
}

impl Error for ConfigError {}

/// Validates that `value` lies in the half-open unit interval `(0, 1]`.
pub(crate) fn check_unit_interval(parameter: &'static str, value: f64) -> Result<(), ConfigError> {
    if value.is_finite() && value > 0.0 && value <= 1.0 {
        Ok(())
    } else {
        Err(ConfigError::ParameterOutOfRange {
            parameter,
            value,
            expected: "a finite value in (0, 1]",
        })
    }
}

/// Validates that `value` is finite and strictly positive.
pub(crate) fn check_positive(parameter: &'static str, value: f64) -> Result<(), ConfigError> {
    if value.is_finite() && value > 0.0 {
        Ok(())
    } else {
        Err(ConfigError::ParameterOutOfRange {
            parameter,
            value,
            expected: "a finite value > 0",
        })
    }
}

/// Validates an arm list: non-empty and free of duplicates.
pub(crate) fn check_networks(networks: &[crate::NetworkId]) -> Result<(), ConfigError> {
    if networks.is_empty() {
        return Err(ConfigError::NoNetworks);
    }
    let mut seen = std::collections::BTreeSet::new();
    for &n in networks {
        if !seen.insert(n) {
            return Err(ConfigError::DuplicateNetwork(n));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetworkId;

    #[test]
    fn unit_interval_accepts_boundary_one() {
        assert!(check_unit_interval("gamma", 1.0).is_ok());
        assert!(check_unit_interval("gamma", 0.5).is_ok());
    }

    #[test]
    fn unit_interval_rejects_zero_and_above_one() {
        assert!(check_unit_interval("gamma", 0.0).is_err());
        assert!(check_unit_interval("gamma", 1.5).is_err());
        assert!(check_unit_interval("gamma", f64::NAN).is_err());
    }

    #[test]
    fn networks_must_be_unique_and_nonempty() {
        assert_eq!(check_networks(&[]), Err(ConfigError::NoNetworks));
        assert_eq!(
            check_networks(&[NetworkId(1), NetworkId(1)]),
            Err(ConfigError::DuplicateNetwork(NetworkId(1)))
        );
        assert!(check_networks(&[NetworkId(0), NetworkId(1)]).is_ok());
    }

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let err = ConfigError::ParameterOutOfRange {
            parameter: "beta",
            value: 2.0,
            expected: "a finite value in (0, 1]",
        };
        let msg = err.to_string();
        assert!(msg.contains("beta"));
        assert!(msg.contains("2"));
    }
}
