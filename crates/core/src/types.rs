//! Fundamental identifier and index types shared by all policies.

use serde::{Deserialize, Serialize};
use std::fmt;

/// SplitMix64 avalanche round — the workspace's shared seeding idiom.
///
/// Every derived RNG stream (per-session streams in the fleet engine,
/// per-partition feedback streams, per-neighbourhood gossip streams) mixes
/// its identifiers through this function, so the derivations stay
/// decorrelated *and* consistent across crates: a change to the idiom lands
/// everywhere at once.
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Identifier of a wireless network (an "arm" of the bandit).
///
/// Identifiers are assigned by the environment (simulator, testbed driver, …);
/// policies treat them as opaque. A device's set of available networks may
/// change over time (mobility, APs appearing/disappearing), which is why
/// policies index their internal state by `NetworkId` rather than by position.
///
/// ```rust
/// use smartexp3_core::NetworkId;
/// let wifi = NetworkId(3);
/// assert_eq!(wifi.index(), 3);
/// assert_eq!(format!("{wifi}"), "net#3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NetworkId(pub u32);

impl NetworkId {
    /// Returns the raw index carried by this identifier.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetworkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "net#{}", self.0)
    }
}

impl From<u32> for NetworkId {
    fn from(value: u32) -> Self {
        NetworkId(value)
    }
}

/// Index of a time slot (the paper uses 15-second slots).
///
/// Slots are numbered from 0 by the environment. Policies only use slot
/// indices for bookkeeping (e.g. reset heuristics); no wall-clock time is
/// assumed.
pub type SlotIndex = usize;

/// Index of a block (a maximal run of consecutive slots spent on one network).
pub type BlockIndex = usize;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_id_roundtrip_and_display() {
        let id = NetworkId::from(7u32);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "net#7");
    }

    #[test]
    fn network_id_ordering_is_by_raw_value() {
        let mut ids = vec![NetworkId(3), NetworkId(0), NetworkId(2)];
        ids.sort();
        assert_eq!(ids, vec![NetworkId(0), NetworkId(2), NetworkId(3)]);
    }
}
