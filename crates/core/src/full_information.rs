//! The Full Information baseline (Table II): an exponentially weighted
//! forecaster that, unlike a bandit, receives the gain it *could* have
//! obtained from every network at the end of each slot.
//!
//! This follows the adaptive-routing-with-expert-advice construction of
//! György & Ottucsák: each slot the device samples a network from the
//! normalised weights, then updates every network's weight multiplicatively
//! from its loss `1 − gain`. It is not implementable without extra signalling
//! in a real deployment — the paper includes it (like Centralized) as an
//! idealised reference point.

use crate::error::{check_networks, check_positive};
use crate::policy::{Observation, Policy, PolicyStats, SelectionKind};
use crate::{ConfigError, NetworkId, SlotIndex, WeightTable};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Configuration of the [`FullInformation`] forecaster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FullInformationConfig {
    /// Learning rate η of the multiplicative update `w ← w · exp(−η · loss)`.
    pub learning_rate: f64,
}

impl Default for FullInformationConfig {
    fn default() -> Self {
        // A mild learning rate; the paper does not report the exact value it
        // used, and results are insensitive to it in the settings considered.
        FullInformationConfig { learning_rate: 0.2 }
    }
}

impl FullInformationConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if the learning rate is not finite and positive.
    pub fn validate(&self) -> Result<(), ConfigError> {
        check_positive("learning_rate", self.learning_rate)
    }
}

/// Full-feedback exponentially weighted forecaster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FullInformation {
    config: FullInformationConfig,
    weights: WeightTable,
    current: Option<NetworkId>,
    stats: PolicyStats,
}

impl FullInformation {
    /// Creates the forecaster over `networks`.
    ///
    /// # Errors
    ///
    /// Returns an error if `networks` is empty/duplicated or the configuration
    /// is invalid.
    pub fn new(
        networks: Vec<NetworkId>,
        config: FullInformationConfig,
    ) -> Result<Self, ConfigError> {
        check_networks(&networks)?;
        config.validate()?;
        Ok(FullInformation {
            config,
            weights: WeightTable::uniform(&networks),
            current: None,
            stats: PolicyStats::default(),
        })
    }
}

impl Policy for FullInformation {
    fn state(&self) -> Option<crate::PolicyState> {
        Some(crate::PolicyState::FullInformation(Box::new(self.clone())))
    }

    fn name(&self) -> &'static str {
        "Full Information"
    }

    fn choose(&mut self, _slot: SlotIndex, rng: &mut dyn RngCore) -> NetworkId {
        // Pure weight sampling: γ = 0 (no forced uniform exploration is needed
        // because every arm's weight is updated every slot regardless).
        let (network, _) = self.weights.sample(0.0, rng);
        if let Some(previous) = self.current {
            if previous != network {
                self.stats.switches += 1;
            }
        }
        self.stats.blocks += 1;
        self.current = Some(network);
        network
    }

    fn observe(&mut self, observation: &Observation, _rng: &mut dyn RngCore) {
        let Some(full) = &observation.full_gains else {
            // Degenerate to bandit feedback when the environment cannot
            // provide counterfactual gains: update only the chosen network.
            self.weights.multiplicative_update(
                observation.network,
                1.0,
                self.loss_update(observation.scaled_gain),
            );
            return;
        };
        for &(network, gain) in full {
            let update = self.loss_update(gain);
            self.weights.multiplicative_update(network, 1.0, update);
        }
    }

    fn on_networks_changed(&mut self, available: &[NetworkId], _rng: &mut dyn RngCore) {
        for &n in available {
            self.weights.add_arm(n);
        }
        let to_remove: Vec<NetworkId> = self
            .weights
            .arms()
            .iter()
            .copied()
            .filter(|n| !available.contains(n))
            .collect();
        for n in to_remove {
            self.weights.remove_arm(n);
        }
        if let Some(current) = self.current {
            if !available.contains(&current) {
                self.current = None;
            }
        }
    }

    fn probabilities(&self) -> Vec<(NetworkId, f64)> {
        let probs = self.weights.probabilities(0.0);
        self.weights.arms().iter().copied().zip(probs).collect()
    }

    fn probabilities_into(&self, out: &mut Vec<(NetworkId, f64)>) {
        self.weights.probability_pairs_into(0.0, out);
    }

    fn top_probabilities_into(&self, k: usize, out: &mut Vec<(NetworkId, f64)>) {
        self.weights.top_probabilities_into(0.0, k, out);
    }

    fn last_selection_kind(&self) -> SelectionKind {
        SelectionKind::Random
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}

impl FullInformation {
    /// Converts a scaled gain into the argument handed to
    /// [`WeightTable::multiplicative_update`] so that the net effect on the
    /// log-weight is `−η · loss` (the update rule adds `γ·x/k`, and it is
    /// always invoked with γ = 1 here).
    fn loss_update(&self, scaled_gain: f64) -> f64 {
        let loss = (1.0 - scaled_gain).clamp(0.0, 1.0);
        -self.config.learning_rate * loss * self.weights.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::probability_of;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn nets(k: u32) -> Vec<NetworkId> {
        (0..k).map(NetworkId).collect()
    }

    fn full_obs(slot: usize, chosen: NetworkId, gains: &[(NetworkId, f64)]) -> Observation {
        let g = gains
            .iter()
            .find(|(n, _)| *n == chosen)
            .map(|(_, g)| *g)
            .unwrap_or(0.0);
        Observation::bandit(slot, chosen, g * 22.0, g).with_full_gains(gains.to_vec())
    }

    #[test]
    fn converges_faster_than_bandit_feedback_would() {
        let mut policy = FullInformation::new(nets(3), FullInformationConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let gains = vec![
            (NetworkId(0), 0.2),
            (NetworkId(1), 0.4),
            (NetworkId(2), 0.9),
        ];
        for t in 0..60 {
            let chosen = policy.choose(t, &mut rng);
            policy.observe(&full_obs(t, chosen, &gains), &mut rng);
        }
        let p_best = probability_of(&policy.probabilities(), NetworkId(2));
        assert!(
            p_best > 0.9,
            "full feedback should converge fast, p = {p_best}"
        );
    }

    #[test]
    fn without_full_feedback_it_still_functions() {
        let mut policy = FullInformation::new(nets(2), FullInformationConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for t in 0..20 {
            let chosen = policy.choose(t, &mut rng);
            let gain = if chosen == NetworkId(0) { 0.9 } else { 0.1 };
            policy.observe(&Observation::bandit(t, chosen, gain * 22.0, gain), &mut rng);
        }
        let sum: f64 = policy.probabilities().iter().map(|(_, p)| p).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_invalid_learning_rate() {
        let config = FullInformationConfig { learning_rate: 0.0 };
        assert!(FullInformation::new(nets(2), config).is_err());
    }

    #[test]
    fn network_set_changes_are_supported() {
        let mut policy = FullInformation::new(nets(2), FullInformationConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        policy.on_networks_changed(&[NetworkId(1), NetworkId(2), NetworkId(3)], &mut rng);
        assert_eq!(policy.probabilities().len(), 3);
    }
}
