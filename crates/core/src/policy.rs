//! The [`Policy`] trait driven by the environment one slot at a time, together
//! with the observation and statistics types exchanged across that boundary.

use crate::{NetworkId, SlotIndex};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// How a policy arrived at its most recent selection.
///
/// The Smart EXP3 weight-update rule divides the observed gain by the
/// probability `p(b)` with which the block's network was chosen, and that
/// probability depends on the *kind* of selection that was made (initial
/// exploration, random draw, greedy pick or switch-back). The kind is also
/// recorded by the simulator for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SelectionKind {
    /// Initial (or post-reset) exploration of a not-yet-visited network.
    Exploration,
    /// Random draw from the policy's probability distribution.
    Random,
    /// Deterministic pick of the network with the highest average gain.
    Greedy,
    /// Return to the previously used network after a disappointing first slot.
    SwitchBack,
    /// The policy continued an ongoing block (no fresh decision this slot).
    Continuation,
    /// A deterministic assignment (used by the centralized oracle and
    /// fixed-random baselines).
    Fixed,
}

impl SelectionKind {
    /// Returns `true` if this slot started a new block (i.e. a fresh decision
    /// was taken rather than continuing the previous one).
    #[must_use]
    pub fn is_fresh_decision(self) -> bool {
        !matches!(self, SelectionKind::Continuation)
    }
}

/// Everything a device learns at the end of one time slot.
///
/// The environment (simulator or testbed driver) fills this in after the slot
/// has elapsed and hands it to [`Policy::observe`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Index of the slot that just finished.
    pub slot: SlotIndex,
    /// The network the device was associated with during the slot.
    pub network: NetworkId,
    /// Raw bit rate observed on that network, in Mbps.
    pub bit_rate_mbps: f64,
    /// The same bit rate scaled to `[0, 1]` (the *gain* of the congestion
    /// game formulation, §II-B of the paper).
    pub scaled_gain: f64,
    /// Whether associating with `network` required switching away from the
    /// network used in the previous slot.
    pub switched: bool,
    /// Switching delay incurred this slot, in seconds (0 when `!switched`).
    pub switching_delay_s: f64,
    /// Counterfactual scaled gains for every available network, if the
    /// environment provides full feedback. Only the [`FullInformation`]
    /// baseline consumes this; bandit policies ignore it.
    ///
    /// [`FullInformation`]: crate::FullInformation
    pub full_gains: Option<Vec<(NetworkId, f64)>>,
}

impl Observation {
    /// Convenience constructor for the common bandit-feedback case.
    ///
    /// `switched` / `switching_delay_s` default to `false` / `0.0` and no full
    /// feedback is attached.
    #[must_use]
    pub fn bandit(
        slot: SlotIndex,
        network: NetworkId,
        bit_rate_mbps: f64,
        scaled_gain: f64,
    ) -> Self {
        Observation {
            slot,
            network,
            bit_rate_mbps,
            scaled_gain,
            switched: false,
            switching_delay_s: 0.0,
            full_gains: None,
        }
    }

    /// Attaches full-information feedback (per-network counterfactual gains).
    #[must_use]
    pub fn with_full_gains(mut self, gains: Vec<(NetworkId, f64)>) -> Self {
        self.full_gains = Some(gains);
        self
    }

    /// Records that the device switched networks this slot and the delay paid.
    #[must_use]
    pub fn with_switch(mut self, delay_s: f64) -> Self {
        self.switched = true;
        self.switching_delay_s = delay_s;
        self
    }
}

/// Counters describing a policy's behaviour so far, exposed for evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PolicyStats {
    /// Number of network switches performed (a change of network between two
    /// consecutive slots in which the device was active).
    pub switches: u64,
    /// Number of blocks started (1 for slot-level policies' every decision).
    pub blocks: u64,
    /// Number of times the minimal-reset mechanism fired.
    pub resets: u64,
    /// Number of switch-back blocks.
    pub switch_backs: u64,
    /// Number of greedy (deterministic, highest-average-gain) selections.
    pub greedy_selections: u64,
    /// Number of exploration selections.
    pub explorations: u64,
    /// Number of shared (gossiped) per-network rate reports folded into the
    /// policy via [`Policy::observe_shared`].
    pub shared_observations: u64,
    /// Times the policy's weight-table sampler rebuilt its acceleration
    /// structure (the alias-table freeze under
    /// [`SamplerStrategy::Alias`](crate::SamplerStrategy::Alias); 0 for the
    /// linear and tree strategies). A rebuild storm here means updates are
    /// churning faster than draws can amortise.
    pub sampler_rebuilds: u64,
    /// Draws that resolved through the alias sampler's dirty-arm overlay
    /// walk instead of its O(1) table lookup (0 for other strategies).
    pub overlay_hits: u64,
}

/// A sequential decision policy for distributed resource selection.
///
/// The environment drives a policy with a strict per-slot protocol:
///
/// 1. [`choose`](Policy::choose) — the policy returns the network to use for
///    the coming slot;
/// 2. the environment lets the slot elapse and measures the gain;
/// 3. [`observe`](Policy::observe) — the policy ingests the feedback.
///
/// [`on_networks_changed`](Policy::on_networks_changed) may be called between
/// slots when the set of visible networks changes (mobility, AP churn).
///
/// Implementations are deterministic given the `rng` passed in, which keeps
/// whole-simulation runs reproducible from a single seed.
pub trait Policy: Send {
    /// Short human-readable name, e.g. `"Smart EXP3"`. Used in reports.
    fn name(&self) -> &'static str;

    /// Selects the network to associate with for slot `slot`.
    fn choose(&mut self, slot: SlotIndex, rng: &mut dyn RngCore) -> NetworkId;

    /// Ingests the feedback for the slot that just finished.
    fn observe(&mut self, observation: &Observation, rng: &mut dyn RngCore);

    /// Ingests **shared** (gossiped) feedback: per-network observed-rate
    /// digests the device heard from its neighbourhood this slot (the
    /// Co-Bandit cooperative path, see [`SharedFeedback`]).
    ///
    /// Called after [`observe`](Policy::observe), at most once per slot, and
    /// only by drivers running a cooperative environment. The default is a
    /// documented no-op: a policy that does not cooperate simply ignores the
    /// gossip. The EXP3 family overrides it to fold the digests into its
    /// weight table through the cached-distribution update, so shared
    /// feedback rides the same zero-alloc hot path as bandit feedback.
    ///
    /// [`SharedFeedback`]: crate::SharedFeedback
    fn observe_shared(&mut self, shared: &crate::SharedFeedback, rng: &mut dyn RngCore) {
        let _ = (shared, rng);
    }

    /// Informs the policy that its set of available networks changed.
    ///
    /// The default implementation is a documented no-op: a policy that does
    /// not track network churn simply keeps its current state and continues
    /// choosing among the networks it already knows. This default must never
    /// panic — a fleet engine hosts thousands of sessions in shared worker
    /// threads, and one session in a dynamic environment must not be able to
    /// take the whole fleet down. Policies that *do* adapt (Smart EXP3, the
    /// greedy baseline, …) override this to re-target the new network set.
    fn on_networks_changed(&mut self, available: &[NetworkId], rng: &mut dyn RngCore) {
        let _ = (available, rng);
    }

    /// Current probability of selecting each network at the next fresh
    /// decision, in no particular order. Deterministic policies report 1.0 for
    /// their committed choice.
    fn probabilities(&self) -> Vec<(NetworkId, f64)>;

    /// Zero-alloc variant of [`probabilities`](Policy::probabilities): fills
    /// `out` (cleared first), reusing its capacity. Drivers that poll the
    /// distribution every slot (the simulator's recorder, dashboards) should
    /// prefer this entry point with a long-lived buffer.
    ///
    /// The default delegates to `probabilities()`; policies on the hot path
    /// (the EXP3 family) override it to read their cached distribution
    /// without allocating.
    fn probabilities_into(&self, out: &mut Vec<(NetworkId, f64)>) {
        out.clear();
        out.extend(self.probabilities());
    }

    /// Bounded top-`k` variant of
    /// [`probabilities_into`](Policy::probabilities_into): fills `out`
    /// (cleared first, capacity reused) with at most `k` `(network,
    /// probability)` pairs, highest probability first. Readers that only
    /// consume the most probable choice(s) — the engine's end-of-slot
    /// top-choices hook, dashboards — should prefer this entry point so
    /// dense worlds (hundreds of networks per session) don't pay for a full
    /// O(K) listing per session per slot.
    ///
    /// Ties break towards the **later-listed** network, exactly as scanning
    /// the full listing with `Iterator::max_by(f64::total_cmp)` would — so
    /// `top_probabilities_into(1, ..)` is a drop-in for that idiom. The
    /// default selects over `probabilities_into`; the EXP3 family overrides
    /// it to heap-select directly over the cached exponentials.
    fn top_probabilities_into(&self, k: usize, out: &mut Vec<(NetworkId, f64)>) {
        self.probabilities_into(out);
        // Reverse, then stable-sort descending: later-listed entries stay
        // ahead of earlier ones with equal probability.
        out.reverse();
        out.sort_by(|a, b| b.1.total_cmp(&a.1));
        out.truncate(k);
    }

    /// The kind of the most recent selection (see [`SelectionKind`]).
    fn last_selection_kind(&self) -> SelectionKind;

    /// Behavioural counters (switches, resets, …) accumulated so far.
    fn stats(&self) -> PolicyStats;

    /// Captures the policy's full learning state for checkpointing, or `None`
    /// for policies whose state cannot be serialized (currently only the
    /// centralized oracle, whose state lives in a shared coordinator).
    ///
    /// The fleet engine uses this to snapshot every session of a fleet; a
    /// policy restored from the returned [`PolicyState`] must behave
    /// bit-identically to the original from that point on.
    ///
    /// [`PolicyState`]: crate::PolicyState
    fn state(&self) -> Option<crate::PolicyState> {
        None
    }
}

/// `Box<dyn Policy>` is itself a [`Policy`], delegating every method to the
/// boxed value. This lets generic drivers — most importantly the fleet
/// engine's lane loops, which are monomorphized per concrete policy type —
/// treat the boxed fallback lane as just another `P: Policy`, reusing one
/// code path for both static and dynamic dispatch.
impl Policy for Box<dyn Policy> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn choose(&mut self, slot: SlotIndex, rng: &mut dyn RngCore) -> NetworkId {
        (**self).choose(slot, rng)
    }

    fn observe(&mut self, observation: &Observation, rng: &mut dyn RngCore) {
        (**self).observe(observation, rng);
    }

    fn observe_shared(&mut self, shared: &crate::SharedFeedback, rng: &mut dyn RngCore) {
        (**self).observe_shared(shared, rng);
    }

    fn on_networks_changed(&mut self, available: &[NetworkId], rng: &mut dyn RngCore) {
        (**self).on_networks_changed(available, rng);
    }

    fn probabilities(&self) -> Vec<(NetworkId, f64)> {
        (**self).probabilities()
    }

    fn probabilities_into(&self, out: &mut Vec<(NetworkId, f64)>) {
        (**self).probabilities_into(out);
    }

    fn top_probabilities_into(&self, k: usize, out: &mut Vec<(NetworkId, f64)>) {
        (**self).top_probabilities_into(k, out);
    }

    fn last_selection_kind(&self) -> SelectionKind {
        (**self).last_selection_kind()
    }

    fn stats(&self) -> PolicyStats {
        (**self).stats()
    }

    fn state(&self) -> Option<crate::PolicyState> {
        (**self).state()
    }
}

/// Returns the probability associated with `network` in a probability listing,
/// or 0.0 when absent. Convenience used by evaluation code and tests.
#[must_use]
pub fn probability_of(probabilities: &[(NetworkId, f64)], network: NetworkId) -> f64 {
    probabilities
        .iter()
        .find(|(n, _)| *n == network)
        .map(|(_, p)| *p)
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observation_builders_compose() {
        let obs = Observation::bandit(4, NetworkId(1), 10.0, 0.45)
            .with_switch(1.5)
            .with_full_gains(vec![(NetworkId(0), 0.2), (NetworkId(1), 0.45)]);
        assert!(obs.switched);
        assert_eq!(obs.switching_delay_s, 1.5);
        assert_eq!(obs.full_gains.as_ref().map(Vec::len), Some(2));
    }

    #[test]
    fn selection_kind_freshness() {
        assert!(SelectionKind::Exploration.is_fresh_decision());
        assert!(SelectionKind::SwitchBack.is_fresh_decision());
        assert!(!SelectionKind::Continuation.is_fresh_decision());
    }

    #[test]
    fn probability_lookup_defaults_to_zero() {
        let probs = vec![(NetworkId(0), 0.25), (NetworkId(2), 0.75)];
        assert_eq!(probability_of(&probs, NetworkId(2)), 0.75);
        assert_eq!(probability_of(&probs, NetworkId(9)), 0.0);
    }
}
