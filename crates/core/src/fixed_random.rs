//! The Fixed Random baseline (Table II): pick a network uniformly at random
//! once, then never move (unless the network disappears).

use crate::error::check_networks;
use crate::policy::{Observation, Policy, PolicyStats, SelectionKind};
use crate::{ConfigError, NetworkId, SlotIndex};
use rand::seq::SliceRandom;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Picks one network uniformly at random and stays on it forever.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FixedRandom {
    available: Vec<NetworkId>,
    chosen: Option<NetworkId>,
    stats: PolicyStats,
}

impl FixedRandom {
    /// Creates the policy over `networks`.
    ///
    /// # Errors
    ///
    /// Returns an error if `networks` is empty or contains duplicates.
    pub fn new(networks: Vec<NetworkId>) -> Result<Self, ConfigError> {
        check_networks(&networks)?;
        Ok(FixedRandom {
            available: networks,
            chosen: None,
            stats: PolicyStats::default(),
        })
    }

    /// The committed network, once the first slot has been decided.
    #[must_use]
    pub fn committed(&self) -> Option<NetworkId> {
        self.chosen
    }
}

impl Policy for FixedRandom {
    fn state(&self) -> Option<crate::PolicyState> {
        Some(crate::PolicyState::FixedRandom(Box::new(self.clone())))
    }

    fn name(&self) -> &'static str {
        "Fixed Random"
    }

    fn choose(&mut self, _slot: SlotIndex, rng: &mut dyn RngCore) -> NetworkId {
        if self.chosen.is_none() {
            self.chosen = self.available.choose(rng).copied();
            self.stats.blocks += 1;
        }
        self.chosen.expect("validated non-empty network set")
    }

    fn observe(&mut self, _observation: &Observation, _rng: &mut dyn RngCore) {}

    fn on_networks_changed(&mut self, available: &[NetworkId], rng: &mut dyn RngCore) {
        self.available = available.to_vec();
        if let Some(current) = self.chosen {
            if !available.contains(&current) {
                // Forced to re-pick; this is the only time the policy switches.
                self.chosen = available.choose(rng).copied();
                self.stats.switches += 1;
                self.stats.blocks += 1;
            }
        }
    }

    fn probabilities(&self) -> Vec<(NetworkId, f64)> {
        match self.chosen {
            Some(c) => self
                .available
                .iter()
                .map(|&n| (n, if n == c { 1.0 } else { 0.0 }))
                .collect(),
            None => {
                let p = 1.0 / self.available.len() as f64;
                self.available.iter().map(|&n| (n, p)).collect()
            }
        }
    }

    fn last_selection_kind(&self) -> SelectionKind {
        SelectionKind::Fixed
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn never_switches_in_a_static_environment() {
        let nets: Vec<NetworkId> = (0..3).map(NetworkId).collect();
        let mut policy = FixedRandom::new(nets).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let first = policy.choose(0, &mut rng);
        for t in 1..200 {
            assert_eq!(policy.choose(t, &mut rng), first);
        }
        assert_eq!(policy.stats().switches, 0);
    }

    #[test]
    fn repicks_only_when_its_network_disappears() {
        let nets: Vec<NetworkId> = (0..2).map(NetworkId).collect();
        let mut policy = FixedRandom::new(nets).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let first = policy.choose(0, &mut rng);
        let other = if first == NetworkId(0) {
            NetworkId(1)
        } else {
            NetworkId(0)
        };
        policy.on_networks_changed(&[other], &mut rng);
        assert_eq!(policy.choose(1, &mut rng), other);
        assert_eq!(policy.stats().switches, 1);
    }

    #[test]
    fn different_seeds_can_pick_different_networks() {
        let nets: Vec<NetworkId> = (0..4).map(NetworkId).collect();
        let mut picks = std::collections::BTreeSet::new();
        for seed in 0..16 {
            let mut policy = FixedRandom::new(nets.clone()).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            picks.insert(policy.choose(0, &mut rng));
        }
        assert!(picks.len() > 1, "16 seeds should not all agree");
    }
}
