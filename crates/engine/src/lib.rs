//! # smartexp3-engine
//!
//! A high-throughput **fleet engine**: hosts thousands to millions of
//! independent bandit sessions — each a boxed [`Policy`] from
//! `smartexp3-core` plus its own deterministic RNG stream — and steps them in
//! parallel with batched APIs.
//!
//! ## Seeding model
//!
//! A fleet is created from a single **root seed**. Every session draws its
//! decisions from a private [`StdRng`] stream derived as
//! `mix(root_seed, session_id)` (a SplitMix64-style avalanche over both
//! words), so:
//!
//! * sessions never share RNG state — there is no cross-session ordering
//!   dependency, which is what makes sharded parallel stepping legal;
//! * the fleet's results are a pure function of `(root seed, session ids,
//!   observations)` — **identical at any thread count and shard size**;
//! * snapshots only need each stream's 256-bit state to resume bit-exactly.
//!
//! ## Batched stepping
//!
//! [`FleetEngine::choose_all`] / [`FleetEngine::observe_all`] run one slot in
//! two phases (useful when feedback couples sessions, e.g. congestion
//! sharing), while [`FleetEngine::step_with`] fuses both into a single
//! parallel traversal for independent-feedback workloads. Sessions are
//! processed in shards of [`FleetConfig::shard_size`] distributed over rayon
//! workers.
//!
//! ## Checkpointing
//!
//! [`FleetEngine::snapshot`] captures every session (policy learning state
//! via [`PolicyState`], RNG stream state, gain statistics) into a serde tree
//! that [`FleetEngine::from_snapshot`] restores **bit-identically**: a
//! restored fleet produces exactly the trajectory the original would have.
//! [`FleetEngine::to_json`] / [`FleetEngine::from_json`] wrap that in a
//! stable text format.
//!
//! ```rust
//! use smartexp3_core::{NetworkId, Observation, PolicyFactory, PolicyKind};
//! use smartexp3_engine::{FleetConfig, FleetEngine};
//!
//! # fn main() -> Result<(), smartexp3_core::ConfigError> {
//! let mut factory = PolicyFactory::new(vec![
//!     (NetworkId(0), 4.0),
//!     (NetworkId(1), 7.0),
//!     (NetworkId(2), 22.0),
//! ])?;
//! let mut fleet = FleetEngine::new(FleetConfig::with_root_seed(7));
//! fleet.add_fleet(&mut factory, PolicyKind::SmartExp3, 1000)?;
//! for _ in 0..50 {
//!     fleet.step_with(|ctx| {
//!         let gain = if ctx.chosen == NetworkId(2) { 0.9 } else { 0.2 };
//!         Observation::bandit(ctx.slot, ctx.chosen, gain * 22.0, gain)
//!     });
//! }
//! let metrics = fleet.metrics();
//! assert_eq!(metrics.decisions, 50 * 1000);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use rayon::{ThreadPool, ThreadPoolBuilder};
use serde::{Deserialize, Serialize};
use smartexp3_core::{
    splitmix64, ConfigError, Environment, NetworkId, NetworkStats, Observation, PartitionExecutor,
    PartitionJob, Policy, PolicyFactory, PolicyKind, PolicyState, PolicyStats, SharedFeedback,
    SlotIndex,
};
use smartexp3_telemetry::{SlotTiming, TelemetryRecord, TelemetrySink};
use std::fmt;
use std::time::Instant;

/// Identifier of one session (one simulated device) within a fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session#{}", self.0)
    }
}

/// Configuration of a [`FleetEngine`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Root seed from which every session's RNG stream is derived.
    pub root_seed: u64,
    /// Sessions per shard (the unit of work handed to a rayon worker).
    ///
    /// Larger shards amortise scheduling overhead; smaller shards balance
    /// load better. The default of 1024 keeps per-shard step cost in the
    /// tens-of-microseconds range for slot-level policies. Results are
    /// independent of this value.
    pub shard_size: usize,
    /// Worker threads for batched stepping. `None` uses the machine's
    /// available parallelism; `Some(1)` forces sequential stepping. Results
    /// are independent of this value.
    pub threads: Option<usize>,
    /// Whether [`FleetEngine::step_env`] fans the feedback phase out over
    /// the worker pool when the environment advertises feedback partitions
    /// (the default). `false` forces the sequential
    /// [`Environment::feedback`] fallback — useful for measuring the
    /// speedup. On a single-worker pool the engine always takes the
    /// sequential path (fan-out would be pure dispatch overhead). Results
    /// are independent of this value by the partition contract.
    pub partitioned_feedback: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            root_seed: 0,
            shard_size: 1024,
            threads: None,
            partitioned_feedback: true,
        }
    }
}

impl FleetConfig {
    /// Configuration with the given root seed and default parallelism.
    #[must_use]
    pub fn with_root_seed(root_seed: u64) -> Self {
        FleetConfig {
            root_seed,
            ..FleetConfig::default()
        }
    }

    /// Overrides the worker thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Overrides the shard size (clamped to ≥ 1).
    #[must_use]
    pub fn with_shard_size(mut self, shard_size: usize) -> Self {
        self.shard_size = shard_size.max(1);
        self
    }

    /// Enables or disables the partitioned feedback phase (on by default).
    #[must_use]
    pub fn with_partitioned_feedback(mut self, partitioned: bool) -> Self {
        self.partitioned_feedback = partitioned;
        self
    }

    /// Derives the seed for an [`Environment`]'s own RNG from this fleet's
    /// root seed — a stream kept distinct (by an odd-multiplier avalanche
    /// over a different constant) from every per-session stream
    /// [`session_rng`] derives, so environment randomness never correlates
    /// with any session's decisions. Scenario builders use this so a fleet
    /// and its world are reproducible from the one root seed.
    #[must_use]
    pub fn environment_seed(&self) -> u64 {
        self.root_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0xE489_21FB_5D5C_91F3)
    }
}

/// Derives session `id`'s private RNG stream from the fleet's root seed.
///
/// Exposed so external drivers (benches, analysis tools) can reproduce a
/// single session's stream without instantiating a fleet.
#[must_use]
pub fn session_rng(root_seed: u64, id: SessionId) -> StdRng {
    // Avalanche the root, decorrelate nearby ids with an odd-constant
    // multiply, and avalanche the combination; the result seeds the
    // generator's full 256-bit state through `seed_from_u64`'s own SplitMix64
    // expansion. The combine is deliberately asymmetric in (root, id) so
    // fleet A's session B never shares a stream with fleet B's session A.
    let mixed = splitmix64(root_seed) ^ id.0.wrapping_mul(0xA24B_AED4_963E_E407);
    StdRng::seed_from_u64(splitmix64(mixed))
}

/// One hosted session: a policy plus its private RNG stream and statistics.
struct Session {
    id: SessionId,
    kind: PolicyKind,
    policy: Box<dyn Policy>,
    rng: StdRng,
    /// Per-session gain statistics ([`NetworkStats`]), merged into fleet-wide
    /// per-kind aggregates by [`FleetEngine::metrics`].
    gains: NetworkStats,
    /// The network chosen for the slot currently in flight (or the most
    /// recently completed one).
    last_choice: Option<NetworkId>,
}

impl Session {
    fn choose(&mut self, slot: SlotIndex) -> NetworkId {
        let chosen = self.policy.choose(slot, &mut self.rng);
        self.last_choice = Some(chosen);
        chosen
    }

    fn observe(&mut self, observation: &Observation) {
        self.gains
            .record_slot(observation.network, observation.scaled_gain);
        self.policy.observe(observation, &mut self.rng);
    }
}

/// Reusable per-shard buffers for batched stepping.
///
/// One `SlotScratch` lives per shard, persists across slots, and is handed to
/// the feedback closure through [`StepContext::scratch`], so grading a slot
/// never has to allocate: a closure that attaches counterfactual
/// full-information gains takes the buffer with
/// [`full_gains_buffer`](Self::full_gains_buffer), and the engine reclaims
/// the allocation from the observation after the session has consumed it.
#[derive(Debug, Default)]
pub struct SlotScratch {
    /// Recycled backing storage for [`Observation::full_gains`].
    full_gains: Vec<(NetworkId, f64)>,
    /// Recycled distribution read buffer (top-choice extraction for
    /// environments whose recorders track stable states).
    probabilities: Vec<(NetworkId, f64)>,
    /// Recycled shared-feedback digest buffer: cooperative environments copy
    /// the gossip digest a session can hear into this buffer during the
    /// observe phase, so delivering shared feedback allocates nothing in
    /// steady state.
    shared: SharedFeedback,
}

impl SlotScratch {
    /// Creates an empty scratch space.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes the recycled full-gains buffer (cleared, capacity preserved).
    /// Attach the filled buffer to the returned [`Observation`] via
    /// [`Observation::with_full_gains`]; the engine recovers the allocation
    /// after the observation has been consumed.
    #[must_use]
    pub fn full_gains_buffer(&mut self) -> Vec<(NetworkId, f64)> {
        let mut buffer = std::mem::take(&mut self.full_gains);
        buffer.clear();
        buffer
    }

    /// Reclaims recyclable allocations from a consumed observation.
    fn recycle(&mut self, observation: Observation) {
        if let Some(mut gains) = observation.full_gains {
            gains.clear();
            self.full_gains = gains;
        }
    }
}

/// Everything [`FleetEngine::step_with`] tells the feedback closure about the
/// decision it must grade, plus the shard's reusable scratch space.
#[derive(Debug)]
pub struct StepContext<'a> {
    /// The deciding session.
    pub session: SessionId,
    /// The slot being stepped.
    pub slot: SlotIndex,
    /// The network the session chose for this slot.
    pub chosen: NetworkId,
    /// The network the session used in the previous slot (`None` on its
    /// first slot), for switch accounting.
    pub previous: Option<NetworkId>,
    /// The shard's reusable buffers (see [`SlotScratch`]).
    pub scratch: &'a mut SlotScratch,
}

/// Aggregate behaviour of every session of one [`PolicyKind`] in the fleet.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KindMetrics {
    /// Number of sessions running this kind.
    pub sessions: usize,
    /// Summed behavioural counters of those sessions.
    pub policy: PolicyStats,
    /// Per-network gain statistics summed over those sessions.
    pub gains: NetworkStats,
}

impl KindMetrics {
    /// Mean scaled gain per slot across all sessions of this kind.
    #[must_use]
    pub fn mean_gain(&self) -> f64 {
        let slots = self.gains.total_slots();
        if slots == 0 {
            0.0
        } else {
            self.gains.total_gain() / slots as f64
        }
    }
}

/// A point-in-time view of fleet-wide aggregate behaviour.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetMetrics {
    /// Number of hosted sessions.
    pub sessions: usize,
    /// Slots stepped since the fleet was created (or restored state's value).
    pub slot: SlotIndex,
    /// Total decisions taken (`choose` calls) across all sessions.
    pub decisions: u64,
    /// Total network switches across all sessions.
    pub switches: u64,
    /// Total minimal resets across all sessions.
    pub resets: u64,
    /// Per-policy-kind aggregates, in [`PolicyKind::all`] order (only kinds
    /// present in the fleet appear).
    pub per_kind: Vec<(PolicyKind, KindMetrics)>,
}

impl FleetMetrics {
    /// The aggregate for one policy kind, if any session runs it.
    #[must_use]
    pub fn kind(&self, kind: PolicyKind) -> Option<&KindMetrics> {
        self.per_kind
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, m)| m)
    }
}

impl fmt::Display for FleetMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet: {} sessions, slot {}, {} decisions, {} switches, {} resets",
            self.sessions, self.slot, self.decisions, self.switches, self.resets
        )?;
        for (kind, metrics) in &self.per_kind {
            writeln!(
                f,
                "  {:<22} {:>8} sessions  mean gain {:.4}  switches {:>10}  resets {:>6}",
                kind.label(),
                metrics.sessions,
                metrics.mean_gain(),
                metrics.policy.switches,
                metrics.policy.resets,
            )?;
        }
        Ok(())
    }
}

/// Errors produced by fleet checkpointing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// A session's policy cannot capture serializable state (the centralized
    /// oracle keeps its state in a shared coordinator).
    UnsupportedPolicy {
        /// The offending session.
        session: SessionId,
        /// Its policy kind.
        kind: PolicyKind,
    },
    /// The snapshot was produced by an incompatible engine version.
    UnsupportedVersion(u32),
    /// The snapshot text could not be parsed.
    Malformed(String),
    /// The environment rejected the snapshot (missing or incompatible
    /// environment state, or an environment that cannot be checkpointed).
    Environment(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::UnsupportedPolicy { session, kind } => write!(
                f,
                "{session} runs `{kind}`, whose state cannot be captured per session"
            ),
            SnapshotError::UnsupportedVersion(version) => {
                write!(f, "unsupported fleet snapshot format version {version}")
            }
            SnapshotError::Malformed(message) => write!(f, "malformed fleet snapshot: {message}"),
            SnapshotError::Environment(message) => {
                write!(f, "environment snapshot error: {message}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Snapshot format version written by this engine.
///
/// Version 2: policies serialize the weight table's distribution cache and
/// flat (vector-backed) network statistics, so a restored session resumes on
/// the exact floating-point trajectory of the original.
///
/// Version 3: snapshots may embed the dynamic state of the [`Environment`]
/// the fleet was stepped through ([`FleetSnapshot::environment`]), so a
/// mid-scenario checkpoint — pending bandwidth events, mobility positions
/// and the environment RNG included — restores bit-identically.
///
/// Version 4: policy checkpoints carry the cooperative-feedback counter
/// ([`PolicyStats::shared_observations`]), and cooperative environments
/// embed their gossip digests and per-area RNG streams in the environment
/// state.
///
/// Version 5: the engine configuration records the partitioned-feedback
/// switch ([`FleetConfig::partitioned_feedback`]), and partitioned
/// environments embed **one RNG stream per feedback partition** in the
/// environment state instead of a single stream.
///
/// Version 6: EXP3-family policy checkpoints carry the per-policy
/// `SamplerStrategy` and, for tree-sampled configs, the Fenwick tree over
/// the cached exponentials — so a restored dense-spectrum session resumes
/// its O(log k) sampler bit-identically. Texts from versions 2–5 fail to
/// parse field-for-field, so [`from_json`](FleetEngine::from_json) probes
/// the version first and reports [`SnapshotError::UnsupportedVersion`]
/// instead of a confusing missing-field error.
pub const SNAPSHOT_VERSION: u32 = 6;

/// Checkpoint of one session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionSnapshot {
    /// Session identifier.
    pub id: u64,
    /// Policy kind (kept alongside the state because the Smart EXP3 feature
    /// ablations all share the [`PolicyState::SmartExp3`] variant).
    pub kind: PolicyKind,
    /// Full policy learning state.
    pub policy: PolicyState,
    /// The session RNG stream's 256-bit internal state.
    pub rng: [u64; 4],
    /// Per-session gain statistics.
    pub gains: NetworkStats,
    /// Network used in the most recent slot.
    pub last_choice: Option<NetworkId>,
}

/// Checkpoint of a whole fleet; serializable with `serde_json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetSnapshot {
    /// Snapshot format version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Engine configuration (restored fleets keep it, including parallelism,
    /// though results never depend on the parallelism fields).
    pub config: FleetConfig,
    /// Next slot to be stepped.
    pub slot: SlotIndex,
    /// Next session id to be assigned.
    pub next_id: u64,
    /// Decisions taken so far.
    pub decisions: u64,
    /// Every session, in session order.
    pub sessions: Vec<SessionSnapshot>,
    /// Dynamic state of the [`Environment`] the fleet was stepped through
    /// (its own opaque JSON, see [`Environment::state`]), or `None` for
    /// closure-driven fleets.
    pub environment: Option<String>,
}

/// Per-shard work unit of [`FleetEngine::step_with`]: sessions, the shard's
/// slice of the last-choice mirror, and its persistent scratch.
type StepShard<'a> = (
    &'a mut [Session],
    &'a mut [Option<NetworkId>],
    &'a mut SlotScratch,
);

/// Per-shard work unit of [`FleetEngine::choose_all`]: sessions, the shard's
/// slices of the choice output and the last-choice mirror.
type ChooseAllShard<'a> = (
    &'a mut [Session],
    &'a mut [NetworkId],
    &'a mut [Option<NetworkId>],
);

/// Per-shard work unit of the env choose phase: shard offset, sessions, the
/// shard's slices of the joint-choice buffer and the last-choice mirror.
type ChooseShard<'a> = (
    usize,
    &'a mut [Session],
    &'a mut [Option<NetworkId>],
    &'a mut [Option<NetworkId>],
);

/// Per-shard work unit of the env observe phase: shard offset, sessions, the
/// shard's slice of the top-choice buffer and its persistent scratch.
type ObserveShard<'a> = (
    usize,
    &'a mut [Session],
    &'a mut [Option<(NetworkId, f64)>],
    &'a mut SlotScratch,
);

/// The engine-side [`PartitionExecutor`]: runs an environment's feedback
/// partition jobs on the same worker pool the choose and observe shards use.
/// Each job owns disjoint environment state, so the pool's dynamic load
/// balancing never affects the result.
struct PoolExecutor<'a> {
    pool: &'a Option<ThreadPool>,
}

impl PartitionExecutor for PoolExecutor<'_> {
    fn run(&self, jobs: Vec<PartitionJob<'_>>) {
        FleetEngine::in_pool(self.pool, || {
            jobs.into_par_iter().for_each(|job| job());
        });
    }
}

/// A manager for a fleet of concurrently learning bandit sessions.
///
/// See the [crate documentation](crate) for the seeding and determinism
/// model. All batched entry points are deterministic given the root seed and
/// the observation sequence, regardless of `threads` and `shard_size`.
pub struct FleetEngine {
    config: FleetConfig,
    pool: Option<ThreadPool>,
    sessions: Vec<Session>,
    slot: SlotIndex,
    next_id: u64,
    decisions: u64,
    choices: Vec<NetworkId>,
    /// Mirror of every session's most recent choice, maintained by all step
    /// paths so [`last_choices`](Self::last_choices) is a zero-alloc read.
    last: Vec<Option<NetworkId>>,
    /// One persistent [`SlotScratch`] per shard, grown on fleet growth only —
    /// steady-state stepping performs no per-**session** allocation. (A small
    /// O(shard-count) pairing vector is still built per step to hand each
    /// worker its shard and scratch together.)
    scratch: Vec<SlotScratch>,
    /// Persistent environment-stepping buffers (joint choices, feedback,
    /// top-choice reads), reused across [`step_env`](Self::step_env) calls.
    env_choices: Vec<Option<NetworkId>>,
    env_feedback: Vec<Option<Observation>>,
    env_tops: Vec<Option<(NetworkId, f64)>>,
    /// Wall-clock phase breakdown of the most recent [`step_env`]
    /// (`Self::step_env`) slot. Host timing, *not* covered by any
    /// determinism contract, and deliberately excluded from snapshots.
    last_timing: Option<SlotTiming>,
}

impl fmt::Debug for FleetEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FleetEngine")
            .field("config", &self.config)
            .field("sessions", &self.sessions.len())
            .field("slot", &self.slot)
            .field("decisions", &self.decisions)
            .finish_non_exhaustive()
    }
}

impl FleetEngine {
    /// Creates an empty fleet.
    #[must_use]
    pub fn new(config: FleetConfig) -> Self {
        let pool = config.threads.map(|threads| {
            ThreadPoolBuilder::new()
                .num_threads(threads.max(1))
                .build()
                .expect("thread pool construction cannot fail")
        });
        FleetEngine {
            config,
            pool,
            sessions: Vec::new(),
            slot: 0,
            next_id: 0,
            decisions: 0,
            choices: Vec::new(),
            last: Vec::new(),
            scratch: Vec::new(),
            env_choices: Vec::new(),
            env_feedback: Vec::new(),
            env_tops: Vec::new(),
            last_timing: None,
        }
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Number of hosted sessions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// `true` when the fleet hosts no sessions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// The next slot to be stepped.
    #[must_use]
    pub fn slot(&self) -> SlotIndex {
        self.slot
    }

    /// Adds one session running `policy`, assigning it the next session id
    /// and its private RNG stream.
    pub fn add_session(&mut self, kind: PolicyKind, policy: Box<dyn Policy>) -> SessionId {
        let id = SessionId(self.next_id);
        self.next_id += 1;
        self.sessions.push(Session {
            id,
            kind,
            rng: session_rng(self.config.root_seed, id),
            policy,
            gains: NetworkStats::new(),
            last_choice: None,
        });
        self.last.push(None);
        id
    }

    /// Bulk-adds `count` sessions of `kind` built by `factory` (via the
    /// factory's bulk-construction hook). Returns the ids of the new
    /// sessions, which are always a contiguous run.
    ///
    /// # Errors
    ///
    /// Propagates constructor errors from the factory; no sessions are added
    /// on error.
    pub fn add_fleet(
        &mut self,
        factory: &mut PolicyFactory,
        kind: PolicyKind,
        count: usize,
    ) -> Result<Vec<SessionId>, ConfigError> {
        let policies = factory.build_fleet(kind, count)?;
        Ok(policies
            .into_iter()
            .map(|policy| self.add_session(kind, policy))
            .collect())
    }

    /// Runs `operation` inside this engine's thread pool (or inline when no
    /// explicit pool is configured — rayon then uses available parallelism).
    fn in_pool<R>(pool: &Option<ThreadPool>, operation: impl FnOnce() -> R) -> R {
        match pool {
            Some(pool) => pool.install(operation),
            None => operation(),
        }
    }

    /// Phase 1 of a slot: every session picks its network for slot
    /// [`slot()`](Self::slot), in parallel. Returns the choices in session
    /// order. Must be followed by [`observe_all`](Self::observe_all) before
    /// the next `choose_all`.
    pub fn choose_all(&mut self) -> &[NetworkId] {
        let slot = self.slot;
        let shard_size = self.config.shard_size.max(1);
        let count = self.sessions.len();
        // Choices are written by the parallel workers themselves (the same
        // pattern as `step_env`'s choose phase) rather than re-read from
        // `last_choice` afterwards — there is no window in which a session
        // could be observed without a recorded choice, and no panic path.
        self.choices.clear();
        self.choices.resize(count, NetworkId(0));
        let work: Vec<ChooseAllShard<'_>> = self
            .sessions
            .chunks_mut(shard_size)
            .zip(self.choices.chunks_mut(shard_size))
            .zip(self.last.chunks_mut(shard_size))
            .map(|((sessions, choices), last)| (sessions, choices, last))
            .collect();
        Self::in_pool(&self.pool, || {
            work.into_par_iter().for_each(|(shard, choices, last)| {
                for (i, session) in shard.iter_mut().enumerate() {
                    let chosen = session.choose(slot);
                    choices[i] = chosen;
                    last[i] = Some(chosen);
                }
            });
        });
        self.decisions += count as u64;
        &self.choices
    }

    /// Phase 2 of a slot: delivers one [`Observation`] per session (in
    /// session order, matching [`choose_all`](Self::choose_all)'s output) and
    /// advances the fleet to the next slot.
    ///
    /// # Panics
    ///
    /// Panics when `observations.len() != self.len()` — feedback and fleet
    /// must stay aligned.
    pub fn observe_all(&mut self, observations: &[Observation]) {
        assert_eq!(
            observations.len(),
            self.sessions.len(),
            "one observation per session required"
        );
        let shard_size = self.config.shard_size.max(1);
        let sessions = &mut self.sessions;
        Self::in_pool(&self.pool, || {
            sessions
                .par_chunks_mut(shard_size)
                .enumerate()
                .for_each(|(shard_index, shard)| {
                    let offset = shard_index * shard_size;
                    for (i, session) in shard.iter_mut().enumerate() {
                        session.observe(&observations[offset + i]);
                    }
                });
        });
        self.slot += 1;
    }

    /// Fused step: every session chooses, the `feedback` closure grades the
    /// choice, and the session observes — one parallel traversal, no
    /// per-session allocation. Each shard threads its persistent
    /// [`SlotScratch`] through the [`StepContext`], so feedback closures that
    /// build per-slot structures (e.g. full-information gain vectors) can
    /// reuse buffers across slots instead of allocating. Use this when
    /// feedback for a session depends only on that session's own choice; when
    /// sessions couple (congestion), use [`choose_all`](Self::choose_all) +
    /// [`observe_all`](Self::observe_all).
    pub fn step_with<F>(&mut self, feedback: F)
    where
        F: Fn(&mut StepContext<'_>) -> Observation + Sync,
    {
        let slot = self.slot;
        let shard_size = self.config.shard_size.max(1);
        let shard_count = self.sessions.len().div_ceil(shard_size);
        if self.scratch.len() < shard_count {
            self.scratch.resize_with(shard_count, SlotScratch::default);
        }
        let work: Vec<StepShard<'_>> = self
            .sessions
            .chunks_mut(shard_size)
            .zip(self.last.chunks_mut(shard_size))
            .zip(self.scratch.iter_mut())
            .map(|((shard, last), scratch)| (shard, last, scratch))
            .collect();
        let feedback = &feedback;
        Self::in_pool(&self.pool, || {
            work.into_par_iter().for_each(|(shard, last, scratch)| {
                for (index, session) in shard.iter_mut().enumerate() {
                    let previous = session.last_choice;
                    let chosen = session.choose(slot);
                    last[index] = Some(chosen);
                    let mut context = StepContext {
                        session: session.id,
                        slot,
                        chosen,
                        previous,
                        scratch: &mut *scratch,
                    };
                    let observation = feedback(&mut context);
                    session.observe(&observation);
                    scratch.recycle(observation);
                }
            });
        });
        self.decisions += self.sessions.len() as u64;
        self.slot += 1;
    }

    /// Convenience: runs `slots` fused steps.
    pub fn run_with<F>(&mut self, slots: usize, feedback: F)
    where
        F: Fn(&mut StepContext<'_>) -> Observation + Sync,
    {
        for _ in 0..slots {
            self.step_with(&feedback);
        }
    }

    /// Steps the fleet one slot through an [`Environment`] — the unified
    /// path for coupled-feedback worlds (congestion games, bandwidth
    /// dynamics, mobility, trace replay).
    ///
    /// One slot runs four phases:
    ///
    /// 1. `env.begin_slot` — environment-state advance. Worlds that
    ///    advertise [`feedback_partitions`](Environment::feedback_partitions)
    ///    (with [`FleetConfig::partitioned_feedback`] on and more than one
    ///    worker) get [`Environment::begin_slot_partitioned`] with an
    ///    executor backed by the worker pool instead — the RNG-free
    ///    per-session refresh fans out over the same area partitions as
    ///    feedback, bit-identically;
    /// 2. choose — sharded over rayon workers: each session reads its
    ///    [`SessionView`](smartexp3_core::SessionView), absorbs a visibility
    ///    change if one is reported, and (when active) picks a network with
    ///    its private RNG stream;
    /// 3. feedback — joint-choice → per-session feedback. When the
    ///    environment advertises
    ///    [`feedback_partitions`](Environment::feedback_partitions) (and
    ///    [`FleetConfig::partitioned_feedback`] is on), the engine hands the
    ///    environment a [`PartitionExecutor`] backed by the same worker
    ///    pool, and the environment fans one job per independent area out
    ///    over it; otherwise the sequential [`Environment::feedback`]
    ///    fallback runs on the calling thread;
    /// 4. observe — sharded: every active session ingests its observation
    ///    (and, if the environment asked for top choices, reports its most
    ///    probable network for stable-state recording) before
    ///    `env.end_slot` fires.
    ///
    /// Because per-session randomness lives in per-session streams and all
    /// environment randomness is drawn from environment-owned streams in
    /// canonical session order (one stream per feedback partition on the
    /// partitioned path), the trajectory is **bit-identical at any thread
    /// count and shard size — with partitioned feedback on or off**.
    /// Steady-state stepping allocates nothing per session: joint-choice,
    /// feedback and top-choice buffers persist across slots (a small
    /// O(shard-count) pairing vector is rebuilt per phase, as in
    /// [`step_with`](Self::step_with), and the partitioned feedback path
    /// boxes one job per partition per slot).
    ///
    /// # Panics
    ///
    /// Panics when `env.sessions() != self.len()` — the environment and the
    /// fleet must describe the same session set.
    pub fn step_env(&mut self, env: &mut dyn Environment) {
        self.step_env_with_sink(env, None);
    }

    /// [`step_env`](Self::step_env) with streaming telemetry: after the slot
    /// completes, one [`TelemetryRecord`] — the environment's
    /// [`telemetry`](Environment::telemetry) metrics (empty if the world has
    /// none enabled) plus this slot's [`SlotTiming`] — is delivered to
    /// `sink`, if one is given. The sink is an observer: stepping with or
    /// without one is bit-identical.
    ///
    /// # Panics
    ///
    /// Panics when `env.sessions() != self.len()`, as in
    /// [`step_env`](Self::step_env).
    pub fn step_env_with_sink(
        &mut self,
        env: &mut dyn Environment,
        sink: Option<&mut dyn TelemetrySink>,
    ) {
        assert_eq!(
            env.sessions(),
            self.sessions.len(),
            "environment describes {} sessions, fleet hosts {}",
            env.sessions(),
            self.sessions.len()
        );
        let slot = self.slot;
        let shard_size = self.config.shard_size.max(1);
        let count = self.sessions.len();
        let workers = match &self.pool {
            Some(pool) => pool.current_num_threads(),
            None => rayon::current_num_threads(),
        };
        // Partitioned worlds may fan both the slot-begin refresh (phase 1)
        // and the joint feedback (phase 3) out over the worker pool; the
        // gate is shared so the two phases always agree.
        let partitioned =
            self.config.partitioned_feedback && workers > 1 && env.feedback_partitions().is_some();
        let phase_start = Instant::now();
        if partitioned {
            let executor = PoolExecutor { pool: &self.pool };
            env.begin_slot_partitioned(slot, &executor);
        } else {
            env.begin_slot(slot);
        }
        let begin_slot_s = phase_start.elapsed().as_secs_f64();
        let phase_start = Instant::now();

        // Phase 2: choose (parallel).
        if self.env_choices.len() != count {
            self.env_choices.resize(count, None);
        }
        {
            let env_view: &dyn Environment = env;
            let work: Vec<ChooseShard<'_>> = self
                .sessions
                .chunks_mut(shard_size)
                .zip(self.env_choices.chunks_mut(shard_size))
                .zip(self.last.chunks_mut(shard_size))
                .enumerate()
                .map(|(shard, ((sessions, choices), last))| {
                    (shard * shard_size, sessions, choices, last)
                })
                .collect();
            Self::in_pool(&self.pool, || {
                work.into_par_iter()
                    .for_each(|(offset, shard, choices, last)| {
                        for (i, session) in shard.iter_mut().enumerate() {
                            let view = env_view.session_view(offset + i, slot);
                            if let Some(networks) = view.networks_changed {
                                session
                                    .policy
                                    .on_networks_changed(networks, &mut session.rng);
                            }
                            choices[i] = if view.active {
                                let chosen = session.choose(slot);
                                last[i] = Some(chosen);
                                Some(chosen)
                            } else {
                                None
                            };
                        }
                    });
            });
        }
        let active = self.env_choices.iter().flatten().count() as u64;
        let choose_s = phase_start.elapsed().as_secs_f64();
        let phase_start = Instant::now();

        // Phase 3: joint feedback. Partitioned worlds fan their independent
        // areas out over the worker pool; everything else — including any
        // world on a single-worker pool, where job dispatch is pure
        // overhead — runs the sequential fallback on this thread. The two
        // paths are bit-identical by the partition contract, so this is a
        // wall-clock decision only.
        if self.env_feedback.len() != count {
            self.env_feedback.resize(count, None);
        }
        if partitioned {
            let executor = PoolExecutor { pool: &self.pool };
            env.feedback_partitioned(slot, &self.env_choices, &mut self.env_feedback, &executor);
        } else {
            env.feedback(slot, &self.env_choices, &mut self.env_feedback);
        }
        // Structural guard: a session that did not choose must not observe.
        // The feedback buffer persists across slots (so environments can
        // scavenge allocations), which means an environment that forgets to
        // write `None` for an inactive session would otherwise re-deliver
        // that session's stale observation from an earlier slot.
        for (choice, feedback) in self.env_choices.iter().zip(self.env_feedback.iter_mut()) {
            if choice.is_none() {
                *feedback = None;
            }
        }
        let feedback_s = phase_start.elapsed().as_secs_f64();
        let phase_start = Instant::now();

        // Phase 4: observe (parallel), then the end-of-slot hook. Sessions in
        // a cooperative environment additionally hear their neighbourhood's
        // gossip digest (copied into the shard's recycled scratch buffer) and
        // fold it in via `Policy::observe_shared`.
        let wants_tops = env.wants_top_choices();
        let shares_feedback = env.shares_feedback();
        if self.env_tops.len() != count {
            self.env_tops.resize(count, None);
        }
        let shard_count = count.div_ceil(shard_size);
        if self.scratch.len() < shard_count {
            self.scratch.resize_with(shard_count, SlotScratch::default);
        }
        {
            let env_view: &dyn Environment = env;
            let feedback = &self.env_feedback;
            let work: Vec<ObserveShard<'_>> = self
                .sessions
                .chunks_mut(shard_size)
                .zip(self.env_tops.chunks_mut(shard_size))
                .zip(self.scratch.iter_mut())
                .enumerate()
                .map(|(shard, ((sessions, tops), scratch))| {
                    (shard * shard_size, sessions, tops, scratch)
                })
                .collect();
            Self::in_pool(&self.pool, || {
                work.into_par_iter()
                    .for_each(|(offset, shard, tops, scratch)| {
                        for (i, session) in shard.iter_mut().enumerate() {
                            let Some(observation) = &feedback[offset + i] else {
                                if wants_tops {
                                    tops[i] = None;
                                }
                                continue;
                            };
                            session.observe(observation);
                            if shares_feedback
                                && env_view.shared_feedback_into(offset + i, &mut scratch.shared)
                            {
                                session
                                    .policy
                                    .observe_shared(&scratch.shared, &mut session.rng);
                            }
                            if wants_tops {
                                session
                                    .policy
                                    .probabilities_into(&mut scratch.probabilities);
                                tops[i] = scratch
                                    .probabilities
                                    .iter()
                                    .copied()
                                    .max_by(|a, b| a.1.total_cmp(&b.1));
                            }
                        }
                    });
            });
        }
        let tops: &[Option<(NetworkId, f64)>] = if wants_tops { &self.env_tops } else { &[] };
        env.end_slot(slot, &self.env_choices, tops);
        let observe_s = phase_start.elapsed().as_secs_f64();

        let timing = SlotTiming {
            begin_slot_s,
            choose_s,
            feedback_s,
            observe_s,
        };
        self.last_timing = Some(timing);
        if let Some(sink) = sink {
            sink.record(&TelemetryRecord {
                slot,
                active,
                metrics: env.telemetry().cloned().unwrap_or_default(),
                timing,
            });
        }

        self.decisions += active;
        self.slot += 1;
    }

    /// Convenience: runs `slots` environment-driven steps.
    pub fn run_env(&mut self, env: &mut dyn Environment, slots: usize) {
        for _ in 0..slots {
            self.step_env(env);
        }
    }

    /// Runs `slots` environment-driven steps, streaming one
    /// [`TelemetryRecord`] per slot into `sink` (see
    /// [`step_env_with_sink`](Self::step_env_with_sink)).
    pub fn run_env_with_sink(
        &mut self,
        env: &mut dyn Environment,
        slots: usize,
        sink: &mut dyn TelemetrySink,
    ) {
        for _ in 0..slots {
            self.step_env_with_sink(env, Some(&mut *sink));
        }
    }

    /// Wall-clock phase breakdown of the most recent
    /// [`step_env`](Self::step_env) slot, or `None` before the first
    /// environment-driven step. Host timing only — excluded from the
    /// determinism contract and from snapshots.
    #[must_use]
    pub fn last_slot_timing(&self) -> Option<SlotTiming> {
        self.last_timing
    }

    /// Broadcasts a network-set change to every session (e.g. AP churn in the
    /// area the fleet simulates). Never panics: policies that do not support
    /// dynamism keep their state (see [`Policy::on_networks_changed`]).
    pub fn networks_changed(&mut self, available: &[NetworkId]) {
        let shard_size = self.config.shard_size.max(1);
        let sessions = &mut self.sessions;
        Self::in_pool(&self.pool, || {
            sessions.par_chunks_mut(shard_size).for_each(|shard| {
                for session in shard {
                    session
                        .policy
                        .on_networks_changed(available, &mut session.rng);
                }
            });
        });
    }

    /// The most recent choice of every session, in session order (`None`
    /// entries for sessions that have not chosen yet). Zero-alloc: returns a
    /// view of a buffer the step paths keep up to date.
    #[must_use]
    pub fn last_choices(&self) -> &[Option<NetworkId>] {
        &self.last
    }

    /// The policy of session `index` (in session order), for read-only
    /// inspection (name, stats, probabilities).
    #[must_use]
    pub fn policy(&self, index: usize) -> Option<&dyn Policy> {
        self.sessions.get(index).map(|s| &*s.policy)
    }

    /// Aggregates fleet-wide metrics.
    ///
    /// Sessions are folded **in session order**, so the floating-point gain
    /// totals are identical across runs and thread counts.
    #[must_use]
    pub fn metrics(&self) -> FleetMetrics {
        let mut per_kind: Vec<(PolicyKind, KindMetrics)> = Vec::new();
        let mut switches = 0u64;
        let mut resets = 0u64;
        for session in &self.sessions {
            let stats = session.policy.stats();
            switches += stats.switches;
            resets += stats.resets;
            let entry = match per_kind.iter_mut().find(|(k, _)| *k == session.kind) {
                Some((_, entry)) => entry,
                None => {
                    per_kind.push((session.kind, KindMetrics::default()));
                    &mut per_kind.last_mut().expect("just pushed").1
                }
            };
            entry.sessions += 1;
            entry.policy.switches += stats.switches;
            entry.policy.blocks += stats.blocks;
            entry.policy.resets += stats.resets;
            entry.policy.switch_backs += stats.switch_backs;
            entry.policy.greedy_selections += stats.greedy_selections;
            entry.policy.explorations += stats.explorations;
            entry.policy.shared_observations += stats.shared_observations;
            entry.gains.merge(&session.gains);
        }
        per_kind.sort_by_key(|(kind, _)| PolicyKind::all().iter().position(|k| k == kind));
        FleetMetrics {
            sessions: self.sessions.len(),
            slot: self.slot,
            decisions: self.decisions,
            switches,
            resets,
            per_kind,
        }
    }

    /// Captures the whole fleet for checkpointing.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::UnsupportedPolicy`] when any session runs the
    /// centralized oracle (its state lives in the shared coordinator).
    pub fn snapshot(&self) -> Result<FleetSnapshot, SnapshotError> {
        let mut sessions = Vec::with_capacity(self.sessions.len());
        for session in &self.sessions {
            let policy = session
                .policy
                .state()
                .ok_or(SnapshotError::UnsupportedPolicy {
                    session: session.id,
                    kind: session.kind,
                })?;
            sessions.push(SessionSnapshot {
                id: session.id.0,
                kind: session.kind,
                policy,
                rng: session.rng.state(),
                gains: session.gains.clone(),
                last_choice: session.last_choice,
            });
        }
        Ok(FleetSnapshot {
            version: SNAPSHOT_VERSION,
            config: self.config.clone(),
            slot: self.slot,
            next_id: self.next_id,
            decisions: self.decisions,
            sessions,
            environment: None,
        })
    }

    /// Captures the fleet **and** the environment it is being stepped
    /// through, so the pair can resume bit-identically mid-scenario —
    /// pending bandwidth events, mobility positions and the environment RNG
    /// included.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Environment`] when the environment does not
    /// support checkpointing, plus every error [`snapshot`](Self::snapshot)
    /// can produce.
    pub fn snapshot_env(&self, env: &dyn Environment) -> Result<FleetSnapshot, SnapshotError> {
        let state = env.state().ok_or_else(|| {
            SnapshotError::Environment("environment does not support checkpointing".to_string())
        })?;
        let mut snapshot = self.snapshot()?;
        snapshot.environment = Some(state);
        Ok(snapshot)
    }

    /// Restores a fleet from a snapshot taken with
    /// [`snapshot_env`](Self::snapshot_env), applying the embedded
    /// environment state to `env` (a freshly built environment with the same
    /// static configuration).
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Environment`] when the snapshot carries no
    /// environment state or the environment rejects it, plus every error
    /// [`from_snapshot`](Self::from_snapshot) can produce.
    pub fn from_snapshot_env(
        snapshot: FleetSnapshot,
        env: &mut dyn Environment,
    ) -> Result<Self, SnapshotError> {
        // Validate everything that can fail *before* mutating the live
        // environment — a rejected snapshot must leave `env` untouched.
        if snapshot.version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(snapshot.version));
        }
        let state = snapshot.environment.as_deref().ok_or_else(|| {
            SnapshotError::Environment("snapshot carries no environment state".to_string())
        })?;
        env.restore(state)
            .map_err(|error| SnapshotError::Environment(error.to_string()))?;
        Self::from_snapshot(snapshot)
    }

    /// Restores a fleet from a snapshot. The restored fleet continues
    /// bit-identically to the fleet the snapshot was taken from.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::UnsupportedVersion`] for snapshots from an
    /// incompatible engine version.
    pub fn from_snapshot(snapshot: FleetSnapshot) -> Result<Self, SnapshotError> {
        if snapshot.version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(snapshot.version));
        }
        let mut engine = FleetEngine::new(snapshot.config);
        engine.slot = snapshot.slot;
        engine.next_id = snapshot.next_id;
        engine.decisions = snapshot.decisions;
        engine.sessions = snapshot
            .sessions
            .into_iter()
            .map(|s| Session {
                id: SessionId(s.id),
                kind: s.kind,
                policy: s.policy.into_policy(),
                rng: StdRng::from_state(s.rng),
                gains: s.gains,
                last_choice: s.last_choice,
            })
            .collect();
        engine.last = engine.sessions.iter().map(|s| s.last_choice).collect();
        Ok(engine)
    }

    /// Serializes a snapshot of the fleet to JSON text.
    ///
    /// # Errors
    ///
    /// Propagates [`snapshot`](Self::snapshot) errors.
    pub fn to_json(&self) -> Result<String, SnapshotError> {
        let snapshot = self.snapshot()?;
        serde_json::to_string(&snapshot).map_err(|e| SnapshotError::Malformed(e.to_string()))
    }

    /// Restores a fleet from JSON text produced by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Malformed`] on parse failures and
    /// [`SnapshotError::UnsupportedVersion`] on version mismatches.
    pub fn from_json(text: &str) -> Result<Self, SnapshotError> {
        // Probe the version first: snapshots from other engine releases may
        // have a different field set (version 2 lacks `environment`), and
        // the accurate diagnostic for those is UnsupportedVersion, not a
        // missing-field parse error.
        #[derive(Deserialize)]
        struct VersionProbe {
            version: u32,
        }
        let probe: VersionProbe =
            serde_json::from_str(text).map_err(|e| SnapshotError::Malformed(e.to_string()))?;
        if probe.version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(probe.version));
        }
        let snapshot: FleetSnapshot =
            serde_json::from_str(text).map_err(|e| SnapshotError::Malformed(e.to_string()))?;
        Self::from_snapshot(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartexp3_core::Observation;

    fn rates() -> Vec<(NetworkId, f64)> {
        vec![
            (NetworkId(0), 4.0),
            (NetworkId(1), 7.0),
            (NetworkId(2), 22.0),
        ]
    }

    fn feedback(ctx: &mut StepContext<'_>) -> Observation {
        // Deterministic per-session environment: network 2 is best, with a
        // session-dependent wobble so sessions do not all look identical.
        let wobble = (ctx.session.0 % 7) as f64 / 100.0;
        let gain = if ctx.chosen == NetworkId(2) {
            0.85 - wobble
        } else {
            0.2 + wobble
        };
        let mut obs = Observation::bandit(ctx.slot, ctx.chosen, gain * 22.0, gain);
        if ctx.previous.is_some_and(|p| p != ctx.chosen) {
            obs = obs.with_switch(0.5);
        }
        obs
    }

    fn build_fleet(threads: Option<usize>, shard_size: usize, sessions: usize) -> FleetEngine {
        let mut config = FleetConfig::with_root_seed(42).with_shard_size(shard_size);
        config.threads = threads;
        let mut factory = PolicyFactory::new(rates()).unwrap();
        let mut fleet = FleetEngine::new(config);
        fleet
            .add_fleet(&mut factory, PolicyKind::SmartExp3, sessions / 2)
            .unwrap();
        fleet
            .add_fleet(&mut factory, PolicyKind::Exp3, sessions / 4)
            .unwrap();
        fleet
            .add_fleet(
                &mut factory,
                PolicyKind::Greedy,
                sessions - sessions / 2 - sessions / 4,
            )
            .unwrap();
        fleet
    }

    #[test]
    fn session_streams_are_decorrelated() {
        use rand::RngCore;
        let mut a = session_rng(1, SessionId(0));
        let mut b = session_rng(1, SessionId(1));
        let mut c = session_rng(2, SessionId(0));
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        assert_ne!(xs, (0..4).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert_ne!(xs, (0..4).map(|_| c.next_u64()).collect::<Vec<_>>());
        // The (root, id) combine must not be symmetric: fleet 1's session 2
        // and fleet 2's session 1 are different streams.
        let mut d = session_rng(1, SessionId(2));
        let mut e = session_rng(2, SessionId(1));
        assert_ne!(
            (0..4).map(|_| d.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| e.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn two_phase_and_fused_stepping_agree() {
        let mut fused = build_fleet(Some(2), 16, 100);
        let mut phased = build_fleet(Some(2), 16, 100);
        for _ in 0..30 {
            fused.step_with(feedback);

            let slot = phased.slot();
            let previous = phased.last_choices().to_vec();
            let choices = phased.choose_all().to_vec();
            let mut scratch = SlotScratch::new();
            let observations: Vec<Observation> = choices
                .iter()
                .enumerate()
                .map(|(i, &chosen)| {
                    feedback(&mut StepContext {
                        session: SessionId(i as u64),
                        slot,
                        chosen,
                        previous: previous[i],
                        scratch: &mut scratch,
                    })
                })
                .collect();
            phased.observe_all(&observations);
        }
        assert_eq!(fused.metrics(), phased.metrics());
    }

    #[test]
    fn metrics_aggregate_per_kind() {
        let mut fleet = build_fleet(Some(1), 32, 80);
        fleet.run_with(50, feedback);
        let metrics = fleet.metrics();
        assert_eq!(metrics.sessions, 80);
        assert_eq!(metrics.decisions, 50 * 80);
        assert_eq!(metrics.slot, 50);
        let smart = metrics.kind(PolicyKind::SmartExp3).unwrap();
        assert_eq!(smart.sessions, 40);
        assert!(smart.mean_gain() > 0.0);
        assert_eq!(
            smart.gains.total_slots(),
            50 * 40,
            "every smart session records every slot"
        );
        // Per-kind order follows PolicyKind::all().
        let kinds: Vec<PolicyKind> = metrics.per_kind.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            kinds,
            vec![PolicyKind::Exp3, PolicyKind::SmartExp3, PolicyKind::Greedy]
        );
        let display = metrics.to_string();
        assert!(display.contains("80 sessions"));
        assert!(display.contains("Smart EXP3"));
    }

    #[test]
    fn scratch_full_gains_buffers_are_recycled() {
        let mut factory = PolicyFactory::new(rates()).unwrap();
        let mut fleet = FleetEngine::new(FleetConfig::with_root_seed(9).with_threads(1));
        fleet
            .add_fleet(&mut factory, PolicyKind::FullInformation, 8)
            .unwrap();
        for _ in 0..30 {
            fleet.step_with(|ctx| {
                let mut gains = ctx.scratch.full_gains_buffer();
                assert!(gains.is_empty(), "recycled buffer must come back clean");
                gains.extend([
                    (NetworkId(0), 0.2),
                    (NetworkId(1), 0.3),
                    (NetworkId(2), 0.9),
                ]);
                let gain = if ctx.chosen == NetworkId(2) {
                    0.9
                } else {
                    0.25
                };
                Observation::bandit(ctx.slot, ctx.chosen, gain * 22.0, gain).with_full_gains(gains)
            });
        }
        let metrics = fleet.metrics();
        assert_eq!(metrics.decisions, 30 * 8);
        let full = metrics.kind(PolicyKind::FullInformation).unwrap();
        assert!(full.mean_gain() > 0.0);
    }

    #[test]
    fn centralized_sessions_cannot_snapshot() {
        let mut factory = PolicyFactory::new(rates()).unwrap();
        let mut fleet = FleetEngine::new(FleetConfig::default());
        fleet
            .add_fleet(&mut factory, PolicyKind::Centralized, 3)
            .unwrap();
        match fleet.snapshot() {
            Err(SnapshotError::UnsupportedPolicy { kind, .. }) => {
                assert_eq!(kind, PolicyKind::Centralized);
            }
            other => panic!("expected UnsupportedPolicy, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_version_is_checked() {
        let fleet = build_fleet(Some(1), 8, 4);
        let mut snapshot = fleet.snapshot().unwrap();
        snapshot.version = 999;
        match FleetEngine::from_snapshot(snapshot) {
            Err(SnapshotError::UnsupportedVersion(999)) => {}
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
        assert!(FleetEngine::from_json("{not json").is_err());
        // Previous-release texts (version 2 lacks the `environment` field,
        // version 3 lacks the cooperative-feedback counters in its policy
        // states, version 4 lacks the partitioned-feedback config switch,
        // version 5 lacks the per-policy sampler strategy) must be diagnosed
        // as unsupported versions, not malformed.
        for version in [2u32, 3, 4, 5] {
            match FleetEngine::from_json(&format!("{{\"version\":{version},\"sessions\":[]}}")) {
                Err(SnapshotError::UnsupportedVersion(v)) if v == version => {}
                other => panic!("expected UnsupportedVersion({version}), got {other:?}"),
            }
        }
    }

    #[test]
    fn networks_changed_never_panics_and_retargets() {
        let mut fleet = build_fleet(Some(2), 8, 40);
        fleet.run_with(10, feedback);
        // Network 2 disappears; no session may panic, adaptive policies
        // must stop choosing it.
        let remaining = [NetworkId(0), NetworkId(1)];
        fleet.networks_changed(&remaining);
        fleet.step_with(|ctx| {
            let gain = 0.4;
            Observation::bandit(ctx.slot, ctx.chosen, gain * 22.0, gain)
        });
        for (session, choice) in fleet.sessions.iter().zip(fleet.last_choices().iter()) {
            if matches!(session.kind, PolicyKind::SmartExp3 | PolicyKind::Greedy) {
                assert!(
                    remaining.contains(&choice.unwrap()),
                    "{} still on a vanished network",
                    session.id
                );
            }
        }
    }
}
