//! # smartexp3-engine
//!
//! A high-throughput **fleet engine**: hosts thousands to millions of
//! independent bandit sessions — each a [`Policy`] from `smartexp3-core`
//! plus its own deterministic RNG stream — and steps them in parallel with
//! batched APIs.
//!
//! ## Fleet lanes
//!
//! Sessions are stored in contiguous homogeneous **lane segments**: fleets
//! built through [`FleetEngine::add_fleet`] keep EXP3-family policies as
//! concrete values (`Vec<LaneSession<Exp3>>` / `Vec<LaneSession<SmartExp3>>`)
//! laid out back-to-back in session order, and every per-slot phase loop is
//! monomorphized per lane — no `Box` pointer-chase, no vtable call per
//! decision. Everything else (baselines, oracles, third-party policies via
//! [`FleetEngine::add_session`], or any fleet with
//! [`FleetConfig::fleet_lanes`] off) runs on the **boxed fallback lane**,
//! which executes the exact same generic loop bodies through `Box<dyn
//! Policy>`. Lane routing is a storage decision only: each session keeps its
//! private RNG stream and runs the same policy code, so a lane fleet is
//! **bit-identical** to an all-boxed fleet — same decisions, same snapshot
//! bytes (up to the recorded config flag), at any thread count.
//!
//! ## Seeding model
//!
//! A fleet is created from a single **root seed**. Every session draws its
//! decisions from a private [`StdRng`] stream derived as
//! `mix(root_seed, session_id)` (a SplitMix64-style avalanche over both
//! words), so:
//!
//! * sessions never share RNG state — there is no cross-session ordering
//!   dependency, which is what makes sharded parallel stepping legal;
//! * the fleet's results are a pure function of `(root seed, session ids,
//!   observations)` — **identical at any thread count and shard size**;
//! * snapshots only need each stream's 256-bit state to resume bit-exactly.
//!
//! ## Batched stepping
//!
//! [`FleetEngine::choose_all`] / [`FleetEngine::observe_all`] run one slot in
//! two phases (useful when feedback couples sessions, e.g. congestion
//! sharing), while [`FleetEngine::step_with`] fuses both into a single
//! parallel traversal for independent-feedback workloads. Sessions are
//! processed in shards of [`FleetConfig::shard_size`] distributed over rayon
//! workers.
//!
//! ## Checkpointing
//!
//! [`FleetEngine::snapshot`] captures every session (policy learning state
//! via [`PolicyState`], RNG stream state, gain statistics) into a serde tree
//! that [`FleetEngine::from_snapshot`] restores **bit-identically**: a
//! restored fleet produces exactly the trajectory the original would have.
//! [`FleetEngine::to_json`] / [`FleetEngine::from_json`] wrap that in a
//! stable text format.
//!
//! ```rust
//! use smartexp3_core::{NetworkId, Observation, PolicyFactory, PolicyKind};
//! use smartexp3_engine::{FleetConfig, FleetEngine};
//!
//! # fn main() -> Result<(), smartexp3_core::ConfigError> {
//! let mut factory = PolicyFactory::new(vec![
//!     (NetworkId(0), 4.0),
//!     (NetworkId(1), 7.0),
//!     (NetworkId(2), 22.0),
//! ])?;
//! let mut fleet = FleetEngine::new(FleetConfig::with_root_seed(7));
//! fleet.add_fleet(&mut factory, PolicyKind::SmartExp3, 1000)?;
//! for _ in 0..50 {
//!     fleet.step_with(|ctx| {
//!         let gain = if ctx.chosen == NetworkId(2) { 0.9 } else { 0.2 };
//!         Observation::bandit(ctx.slot, ctx.chosen, gain * 22.0, gain)
//!     });
//! }
//! let metrics = fleet.metrics();
//! assert_eq!(metrics.decisions, 50 * 1000);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use rayon::{ThreadPool, ThreadPoolBuilder};
use serde::{Deserialize, Serialize};
use smartexp3_core::{
    splitmix64, ConfigError, Environment, Exp3, FleetPolicies, NetworkId, NetworkStats,
    Observation, PartitionExecutor, PartitionJob, Policy, PolicyFactory, PolicyKind, PolicyState,
    PolicyStats, SharedFeedback, SlotIndex, SmartExp3,
};
use smartexp3_telemetry::{
    Histogram, LatencyStats, SamplerCounters, SlotTiming, TelemetryRecord, TelemetrySink,
};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::time::Instant;

/// Identifier of one session (one simulated device) within a fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session#{}", self.0)
    }
}

/// Configuration of a [`FleetEngine`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Root seed from which every session's RNG stream is derived.
    pub root_seed: u64,
    /// Sessions per shard (the unit of work handed to a rayon worker).
    ///
    /// Larger shards amortise scheduling overhead; smaller shards balance
    /// load better. The default of 1024 keeps per-shard step cost in the
    /// tens-of-microseconds range for slot-level policies. Results are
    /// independent of this value.
    pub shard_size: usize,
    /// Worker threads for batched stepping. `None` uses the machine's
    /// available parallelism; `Some(1)` forces sequential stepping. Results
    /// are independent of this value.
    pub threads: Option<usize>,
    /// Whether [`FleetEngine::step_env`] fans the feedback phase out over
    /// the worker pool when the environment advertises feedback partitions
    /// (the default). `false` forces the sequential
    /// [`Environment::feedback`] fallback — useful for measuring the
    /// speedup. On a single-worker pool the engine always takes the
    /// sequential path (fan-out would be pure dispatch overhead). Results
    /// are independent of this value by the partition contract.
    pub partitioned_feedback: bool,
    /// Whether [`FleetEngine::add_fleet`] routes EXP3-family policies into
    /// homogeneous **fleet lanes** — contiguous, monomorphized per-kind
    /// storage stepped with static dispatch (the default). `false` forces
    /// every session onto the boxed fallback lane, reproducing the
    /// historical `Vec<Box<dyn Policy>>` layout — useful for measuring the
    /// lane speedup. Lanes hold the same policy states and per-session RNG
    /// streams as boxes, so results are independent of this value.
    pub fleet_lanes: bool,
    /// Whether the event-driven path records per-decision wake-to-decision
    /// latency histograms (the default). The measurement costs one
    /// monotonic-clock read per decision — on par with an alias-table draw
    /// itself — so throughput benches that A/B samplers turn it off.
    /// `false` makes [`FleetEngine::last_wake_latency`] return `None` and
    /// cohort telemetry records carry no latency percentiles. Latency is
    /// host timing, outside all determinism contracts: results are
    /// independent of this value.
    pub wake_latency: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            root_seed: 0,
            shard_size: 1024,
            threads: None,
            partitioned_feedback: true,
            fleet_lanes: true,
            wake_latency: true,
        }
    }
}

impl FleetConfig {
    /// Configuration with the given root seed and default parallelism.
    #[must_use]
    pub fn with_root_seed(root_seed: u64) -> Self {
        FleetConfig {
            root_seed,
            ..FleetConfig::default()
        }
    }

    /// Overrides the worker thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Overrides the shard size (clamped to ≥ 1).
    #[must_use]
    pub fn with_shard_size(mut self, shard_size: usize) -> Self {
        self.shard_size = shard_size.max(1);
        self
    }

    /// Enables or disables the partitioned feedback phase (on by default).
    #[must_use]
    pub fn with_partitioned_feedback(mut self, partitioned: bool) -> Self {
        self.partitioned_feedback = partitioned;
        self
    }

    /// Enables or disables the monomorphized fleet lanes (on by default);
    /// see [`FleetConfig::fleet_lanes`].
    #[must_use]
    pub fn with_fleet_lanes(mut self, lanes: bool) -> Self {
        self.fleet_lanes = lanes;
        self
    }

    /// Enables or disables per-decision wake-latency histograms on the
    /// event-driven path (on by default); see
    /// [`FleetConfig::wake_latency`].
    #[must_use]
    pub fn with_wake_latency(mut self, wake_latency: bool) -> Self {
        self.wake_latency = wake_latency;
        self
    }

    /// Derives the seed for an [`Environment`]'s own RNG from this fleet's
    /// root seed — a stream kept distinct (by an odd-multiplier avalanche
    /// over a different constant) from every per-session stream
    /// [`session_rng`] derives, so environment randomness never correlates
    /// with any session's decisions. Scenario builders use this so a fleet
    /// and its world are reproducible from the one root seed.
    #[must_use]
    pub fn environment_seed(&self) -> u64 {
        self.root_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0xE489_21FB_5D5C_91F3)
    }
}

/// Derives session `id`'s private RNG stream from the fleet's root seed.
///
/// Exposed so external drivers (benches, analysis tools) can reproduce a
/// single session's stream without instantiating a fleet.
#[must_use]
pub fn session_rng(root_seed: u64, id: SessionId) -> StdRng {
    // Avalanche the root, decorrelate nearby ids with an odd-constant
    // multiply, and avalanche the combination; the result seeds the
    // generator's full 256-bit state through `seed_from_u64`'s own SplitMix64
    // expansion. The combine is deliberately asymmetric in (root, id) so
    // fleet A's session B never shares a stream with fleet B's session A.
    let mixed = splitmix64(root_seed) ^ id.0.wrapping_mul(0xA24B_AED4_963E_E407);
    StdRng::seed_from_u64(splitmix64(mixed))
}

/// One hosted session: a policy plus its private RNG stream and statistics.
///
/// `P` is the policy storage: a concrete EXP3-family type on the
/// monomorphized fleet lanes (the policy lives *inline* in the lane's `Vec`,
/// so a shard walk is a linear scan), or `Box<dyn Policy>` on the fallback
/// lane. `Box<dyn Policy>` implements [`Policy`] by delegation, so every
/// phase loop is written once, generically.
struct LaneSession<P> {
    id: SessionId,
    kind: PolicyKind,
    policy: P,
    rng: StdRng,
    /// Per-session gain statistics ([`NetworkStats`]), merged into fleet-wide
    /// per-kind aggregates by [`FleetEngine::metrics`].
    gains: NetworkStats,
    /// The network chosen for the slot currently in flight (or the most
    /// recently completed one).
    last_choice: Option<NetworkId>,
}

impl<P: Policy> LaneSession<P> {
    fn choose(&mut self, slot: SlotIndex) -> NetworkId {
        let chosen = self.policy.choose(slot, &mut self.rng);
        self.last_choice = Some(chosen);
        chosen
    }

    fn observe(&mut self, observation: &Observation) {
        self.gains
            .record_slot(observation.network, observation.scaled_gain);
        self.policy.observe(observation, &mut self.rng);
    }
}

/// A contiguous run of same-storage sessions, in global session order.
///
/// Sessions added consecutively with the same storage type extend the last
/// segment; a storage change starts a new one. Segments therefore partition
/// the global session index space into contiguous ranges by construction,
/// which is what lets the engine hand each rayon worker a plain sub-slice of
/// a lane plus the matching sub-slices of the global per-session buffers —
/// no scatter indices, no `unsafe`.
enum LaneSegment {
    /// Monomorphized lane: slot-level EXP3, stored inline.
    Exp3(Vec<LaneSession<Exp3>>),
    /// Monomorphized lane: Smart EXP3 (the full algorithm and all feature
    /// ablations are one concrete type), stored inline.
    Smart(Vec<LaneSession<SmartExp3>>),
    /// Fallback lane: anything behind `Box<dyn Policy>` (baselines, oracles,
    /// third-party policies, or entire fleets with
    /// [`FleetConfig::fleet_lanes`] off).
    Boxed(Vec<LaneSession<Box<dyn Policy>>>),
}

/// A shard — at most `shard_size` contiguous sessions of one segment —
/// handed to a rayon worker. The variant is matched **once per shard**, so
/// the per-session loop body inside is statically dispatched for the
/// monomorphized lanes.
enum ShardSessions<'a> {
    /// Shard of an [`LaneSegment::Exp3`] lane.
    Exp3(&'a mut [LaneSession<Exp3>]),
    /// Shard of a [`LaneSegment::Smart`] lane.
    Smart(&'a mut [LaneSession<SmartExp3>]),
    /// Shard of the boxed fallback lane.
    Boxed(&'a mut [LaneSession<Box<dyn Policy>>]),
}

impl LaneSegment {
    fn len(&self) -> usize {
        match self {
            LaneSegment::Exp3(lane) => lane.len(),
            LaneSegment::Smart(lane) => lane.len(),
            LaneSegment::Boxed(lane) => lane.len(),
        }
    }

    /// Splits the segment into shard-sized session runs (the final shard may
    /// be shorter), wrapped for once-per-shard lane dispatch.
    fn shards(&mut self, shard_size: usize) -> Vec<ShardSessions<'_>> {
        match self {
            LaneSegment::Exp3(lane) => lane
                .chunks_mut(shard_size)
                .map(ShardSessions::Exp3)
                .collect(),
            LaneSegment::Smart(lane) => lane
                .chunks_mut(shard_size)
                .map(ShardSessions::Smart)
                .collect(),
            LaneSegment::Boxed(lane) => lane
                .chunks_mut(shard_size)
                .map(ShardSessions::Boxed)
                .collect(),
        }
    }
}

/// Runs `$body` with `$sessions` bound to the shard's typed session slice.
/// The match happens once per shard, so `$body` is monomorphized per lane:
/// static dispatch (and cross-call inlining) on the EXP3/Smart lanes, the
/// historical vtable path on the boxed fallback lane.
macro_rules! with_lane {
    ($shard:expr, |$sessions:ident| $body:expr) => {
        match $shard {
            ShardSessions::Exp3($sessions) => $body,
            ShardSessions::Smart($sessions) => $body,
            ShardSessions::Boxed($sessions) => $body,
        }
    };
}

/// Iterates every session of every segment in global session order, binding
/// `$session` to a `&`/`&mut LaneSession<_>` per the borrow of `$segments`.
/// Used by the sequential cold paths (metrics, snapshot, broadcast).
macro_rules! for_each_lane_session {
    ($segments:expr, |$session:ident| $body:expr) => {
        for segment in $segments {
            match segment {
                LaneSegment::Exp3(lane) => {
                    for $session in lane {
                        $body
                    }
                }
                LaneSegment::Smart(lane) => {
                    for $session in lane {
                        $body
                    }
                }
                LaneSegment::Boxed(lane) => {
                    for $session in lane {
                        $body
                    }
                }
            }
        }
    };
}

/// Reusable per-shard buffers for batched stepping.
///
/// One `SlotScratch` lives per shard, persists across slots, and is handed to
/// the feedback closure through [`StepContext::scratch`], so grading a slot
/// never has to allocate: a closure that attaches counterfactual
/// full-information gains takes the buffer with
/// [`full_gains_buffer`](Self::full_gains_buffer), and the engine reclaims
/// the allocation from the observation after the session has consumed it.
#[derive(Debug, Default)]
pub struct SlotScratch {
    /// Recycled backing storage for [`Observation::full_gains`].
    full_gains: Vec<(NetworkId, f64)>,
    /// Recycled distribution read buffer (top-choice extraction for
    /// environments whose recorders track stable states).
    probabilities: Vec<(NetworkId, f64)>,
    /// Recycled shared-feedback digest buffer: cooperative environments copy
    /// the gossip digest a session can hear into this buffer during the
    /// observe phase, so delivering shared feedback allocates nothing in
    /// steady state.
    shared: SharedFeedback,
}

impl SlotScratch {
    /// Creates an empty scratch space.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes the recycled full-gains buffer (cleared, capacity preserved).
    /// Attach the filled buffer to the returned [`Observation`] via
    /// [`Observation::with_full_gains`]; the engine recovers the allocation
    /// after the observation has been consumed.
    #[must_use]
    pub fn full_gains_buffer(&mut self) -> Vec<(NetworkId, f64)> {
        let mut buffer = std::mem::take(&mut self.full_gains);
        buffer.clear();
        buffer
    }

    /// Reclaims recyclable allocations from a consumed observation.
    fn recycle(&mut self, observation: Observation) {
        if let Some(mut gains) = observation.full_gains {
            gains.clear();
            self.full_gains = gains;
        }
    }
}

/// Everything [`FleetEngine::step_with`] tells the feedback closure about the
/// decision it must grade, plus the shard's reusable scratch space.
#[derive(Debug)]
pub struct StepContext<'a> {
    /// The deciding session.
    pub session: SessionId,
    /// The slot being stepped.
    pub slot: SlotIndex,
    /// The network the session chose for this slot.
    pub chosen: NetworkId,
    /// The network the session used in the previous slot (`None` on its
    /// first slot), for switch accounting.
    pub previous: Option<NetworkId>,
    /// The shard's reusable buffers (see [`SlotScratch`]).
    pub scratch: &'a mut SlotScratch,
}

/// Aggregate behaviour of every session of one [`PolicyKind`] in the fleet.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KindMetrics {
    /// Number of sessions running this kind.
    pub sessions: usize,
    /// Summed behavioural counters of those sessions.
    pub policy: PolicyStats,
    /// Per-network gain statistics summed over those sessions.
    pub gains: NetworkStats,
}

impl KindMetrics {
    /// Mean scaled gain per slot across all sessions of this kind.
    #[must_use]
    pub fn mean_gain(&self) -> f64 {
        let slots = self.gains.total_slots();
        if slots == 0 {
            0.0
        } else {
            self.gains.total_gain() / slots as f64
        }
    }
}

/// A point-in-time view of fleet-wide aggregate behaviour.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetMetrics {
    /// Number of hosted sessions.
    pub sessions: usize,
    /// Slots stepped since the fleet was created (or restored state's value).
    pub slot: SlotIndex,
    /// Total decisions taken (`choose` calls) across all sessions.
    pub decisions: u64,
    /// Total network switches across all sessions.
    pub switches: u64,
    /// Total minimal resets across all sessions.
    pub resets: u64,
    /// Per-policy-kind aggregates, in [`PolicyKind::all`] order (only kinds
    /// present in the fleet appear).
    pub per_kind: Vec<(PolicyKind, KindMetrics)>,
}

impl FleetMetrics {
    /// The aggregate for one policy kind, if any session runs it.
    #[must_use]
    pub fn kind(&self, kind: PolicyKind) -> Option<&KindMetrics> {
        self.per_kind
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, m)| m)
    }
}

impl fmt::Display for FleetMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet: {} sessions, slot {}, {} decisions, {} switches, {} resets",
            self.sessions, self.slot, self.decisions, self.switches, self.resets
        )?;
        for (kind, metrics) in &self.per_kind {
            writeln!(
                f,
                "  {:<22} {:>8} sessions  mean gain {:.4}  switches {:>10}  resets {:>6}",
                kind.label(),
                metrics.sessions,
                metrics.mean_gain(),
                metrics.policy.switches,
                metrics.policy.resets,
            )?;
        }
        Ok(())
    }
}

/// Errors produced by fleet checkpointing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// A session's policy cannot capture serializable state (the centralized
    /// oracle keeps its state in a shared coordinator).
    UnsupportedPolicy {
        /// The offending session.
        session: SessionId,
        /// Its policy kind.
        kind: PolicyKind,
    },
    /// The snapshot was produced by an incompatible engine version.
    UnsupportedVersion(u32),
    /// The snapshot text could not be parsed.
    Malformed(String),
    /// The environment rejected the snapshot (missing or incompatible
    /// environment state, or an environment that cannot be checkpointed).
    Environment(String),
}

/// What a known historical snapshot version lacks relative to the current
/// format — the actionable half of the [`SnapshotError::UnsupportedVersion`]
/// diagnostic. `None` for versions this engine has never written (future or
/// garbage values), which keep the generic message.
fn version_hint(version: u32) -> Option<&'static str> {
    Some(match version {
        2 => {
            "version 2 texts predate embedded environment state; \
             re-run under SNAPSHOT_VERSION 2 or regenerate the checkpoint"
        }
        3 => {
            "version 3 policy states predate the cooperative-feedback counters; \
             re-run under SNAPSHOT_VERSION 3 or regenerate the checkpoint"
        }
        4 => {
            "version 4 configs predate the partitioned-feedback switch; \
             re-run under SNAPSHOT_VERSION 4 or regenerate the checkpoint"
        }
        5 => {
            "version 5 policy states predate the per-policy sampler strategy; \
             re-run under SNAPSHOT_VERSION 5 or regenerate the checkpoint"
        }
        6 => {
            "version 6 configs predate the fleet-lanes switch; \
             re-run under SNAPSHOT_VERSION 6 or regenerate the checkpoint"
        }
        7 => {
            "version 7 texts predate the event-engine wake queue; \
             re-run under SNAPSHOT_VERSION 7 or regenerate the checkpoint"
        }
        8 => {
            "version 8 policy states predate the alias-sampler state; \
             re-run under SNAPSHOT_VERSION 8 or regenerate the checkpoint"
        }
        _ => return None,
    })
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::UnsupportedPolicy { session, kind } => write!(
                f,
                "{session} runs `{kind}`, whose state cannot be captured per session"
            ),
            SnapshotError::UnsupportedVersion(version) => {
                write!(
                    f,
                    "unsupported fleet snapshot format version {version} \
                     (this engine writes version {SNAPSHOT_VERSION})"
                )?;
                if let Some(hint) = version_hint(*version) {
                    write!(f, ": {hint}")?;
                }
                Ok(())
            }
            SnapshotError::Malformed(message) => write!(f, "malformed fleet snapshot: {message}"),
            SnapshotError::Environment(message) => {
                write!(f, "environment snapshot error: {message}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Snapshot format version written by this engine.
///
/// Version 2: policies serialize the weight table's distribution cache and
/// flat (vector-backed) network statistics, so a restored session resumes on
/// the exact floating-point trajectory of the original.
///
/// Version 3: snapshots may embed the dynamic state of the [`Environment`]
/// the fleet was stepped through ([`FleetSnapshot::environment`]), so a
/// mid-scenario checkpoint — pending bandwidth events, mobility positions
/// and the environment RNG included — restores bit-identically.
///
/// Version 4: policy checkpoints carry the cooperative-feedback counter
/// ([`PolicyStats::shared_observations`]), and cooperative environments
/// embed their gossip digests and per-area RNG streams in the environment
/// state.
///
/// Version 5: the engine configuration records the partitioned-feedback
/// switch ([`FleetConfig::partitioned_feedback`]), and partitioned
/// environments embed **one RNG stream per feedback partition** in the
/// environment state instead of a single stream.
///
/// Version 6: EXP3-family policy checkpoints carry the per-policy
/// `SamplerStrategy` and, for tree-sampled configs, the Fenwick tree over
/// the cached exponentials — so a restored dense-spectrum session resumes
/// its O(log k) sampler bit-identically.
///
/// Version 7: the engine configuration records the fleet-lanes switch
/// ([`FleetConfig::fleet_lanes`]). Lane routing is storage layout only —
/// session states, RNG streams and trajectories are identical either way,
/// and on restore EXP3-family [`PolicyState`]s are routed back into lanes
/// (or boxed, per the recorded flag) — but a version-6 text lacks the
/// field. Texts from versions 2–6 therefore fail to parse field-for-field,
/// so [`from_json`](FleetEngine::from_json) probes the version first and
/// reports [`SnapshotError::UnsupportedVersion`] instead of a confusing
/// missing-field error (with a per-version hint, see [`version_hint`]).
///
/// Version 8: snapshots carry the event-driven engine's **wake queue**
/// ([`FleetSnapshot::wake_queue`]) — the pending `(wake_time, session)`
/// entries of [`FleetEngine::step_events`], sorted for stable bytes, or
/// `None` when the fleet was stepped slot-synchronously — so a checkpoint
/// taken between two wake cohorts restores the exact event schedule.
///
/// Version 9: weight tables carry the alias-sampler state —
/// [`SamplerStrategy::Alias`](smartexp3_core::SamplerStrategy)'s frozen
/// Vose table, dirty-arm overlay and the `sampler_rebuilds`/`overlay_hits`
/// counters ([`PolicyStats`]) — so an alias-sampled fleet restores onto the
/// exact decision trajectory, counters included.
pub const SNAPSHOT_VERSION: u32 = 9;

/// Checkpoint of one session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionSnapshot {
    /// Session identifier.
    pub id: u64,
    /// Policy kind (kept alongside the state because the Smart EXP3 feature
    /// ablations all share the [`PolicyState::SmartExp3`] variant).
    pub kind: PolicyKind,
    /// Full policy learning state.
    pub policy: PolicyState,
    /// The session RNG stream's 256-bit internal state.
    pub rng: [u64; 4],
    /// Per-session gain statistics.
    pub gains: NetworkStats,
    /// Network used in the most recent slot.
    pub last_choice: Option<NetworkId>,
}

/// Checkpoint of a whole fleet; serializable with `serde_json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetSnapshot {
    /// Snapshot format version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Engine configuration (restored fleets keep it, including parallelism,
    /// though results never depend on the parallelism fields).
    pub config: FleetConfig,
    /// Next slot to be stepped.
    pub slot: SlotIndex,
    /// Next session id to be assigned.
    pub next_id: u64,
    /// Decisions taken so far.
    pub decisions: u64,
    /// Every session, in session order.
    pub sessions: Vec<SessionSnapshot>,
    /// Dynamic state of the [`Environment`] the fleet was stepped through
    /// (its own opaque JSON, see [`Environment::state`]), or `None` for
    /// closure-driven fleets.
    pub environment: Option<String>,
    /// Pending wakes of the event-driven engine path, sorted ascending by
    /// `(wake, session)` for stable snapshot bytes; `None` when the fleet
    /// was stepped slot-synchronously (the wake queue is then re-seeded from
    /// the environment's wake protocol on the next event-driven step).
    pub wake_queue: Option<Vec<WakeEntry>>,
}

impl FleetSnapshot {
    /// Serializes this snapshot to JSON. Same bytes as
    /// [`FleetEngine::to_json`], but usable after field-level edits (e.g.
    /// normalising [`wake_queue`](Self::wake_queue) away for
    /// stepping-mode-agnostic fingerprints).
    pub fn to_json(&self) -> Result<String, SnapshotError> {
        serde_json::to_string(self).map_err(|e| SnapshotError::Malformed(e.to_string()))
    }
}

/// One pending wake of the event-driven engine: session `session` decides
/// next at slot `wake`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WakeEntry {
    /// The slot at which the session next decides.
    pub wake: SlotIndex,
    /// The session (by id — session ids are assigned sequentially, so this
    /// is also the session's index).
    pub session: u64,
}

/// Per-shard work unit of [`FleetEngine::step_with`]: sessions, the shard's
/// slice of the last-choice mirror, and its persistent scratch.
type StepShard<'a> = (
    ShardSessions<'a>,
    &'a mut [Option<NetworkId>],
    &'a mut SlotScratch,
);

/// Per-shard work unit of [`FleetEngine::choose_all`]: sessions, the shard's
/// slices of the choice output and the last-choice mirror.
type ChooseAllShard<'a> = (
    ShardSessions<'a>,
    &'a mut [NetworkId],
    &'a mut [Option<NetworkId>],
);

/// Per-shard work unit of the env choose phase: shard offset, sessions, the
/// shard's slices of the joint-choice buffer and the last-choice mirror.
type ChooseShard<'a> = (
    usize,
    ShardSessions<'a>,
    &'a mut [Option<NetworkId>],
    &'a mut [Option<NetworkId>],
);

/// Per-shard work unit of the env observe phase: shard offset, sessions, the
/// shard's slice of the top-choice buffer and its persistent scratch.
type ObserveShard<'a> = (
    usize,
    ShardSessions<'a>,
    &'a mut [Option<(NetworkId, f64)>],
    &'a mut SlotScratch,
);

/// Per-shard work unit of the event-driven choose phase: global offset,
/// sessions, the shard's slices of the joint-choice buffer and last-choice
/// mirror, and its wake-to-decision latency histogram.
type EventChooseShard<'a> = (
    usize,
    ShardSessions<'a>,
    &'a mut [Option<NetworkId>],
    &'a mut [Option<NetworkId>],
    &'a mut Histogram,
);

/// Layout of the wake-to-decision latency histograms: first real bucket at
/// `2^-30` s (~1 ns), 34 buckets, so the top bucket opens at 4 s — per-slot
/// decision latencies land comfortably inside.
const LATENCY_MIN_EXP: i32 = -30;
/// Bucket count of the latency histograms (see [`LATENCY_MIN_EXP`]).
const LATENCY_BUCKETS: usize = 34;

impl ShardSessions<'_> {
    /// Sessions in the shard.
    fn len(&self) -> usize {
        match self {
            ShardSessions::Exp3(sessions) => sessions.len(),
            ShardSessions::Smart(sessions) => sessions.len(),
            ShardSessions::Boxed(sessions) => sessions.len(),
        }
    }
}

/// Carves the runs intersecting one lane into `(global_offset, shard)` work
/// units of at most `shard_size` sessions, via progressive `split_at_mut` —
/// the event-path analogue of [`LaneSegment::shards`], restricted to a wake
/// cohort. `runs` are disjoint ascending global index ranges; `lane` starts
/// at global index `segment_start`.
fn carve_lane<'a, P>(
    mut lane: &'a mut [LaneSession<P>],
    segment_start: usize,
    runs: &[(usize, usize)],
    shard_size: usize,
    wrap: fn(&'a mut [LaneSession<P>]) -> ShardSessions<'a>,
    out: &mut Vec<(usize, ShardSessions<'a>)>,
) {
    let segment_end = segment_start + lane.len();
    // Global index of `lane[0]` as the leading part is progressively split
    // away.
    let mut cursor = segment_start;
    for &(start, end) in runs {
        let a = start.max(segment_start);
        let b = end.min(segment_end);
        if a >= b {
            continue;
        }
        let (_, tail) = lane.split_at_mut(a - cursor);
        let (mut hit, tail) = tail.split_at_mut(b - a);
        lane = tail;
        cursor = b;
        let mut offset = a;
        while hit.len() > shard_size {
            let (chunk, rest) = hit.split_at_mut(shard_size);
            out.push((offset, wrap(chunk)));
            offset += shard_size;
            hit = rest;
        }
        if !hit.is_empty() {
            out.push((offset, wrap(hit)));
        }
    }
}

/// Carves a wake cohort (as disjoint ascending `runs` of global session
/// indices) across all lane segments into typed shard work units, in global
/// session order. With a single run covering every session this produces
/// exactly the sharding of the slot-synchronous path — which is what keeps
/// uniform-cadence event stepping bit-identical to [`FleetEngine::step_env`].
fn carve_cohort<'a>(
    segments: &'a mut [LaneSegment],
    runs: &[(usize, usize)],
    shard_size: usize,
) -> Vec<(usize, ShardSessions<'a>)> {
    let mut out = Vec::new();
    let mut segment_start = 0usize;
    for segment in segments {
        let n = segment.len();
        match segment {
            LaneSegment::Exp3(lane) => carve_lane(
                lane.as_mut_slice(),
                segment_start,
                runs,
                shard_size,
                ShardSessions::Exp3,
                &mut out,
            ),
            LaneSegment::Smart(lane) => carve_lane(
                lane.as_mut_slice(),
                segment_start,
                runs,
                shard_size,
                ShardSessions::Smart,
                &mut out,
            ),
            LaneSegment::Boxed(lane) => carve_lane(
                lane.as_mut_slice(),
                segment_start,
                runs,
                shard_size,
                ShardSessions::Boxed,
                &mut out,
            ),
        }
        segment_start += n;
    }
    out
}

/// The engine-side [`PartitionExecutor`]: runs an environment's feedback
/// partition jobs on the same worker pool the choose and observe shards use.
/// Each job owns disjoint environment state, so the pool's dynamic load
/// balancing never affects the result.
struct PoolExecutor<'a> {
    pool: &'a Option<ThreadPool>,
}

impl PartitionExecutor for PoolExecutor<'_> {
    fn run(&self, jobs: Vec<PartitionJob<'_>>) {
        FleetEngine::in_pool(self.pool, || {
            jobs.into_par_iter().for_each(|job| job());
        });
    }
}

/// A manager for a fleet of concurrently learning bandit sessions.
///
/// See the [crate documentation](crate) for the seeding and determinism
/// model. All batched entry points are deterministic given the root seed and
/// the observation sequence, regardless of `threads` and `shard_size`.
pub struct FleetEngine {
    config: FleetConfig,
    pool: Option<ThreadPool>,
    /// Sessions in global session order, stored as contiguous homogeneous
    /// lane segments (see the crate docs on fleet lanes). `self.last` always
    /// holds one entry per session, so it doubles as the session count.
    segments: Vec<LaneSegment>,
    slot: SlotIndex,
    next_id: u64,
    decisions: u64,
    choices: Vec<NetworkId>,
    /// Mirror of every session's most recent choice, maintained by all step
    /// paths so [`last_choices`](Self::last_choices) is a zero-alloc read.
    last: Vec<Option<NetworkId>>,
    /// One persistent [`SlotScratch`] per shard, grown on fleet growth only —
    /// steady-state stepping performs no per-**session** allocation. (A small
    /// O(shard-count) pairing vector is still built per step to hand each
    /// worker its shard and scratch together.)
    scratch: Vec<SlotScratch>,
    /// Persistent environment-stepping buffers (joint choices, feedback,
    /// top-choice reads), reused across [`step_env`](Self::step_env) calls.
    env_choices: Vec<Option<NetworkId>>,
    env_feedback: Vec<Option<Observation>>,
    env_tops: Vec<Option<(NetworkId, f64)>>,
    /// Wall-clock phase breakdown of the most recent [`step_env`]
    /// (`Self::step_env`) slot. Host timing, *not* covered by any
    /// determinism contract, and deliberately excluded from snapshots.
    last_timing: Option<SlotTiming>,
    /// Pending wakes of the event-driven path: a min-heap keyed
    /// `(wake_time, session_index)`, so cohorts drain in deterministic
    /// (time, then session) order. Embedded in snapshots (sorted) when
    /// primed.
    wakes: BinaryHeap<Reverse<(SlotIndex, usize)>>,
    /// Whether `wakes` currently describes the fleet. Slot-synchronous
    /// stepping and fleet growth invalidate the queue; the next event-driven
    /// step re-seeds it from the environment's wake protocol.
    wakes_primed: bool,
    /// Scratch: the session indices due at the timestamp being processed
    /// (ascending, as popped from the heap).
    cohort: Vec<usize>,
    /// Scratch: the cohort compressed into contiguous `[start, end)` runs.
    cohort_runs: Vec<(usize, usize)>,
    /// Per-shard wake-to-decision latency histograms of the event path
    /// (host timing, outside all determinism contracts), merged in shard
    /// order into `latency_total` after each cohort.
    latency_shards: Vec<Histogram>,
    /// Merged latency histogram of the most recent cohort.
    latency_total: Histogram,
    /// Latency percentiles of the most recent event-driven cohort.
    last_latency: Option<LatencyStats>,
}

impl fmt::Debug for FleetEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FleetEngine")
            .field("config", &self.config)
            .field("sessions", &self.len())
            .field("slot", &self.slot)
            .field("decisions", &self.decisions)
            .finish_non_exhaustive()
    }
}

impl FleetEngine {
    /// Creates an empty fleet.
    #[must_use]
    pub fn new(config: FleetConfig) -> Self {
        let pool = config.threads.map(|threads| {
            ThreadPoolBuilder::new()
                .num_threads(threads.max(1))
                .build()
                .expect("thread pool construction cannot fail")
        });
        FleetEngine {
            config,
            pool,
            segments: Vec::new(),
            slot: 0,
            next_id: 0,
            decisions: 0,
            choices: Vec::new(),
            last: Vec::new(),
            scratch: Vec::new(),
            env_choices: Vec::new(),
            env_feedback: Vec::new(),
            env_tops: Vec::new(),
            last_timing: None,
            wakes: BinaryHeap::new(),
            wakes_primed: false,
            cohort: Vec::new(),
            cohort_runs: Vec::new(),
            latency_shards: Vec::new(),
            latency_total: Histogram::new(LATENCY_MIN_EXP, LATENCY_BUCKETS),
            last_latency: None,
        }
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Number of hosted sessions.
    #[must_use]
    pub fn len(&self) -> usize {
        // The last-choice mirror always has exactly one entry per session.
        self.last.len()
    }

    /// `true` when the fleet hosts no sessions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.last.is_empty()
    }

    /// The next slot to be stepped.
    #[must_use]
    pub fn slot(&self) -> SlotIndex {
        self.slot
    }

    /// Builds the `LaneSession` for the next session id, advancing the id
    /// counter and growing the last-choice mirror. The caller appends the
    /// session to the appropriate lane.
    fn new_lane_session<P>(&mut self, kind: PolicyKind, policy: P) -> LaneSession<P> {
        let id = SessionId(self.next_id);
        self.next_id += 1;
        self.last.push(None);
        // A grown fleet needs its wake queue re-seeded (the new session has
        // no pending wake yet).
        self.wakes_primed = false;
        LaneSession {
            id,
            kind,
            rng: session_rng(self.config.root_seed, id),
            policy,
            gains: NetworkStats::new(),
            last_choice: None,
        }
    }

    /// Appends to the trailing boxed segment, or starts one. (And likewise
    /// for the two monomorphized lanes below: extending only the *last*
    /// segment preserves global session order under interleaved adds.)
    fn append_boxed(&mut self, session: LaneSession<Box<dyn Policy>>) {
        match self.segments.last_mut() {
            Some(LaneSegment::Boxed(lane)) => lane.push(session),
            _ => self.segments.push(LaneSegment::Boxed(vec![session])),
        }
    }

    fn append_exp3(&mut self, session: LaneSession<Exp3>) {
        match self.segments.last_mut() {
            Some(LaneSegment::Exp3(lane)) => lane.push(session),
            _ => self.segments.push(LaneSegment::Exp3(vec![session])),
        }
    }

    fn append_smart(&mut self, session: LaneSession<SmartExp3>) {
        match self.segments.last_mut() {
            Some(LaneSegment::Smart(lane)) => lane.push(session),
            _ => self.segments.push(LaneSegment::Smart(vec![session])),
        }
    }

    /// Adds one session running `policy`, assigning it the next session id
    /// and its private RNG stream. Individually added boxed policies always
    /// run on the fallback lane; bulk EXP3-family adds through
    /// [`add_fleet`](Self::add_fleet) go to the monomorphized lanes.
    pub fn add_session(&mut self, kind: PolicyKind, policy: Box<dyn Policy>) -> SessionId {
        let session = self.new_lane_session(kind, policy);
        let id = session.id;
        self.append_boxed(session);
        id
    }

    /// Bulk-adds `count` sessions of `kind` built by `factory` (via the
    /// factory's bulk-construction hook). Returns the ids of the new
    /// sessions, which are always a contiguous run.
    ///
    /// With [`FleetConfig::fleet_lanes`] on (the default), EXP3-family kinds
    /// are stored concretely in monomorphized lane segments; other kinds —
    /// and every kind when the toggle is off — go to the boxed fallback
    /// lane. The routing never changes behaviour, only storage.
    ///
    /// # Errors
    ///
    /// Propagates constructor errors from the factory; no sessions are added
    /// on error.
    pub fn add_fleet(
        &mut self,
        factory: &mut PolicyFactory,
        kind: PolicyKind,
        count: usize,
    ) -> Result<Vec<SessionId>, ConfigError> {
        if !self.config.fleet_lanes {
            let policies = factory.build_fleet(kind, count)?;
            return Ok(policies
                .into_iter()
                .map(|policy| self.add_session(kind, policy))
                .collect());
        }
        Ok(match factory.build_fleet_concrete(kind, count)? {
            FleetPolicies::Exp3(policies) => policies
                .into_iter()
                .map(|policy| {
                    let session = self.new_lane_session(kind, policy);
                    let id = session.id;
                    self.append_exp3(session);
                    id
                })
                .collect(),
            FleetPolicies::SmartExp3(policies) => policies
                .into_iter()
                .map(|policy| {
                    let session = self.new_lane_session(kind, policy);
                    let id = session.id;
                    self.append_smart(session);
                    id
                })
                .collect(),
            FleetPolicies::Boxed(policies) => policies
                .into_iter()
                .map(|policy| self.add_session(kind, policy))
                .collect(),
        })
    }

    /// Total shard count across all segments for the given shard size.
    /// Shards never span a segment boundary (each worker gets one typed
    /// slice), so this can exceed `len().div_ceil(shard_size)` in a
    /// mixed-lane fleet.
    fn shard_count(&self, shard_size: usize) -> usize {
        self.segments
            .iter()
            .map(|segment| segment.len().div_ceil(shard_size))
            .sum()
    }

    /// Grows the per-shard scratch pool to cover `shard_count` shards —
    /// the one place both step paths size their scratch from.
    fn ensure_scratch(&mut self, shard_count: usize) {
        if self.scratch.len() < shard_count {
            self.scratch.resize_with(shard_count, SlotScratch::default);
        }
    }

    /// Runs `operation` inside this engine's thread pool (or inline when no
    /// explicit pool is configured — rayon then uses available parallelism).
    fn in_pool<R>(pool: &Option<ThreadPool>, operation: impl FnOnce() -> R) -> R {
        match pool {
            Some(pool) => pool.install(operation),
            None => operation(),
        }
    }

    /// Phase 1 of a slot: every session picks its network for slot
    /// [`slot()`](Self::slot), in parallel. Returns the choices in session
    /// order. Must be followed by [`observe_all`](Self::observe_all) before
    /// the next `choose_all`.
    pub fn choose_all(&mut self) -> &[NetworkId] {
        let slot = self.slot;
        let shard_size = self.config.shard_size.max(1);
        let count = self.len();
        // Choices are written by the parallel workers themselves (the same
        // pattern as `step_env`'s choose phase) rather than re-read from
        // `last_choice` afterwards — there is no window in which a session
        // could be observed without a recorded choice, and no panic path.
        self.choices.clear();
        self.choices.resize(count, NetworkId(0));
        let mut work: Vec<ChooseAllShard<'_>> = Vec::new();
        let mut choices = self.choices.as_mut_slice();
        let mut last = self.last.as_mut_slice();
        for segment in &mut self.segments {
            let n = segment.len();
            let (segment_choices, rest) = choices.split_at_mut(n);
            choices = rest;
            let (segment_last, rest) = last.split_at_mut(n);
            last = rest;
            for ((shard, c), l) in segment
                .shards(shard_size)
                .into_iter()
                .zip(segment_choices.chunks_mut(shard_size))
                .zip(segment_last.chunks_mut(shard_size))
            {
                work.push((shard, c, l));
            }
        }
        Self::in_pool(&self.pool, || {
            work.into_par_iter().for_each(|(shard, choices, last)| {
                with_lane!(shard, |sessions| {
                    for (i, session) in sessions.iter_mut().enumerate() {
                        let chosen = session.choose(slot);
                        choices[i] = chosen;
                        last[i] = Some(chosen);
                    }
                });
            });
        });
        self.decisions += count as u64;
        &self.choices
    }

    /// Phase 2 of a slot: delivers one [`Observation`] per session (in
    /// session order, matching [`choose_all`](Self::choose_all)'s output) and
    /// advances the fleet to the next slot.
    ///
    /// # Panics
    ///
    /// Panics when `observations.len() != self.len()` — feedback and fleet
    /// must stay aligned.
    pub fn observe_all(&mut self, observations: &[Observation]) {
        assert_eq!(
            observations.len(),
            self.len(),
            "one observation per session required"
        );
        let shard_size = self.config.shard_size.max(1);
        let mut work: Vec<(usize, ShardSessions<'_>)> = Vec::new();
        let mut segment_start = 0usize;
        for segment in &mut self.segments {
            let n = segment.len();
            for (i, shard) in segment.shards(shard_size).into_iter().enumerate() {
                work.push((segment_start + i * shard_size, shard));
            }
            segment_start += n;
        }
        Self::in_pool(&self.pool, || {
            work.into_par_iter().for_each(|(offset, shard)| {
                with_lane!(shard, |sessions| {
                    for (i, session) in sessions.iter_mut().enumerate() {
                        session.observe(&observations[offset + i]);
                    }
                });
            });
        });
        self.slot += 1;
        self.wakes_primed = false;
    }

    /// Fused step: every session chooses, the `feedback` closure grades the
    /// choice, and the session observes — one parallel traversal, no
    /// per-session allocation. Each shard threads its persistent
    /// [`SlotScratch`] through the [`StepContext`], so feedback closures that
    /// build per-slot structures (e.g. full-information gain vectors) can
    /// reuse buffers across slots instead of allocating. Use this when
    /// feedback for a session depends only on that session's own choice; when
    /// sessions couple (congestion), use [`choose_all`](Self::choose_all) +
    /// [`observe_all`](Self::observe_all).
    pub fn step_with<F>(&mut self, feedback: F)
    where
        F: Fn(&mut StepContext<'_>) -> Observation + Sync,
    {
        let slot = self.slot;
        let shard_size = self.config.shard_size.max(1);
        let count = self.len();
        let shard_count = self.shard_count(shard_size);
        self.ensure_scratch(shard_count);
        let mut work: Vec<StepShard<'_>> = Vec::new();
        let mut last = self.last.as_mut_slice();
        let mut scratch = self.scratch.iter_mut();
        for segment in &mut self.segments {
            let n = segment.len();
            let (segment_last, rest) = last.split_at_mut(n);
            last = rest;
            for ((shard, l), s) in segment
                .shards(shard_size)
                .into_iter()
                .zip(segment_last.chunks_mut(shard_size))
                .zip(&mut scratch)
            {
                work.push((shard, l, s));
            }
        }
        let feedback = &feedback;
        Self::in_pool(&self.pool, || {
            work.into_par_iter().for_each(|(shard, last, scratch)| {
                with_lane!(shard, |sessions| {
                    for (index, session) in sessions.iter_mut().enumerate() {
                        let previous = session.last_choice;
                        let chosen = session.choose(slot);
                        last[index] = Some(chosen);
                        let mut context = StepContext {
                            session: session.id,
                            slot,
                            chosen,
                            previous,
                            scratch: &mut *scratch,
                        };
                        let observation = feedback(&mut context);
                        session.observe(&observation);
                        scratch.recycle(observation);
                    }
                });
            });
        });
        self.decisions += count as u64;
        self.slot += 1;
        self.wakes_primed = false;
    }

    /// Convenience: runs `slots` fused steps.
    pub fn run_with<F>(&mut self, slots: usize, feedback: F)
    where
        F: Fn(&mut StepContext<'_>) -> Observation + Sync,
    {
        for _ in 0..slots {
            self.step_with(&feedback);
        }
    }

    /// Steps the fleet one slot through an [`Environment`] — the unified
    /// path for coupled-feedback worlds (congestion games, bandwidth
    /// dynamics, mobility, trace replay).
    ///
    /// One slot runs four phases:
    ///
    /// 1. `env.begin_slot` — environment-state advance. Worlds that
    ///    advertise [`feedback_partitions`](Environment::feedback_partitions)
    ///    (with [`FleetConfig::partitioned_feedback`] on and more than one
    ///    worker) get [`Environment::begin_slot_partitioned`] with an
    ///    executor backed by the worker pool instead — the RNG-free
    ///    per-session refresh fans out over the same area partitions as
    ///    feedback, bit-identically;
    /// 2. choose — sharded over rayon workers: each session reads its
    ///    [`SessionView`](smartexp3_core::SessionView), absorbs a visibility
    ///    change if one is reported, and (when active) picks a network with
    ///    its private RNG stream;
    /// 3. feedback — joint-choice → per-session feedback. When the
    ///    environment advertises
    ///    [`feedback_partitions`](Environment::feedback_partitions) (and
    ///    [`FleetConfig::partitioned_feedback`] is on), the engine hands the
    ///    environment a [`PartitionExecutor`] backed by the same worker
    ///    pool, and the environment fans one job per independent area out
    ///    over it; otherwise the sequential [`Environment::feedback`]
    ///    fallback runs on the calling thread;
    /// 4. observe — sharded: every active session ingests its observation
    ///    (and, if the environment asked for top choices, reports its most
    ///    probable network for stable-state recording) before
    ///    `env.end_slot` fires.
    ///
    /// Because per-session randomness lives in per-session streams and all
    /// environment randomness is drawn from environment-owned streams in
    /// canonical session order (one stream per feedback partition on the
    /// partitioned path), the trajectory is **bit-identical at any thread
    /// count and shard size — with partitioned feedback on or off**.
    /// Steady-state stepping allocates nothing per session: joint-choice,
    /// feedback and top-choice buffers persist across slots (a small
    /// O(shard-count) pairing vector is rebuilt per phase, as in
    /// [`step_with`](Self::step_with), and the partitioned feedback path
    /// boxes one job per partition per slot).
    ///
    /// # Panics
    ///
    /// Panics when `env.sessions() != self.len()` — the environment and the
    /// fleet must describe the same session set.
    pub fn step_env(&mut self, env: &mut dyn Environment) {
        self.step_env_with_sink(env, None);
    }

    /// [`step_env`](Self::step_env) with streaming telemetry: after the slot
    /// completes, one [`TelemetryRecord`] — the environment's
    /// [`telemetry`](Environment::telemetry) metrics (empty if the world has
    /// none enabled) plus this slot's [`SlotTiming`] — is delivered to
    /// `sink`, if one is given. The sink is an observer: stepping with or
    /// without one is bit-identical.
    ///
    /// # Panics
    ///
    /// Panics when `env.sessions() != self.len()`, as in
    /// [`step_env`](Self::step_env).
    pub fn step_env_with_sink(
        &mut self,
        env: &mut dyn Environment,
        sink: Option<&mut dyn TelemetrySink>,
    ) {
        assert_eq!(
            env.sessions(),
            self.len(),
            "environment describes {} sessions, fleet hosts {}",
            env.sessions(),
            self.len()
        );
        let slot = self.slot;
        let shard_size = self.config.shard_size.max(1);
        let count = self.len();
        let workers = match &self.pool {
            Some(pool) => pool.current_num_threads(),
            None => rayon::current_num_threads(),
        };
        // Partitioned worlds may fan both the slot-begin refresh (phase 1)
        // and the joint feedback (phase 3) out over the worker pool; the
        // gate is shared so the two phases always agree.
        let partitioned =
            self.config.partitioned_feedback && workers > 1 && env.feedback_partitions().is_some();
        let phase_start = Instant::now();
        if partitioned {
            let executor = PoolExecutor { pool: &self.pool };
            env.begin_slot_partitioned(slot, &executor);
        } else {
            env.begin_slot(slot);
        }
        let begin_slot_s = phase_start.elapsed().as_secs_f64();
        let phase_start = Instant::now();

        // Phase 2: choose (parallel).
        if self.env_choices.len() != count {
            self.env_choices.resize(count, None);
        }
        {
            let env_view: &dyn Environment = env;
            let mut work: Vec<ChooseShard<'_>> = Vec::new();
            let mut choices = self.env_choices.as_mut_slice();
            let mut last = self.last.as_mut_slice();
            let mut segment_start = 0usize;
            for segment in &mut self.segments {
                let n = segment.len();
                let (segment_choices, rest) = choices.split_at_mut(n);
                choices = rest;
                let (segment_last, rest) = last.split_at_mut(n);
                last = rest;
                for (i, ((shard, c), l)) in segment
                    .shards(shard_size)
                    .into_iter()
                    .zip(segment_choices.chunks_mut(shard_size))
                    .zip(segment_last.chunks_mut(shard_size))
                    .enumerate()
                {
                    work.push((segment_start + i * shard_size, shard, c, l));
                }
                segment_start += n;
            }
            Self::in_pool(&self.pool, || {
                work.into_par_iter()
                    .for_each(|(offset, shard, choices, last)| {
                        with_lane!(shard, |sessions| {
                            for (i, session) in sessions.iter_mut().enumerate() {
                                let view = env_view.session_view(offset + i, slot);
                                if let Some(networks) = view.networks_changed {
                                    session
                                        .policy
                                        .on_networks_changed(networks, &mut session.rng);
                                }
                                choices[i] = if view.active {
                                    let chosen = session.choose(slot);
                                    last[i] = Some(chosen);
                                    Some(chosen)
                                } else {
                                    None
                                };
                            }
                        });
                    });
            });
        }
        let active = self.env_choices.iter().flatten().count() as u64;
        let choose_s = phase_start.elapsed().as_secs_f64();
        let phase_start = Instant::now();

        // Phase 3: joint feedback. Partitioned worlds fan their independent
        // areas out over the worker pool; everything else — including any
        // world on a single-worker pool, where job dispatch is pure
        // overhead — runs the sequential fallback on this thread. The two
        // paths are bit-identical by the partition contract, so this is a
        // wall-clock decision only.
        if self.env_feedback.len() != count {
            self.env_feedback.resize(count, None);
        }
        if partitioned {
            let executor = PoolExecutor { pool: &self.pool };
            env.feedback_partitioned(slot, &self.env_choices, &mut self.env_feedback, &executor);
        } else {
            env.feedback(slot, &self.env_choices, &mut self.env_feedback);
        }
        // Structural guard: a session that did not choose must not observe.
        // The feedback buffer persists across slots (so environments can
        // scavenge allocations), which means an environment that forgets to
        // write `None` for an inactive session would otherwise re-deliver
        // that session's stale observation from an earlier slot.
        for (choice, feedback) in self.env_choices.iter().zip(self.env_feedback.iter_mut()) {
            if choice.is_none() {
                *feedback = None;
            }
        }
        let feedback_s = phase_start.elapsed().as_secs_f64();
        let phase_start = Instant::now();

        // Phase 4: observe (parallel), then the end-of-slot hook. Sessions in
        // a cooperative environment additionally hear their neighbourhood's
        // gossip digest (copied into the shard's recycled scratch buffer) and
        // fold it in via `Policy::observe_shared`.
        let wants_tops = env.wants_top_choices();
        let shares_feedback = env.shares_feedback();
        if self.env_tops.len() != count {
            self.env_tops.resize(count, None);
        }
        let shard_count = self.shard_count(shard_size);
        self.ensure_scratch(shard_count);
        {
            let env_view: &dyn Environment = env;
            let feedback = &self.env_feedback;
            let mut work: Vec<ObserveShard<'_>> = Vec::new();
            let mut tops = self.env_tops.as_mut_slice();
            let mut scratch = self.scratch.iter_mut();
            let mut segment_start = 0usize;
            for segment in &mut self.segments {
                let n = segment.len();
                let (segment_tops, rest) = tops.split_at_mut(n);
                tops = rest;
                for (i, ((shard, t), s)) in segment
                    .shards(shard_size)
                    .into_iter()
                    .zip(segment_tops.chunks_mut(shard_size))
                    .zip(&mut scratch)
                    .enumerate()
                {
                    work.push((segment_start + i * shard_size, shard, t, s));
                }
                segment_start += n;
            }
            Self::in_pool(&self.pool, || {
                work.into_par_iter()
                    .for_each(|(offset, shard, tops, scratch)| {
                        with_lane!(shard, |sessions| {
                            for (i, session) in sessions.iter_mut().enumerate() {
                                let Some(observation) = &feedback[offset + i] else {
                                    if wants_tops {
                                        tops[i] = None;
                                    }
                                    continue;
                                };
                                session.observe(observation);
                                if shares_feedback
                                    && env_view
                                        .shared_feedback_into(offset + i, &mut scratch.shared)
                                {
                                    session
                                        .policy
                                        .observe_shared(&scratch.shared, &mut session.rng);
                                }
                                if wants_tops {
                                    // Bounded top-1 read: O(K) with no full
                                    // listing write-out. Ties resolve to the
                                    // later-listed arm, exactly as the
                                    // full-listing `max_by` scan this
                                    // replaces (see
                                    // `Policy::top_probabilities_into`).
                                    session
                                        .policy
                                        .top_probabilities_into(1, &mut scratch.probabilities);
                                    tops[i] = scratch.probabilities.first().copied();
                                }
                            }
                        });
                    });
            });
        }
        let tops: &[Option<(NetworkId, f64)>] = if wants_tops { &self.env_tops } else { &[] };
        env.end_slot(slot, &self.env_choices, tops);
        let observe_s = phase_start.elapsed().as_secs_f64();

        let timing = SlotTiming {
            begin_slot_s,
            choose_s,
            feedback_s,
            observe_s,
        };
        self.last_timing = Some(timing);
        if let Some(sink) = sink {
            sink.record(&TelemetryRecord {
                slot,
                active,
                metrics: env.telemetry().cloned().unwrap_or_default(),
                timing,
                latency: None,
                sampler: Some(self.sampler_counters()),
            });
        }

        self.decisions += active;
        self.slot += 1;
        self.wakes_primed = false;
    }

    /// Convenience: runs `slots` environment-driven steps.
    pub fn run_env(&mut self, env: &mut dyn Environment, slots: usize) {
        for _ in 0..slots {
            self.step_env(env);
        }
    }

    /// Runs `slots` environment-driven steps, streaming one
    /// [`TelemetryRecord`] per slot into `sink` (see
    /// [`step_env_with_sink`](Self::step_env_with_sink)).
    pub fn run_env_with_sink(
        &mut self,
        env: &mut dyn Environment,
        slots: usize,
        sink: &mut dyn TelemetrySink,
    ) {
        for _ in 0..slots {
            self.step_env_with_sink(env, Some(&mut *sink));
        }
    }

    /// Seeds the wake queue from the environment's wake protocol, unless it
    /// is already primed (by a previous event-driven step or a restored
    /// snapshot). Each session is seeded at its
    /// [`first_wake`](Environment::first_wake), advanced along its own
    /// [`next_wake`](Environment::next_wake) schedule until the wake reaches
    /// the engine's current slot — so a fleet that already stepped (or
    /// resumed mid-run without a recorded queue) rejoins its cadence grid
    /// instead of waking everything immediately.
    fn prime_wakes(&mut self, env: &dyn Environment) {
        if self.wakes_primed {
            return;
        }
        self.wakes.clear();
        for index in 0..self.len() {
            let mut wake = env.first_wake(index);
            while wake < self.slot {
                wake = env.next_wake(index, wake).max(wake + 1);
            }
            self.wakes.push(Reverse((wake, index)));
        }
        self.wakes_primed = true;
    }

    /// The next timestamp the event engine would materialise: the earlier of
    /// the soonest pending session wake and the environment's next pushed
    /// event at or after the current slot. `None` when nothing remains
    /// (empty fleet and an event-free environment).
    fn next_timestamp(&self, env: &dyn Environment) -> Option<SlotIndex> {
        let wake = self.wakes.peek().map(|Reverse((t, _))| *t);
        let event = env.next_env_event(self.slot);
        match (wake, event) {
            (Some(w), Some(e)) => Some(w.min(e)),
            (wake, event) => wake.or(event),
        }
    }

    /// Event-driven step: materialises the **next timestamp at which
    /// anything happens** — the earliest pending session wake, or the
    /// environment's next pushed event ([`Environment::next_env_event`]) —
    /// instead of ticking every session every slot. Returns the timestamp
    /// processed, or `None` when nothing remains.
    ///
    /// At a wake timestamp `t`, the cohort of sessions due at `t` (drained
    /// from the deterministic `(wake_time, session)` queue) runs as a
    /// micro-batch through the *same* four-phase loop as
    /// [`step_env`](Self::step_env): `begin_slot(t)` (partitioned when the
    /// world advertises partitions), cohort choose (sharded over the worker
    /// pool, monomorphized lane dispatch, per-session RNG streams), joint
    /// feedback over the full-length choice buffer (non-cohort sessions are
    /// `None`, exactly like inactive sessions), cohort observe and
    /// `end_slot`. Each cohort session is then rescheduled at its
    /// [`next_wake`](Environment::next_wake). At an env-event-only
    /// timestamp, only `begin_slot(t)` runs — scheduled state advances
    /// (event cursors!) are applied, never skipped — and no session decides.
    ///
    /// **Correctness anchor:** with every session at the default uniform
    /// cadence 1, the cohort is always the whole fleet and this path is
    /// **bit-identical** to [`step_env`](Self::step_env) — same choices,
    /// same RNG streams, same environment state — at any thread count and
    /// shard size, lanes and partitioning on or off.
    ///
    /// As a side effect the wake-to-decision latency of every cohort
    /// decision (wall-clock from cohort start to the session's choice, host
    /// timing only) is recorded into a log-bucket histogram; read the
    /// percentiles via [`last_wake_latency`](Self::last_wake_latency) or a
    /// telemetry sink ([`step_events_with_sink`](Self::step_events_with_sink)).
    /// [`FleetConfig::wake_latency`] turns the recording off for
    /// throughput-critical runs (the clock read costs as much as a draw).
    ///
    /// # Panics
    ///
    /// Panics when `env.sessions() != self.len()`, as in
    /// [`step_env`](Self::step_env).
    pub fn step_events(&mut self, env: &mut dyn Environment) -> Option<SlotIndex> {
        self.step_events_with_sink(env, None)
    }

    /// [`step_events`](Self::step_events) with streaming telemetry: after a
    /// wake cohort completes, one [`TelemetryRecord`] — keyed by the cohort
    /// timestamp, with the environment's metrics, this cohort's
    /// [`SlotTiming`] and its wake-to-decision [`LatencyStats`] — is
    /// delivered to `sink`. Env-event-only timestamps produce no record (no
    /// session decided, so the slot series stays strictly increasing and
    /// histogram counts stay consistent with the validator's contract).
    ///
    /// # Panics
    ///
    /// Panics when `env.sessions() != self.len()`.
    pub fn step_events_with_sink(
        &mut self,
        env: &mut dyn Environment,
        sink: Option<&mut dyn TelemetrySink>,
    ) -> Option<SlotIndex> {
        assert_eq!(
            env.sessions(),
            self.len(),
            "environment describes {} sessions, fleet hosts {}",
            env.sessions(),
            self.len()
        );
        self.prime_wakes(env);
        let t = self.next_timestamp(env)?;
        debug_assert!(t >= self.slot, "wake queue fell behind the clock");
        let shard_size = self.config.shard_size.max(1);
        let count = self.len();
        let workers = match &self.pool {
            Some(pool) => pool.current_num_threads(),
            None => rayon::current_num_threads(),
        };
        let partitioned =
            self.config.partitioned_feedback && workers > 1 && env.feedback_partitions().is_some();

        // Phase 1: environment-state advance at t — also runs for
        // env-event-only timestamps, because scheduled advances (event
        // cursors) are applied by `begin_slot`, not recomputed from the
        // absolute slot.
        let phase_start = Instant::now();
        if partitioned {
            let executor = PoolExecutor { pool: &self.pool };
            env.begin_slot_partitioned(t, &executor);
        } else {
            env.begin_slot(t);
        }
        let begin_slot_s = phase_start.elapsed().as_secs_f64();

        // Drain the cohort due at t (ascending session index, by heap order).
        self.cohort.clear();
        while let Some(&Reverse((wake, index))) = self.wakes.peek() {
            if wake != t {
                break;
            }
            self.wakes.pop();
            self.cohort.push(index);
        }
        if self.cohort.is_empty() {
            // Env-event-only timestamp: state advanced, nobody decides, no
            // feedback, no telemetry record.
            self.slot = t + 1;
            return Some(t);
        }
        self.cohort_runs.clear();
        for &index in &self.cohort {
            match self.cohort_runs.last_mut() {
                Some((_, end)) if *end == index => *end += 1,
                _ => self.cohort_runs.push((index, index + 1)),
            }
        }
        let cohort_start = Instant::now();
        let record_latency = self.config.wake_latency;

        // Phase 2: cohort choose (parallel). The full-length joint-choice
        // buffer is cleared first so non-cohort sessions read as absent —
        // the same shape feedback already handles for inactive sessions.
        if self.env_choices.len() != count {
            self.env_choices.resize(count, None);
        }
        self.env_choices.fill(None);
        let cohort_shard_count;
        {
            let env_view: &dyn Environment = env;
            let shards = carve_cohort(&mut self.segments, &self.cohort_runs, shard_size);
            cohort_shard_count = shards.len();
            if self.latency_shards.len() < cohort_shard_count {
                self.latency_shards.resize_with(cohort_shard_count, || {
                    Histogram::new(LATENCY_MIN_EXP, LATENCY_BUCKETS)
                });
            }
            let mut work: Vec<EventChooseShard<'_>> = Vec::with_capacity(cohort_shard_count);
            let mut choices = self.env_choices.as_mut_slice();
            let mut last = self.last.as_mut_slice();
            let mut latency = self.latency_shards.iter_mut();
            let mut consumed = 0usize;
            for (offset, shard) in shards {
                let len = shard.len();
                let (_, rest) = choices.split_at_mut(offset - consumed);
                let (shard_choices, rest) = rest.split_at_mut(len);
                choices = rest;
                let (_, rest) = last.split_at_mut(offset - consumed);
                let (shard_last, rest) = rest.split_at_mut(len);
                last = rest;
                consumed = offset + len;
                let histogram = latency.next().expect("sized above");
                histogram.clear();
                work.push((offset, shard, shard_choices, shard_last, histogram));
            }
            Self::in_pool(&self.pool, || {
                work.into_par_iter()
                    .for_each(|(offset, shard, choices, last, latency)| {
                        with_lane!(shard, |sessions| {
                            for (i, session) in sessions.iter_mut().enumerate() {
                                let view = env_view.session_view(offset + i, t);
                                if let Some(networks) = view.networks_changed {
                                    session
                                        .policy
                                        .on_networks_changed(networks, &mut session.rng);
                                }
                                choices[i] = if view.active {
                                    let chosen = session.choose(t);
                                    last[i] = Some(chosen);
                                    if record_latency {
                                        latency.record(cohort_start.elapsed().as_secs_f64());
                                    }
                                    Some(chosen)
                                } else {
                                    None
                                };
                            }
                        });
                    });
            });
        }
        // Merge per-shard latency in shard order (host timing — outside all
        // determinism contracts, so the merge order only matters for
        // reproducible float sums within one process).
        let latency = if record_latency {
            self.latency_total.clear();
            for histogram in &self.latency_shards[..cohort_shard_count] {
                self.latency_total.merge(histogram);
            }
            LatencyStats::from_histogram(&self.latency_total)
        } else {
            None
        };
        self.last_latency = latency;
        let active = self.env_choices.iter().flatten().count() as u64;
        let choose_s = cohort_start.elapsed().as_secs_f64();
        let phase_start = Instant::now();

        // Phase 3: joint feedback over the full-length buffers, exactly as
        // the slot-synchronous path (partitioned fan-out, structural guard).
        if self.env_feedback.len() != count {
            self.env_feedback.resize(count, None);
        }
        if partitioned {
            let executor = PoolExecutor { pool: &self.pool };
            env.feedback_partitioned(t, &self.env_choices, &mut self.env_feedback, &executor);
        } else {
            env.feedback(t, &self.env_choices, &mut self.env_feedback);
        }
        for (choice, feedback) in self.env_choices.iter().zip(self.env_feedback.iter_mut()) {
            if choice.is_none() {
                *feedback = None;
            }
        }
        let feedback_s = phase_start.elapsed().as_secs_f64();
        let phase_start = Instant::now();

        // Phase 4: cohort observe (parallel), then the end-of-slot hook.
        let wants_tops = env.wants_top_choices();
        let shares_feedback = env.shares_feedback();
        if self.env_tops.len() != count {
            self.env_tops.resize(count, None);
        }
        if wants_tops {
            // Stale tops from earlier cohorts must not leak into end_slot.
            self.env_tops.fill(None);
        }
        self.ensure_scratch(cohort_shard_count);
        {
            let env_view: &dyn Environment = env;
            let feedback = &self.env_feedback;
            let shards = carve_cohort(&mut self.segments, &self.cohort_runs, shard_size);
            let mut work: Vec<ObserveShard<'_>> = Vec::with_capacity(shards.len());
            let mut tops = self.env_tops.as_mut_slice();
            let mut scratch = self.scratch.iter_mut();
            let mut consumed = 0usize;
            for (offset, shard) in shards {
                let len = shard.len();
                let (_, rest) = tops.split_at_mut(offset - consumed);
                let (shard_tops, rest) = rest.split_at_mut(len);
                tops = rest;
                consumed = offset + len;
                work.push((
                    offset,
                    shard,
                    shard_tops,
                    scratch.next().expect("sized above"),
                ));
            }
            Self::in_pool(&self.pool, || {
                work.into_par_iter()
                    .for_each(|(offset, shard, tops, scratch)| {
                        with_lane!(shard, |sessions| {
                            for (i, session) in sessions.iter_mut().enumerate() {
                                let Some(observation) = &feedback[offset + i] else {
                                    if wants_tops {
                                        tops[i] = None;
                                    }
                                    continue;
                                };
                                session.observe(observation);
                                if shares_feedback
                                    && env_view
                                        .shared_feedback_into(offset + i, &mut scratch.shared)
                                {
                                    session
                                        .policy
                                        .observe_shared(&scratch.shared, &mut session.rng);
                                }
                                if wants_tops {
                                    session
                                        .policy
                                        .top_probabilities_into(1, &mut scratch.probabilities);
                                    tops[i] = scratch.probabilities.first().copied();
                                }
                            }
                        });
                    });
            });
        }
        let tops: &[Option<(NetworkId, f64)>] = if wants_tops { &self.env_tops } else { &[] };
        env.end_slot(t, &self.env_choices, tops);
        let observe_s = phase_start.elapsed().as_secs_f64();

        let timing = SlotTiming {
            begin_slot_s,
            choose_s,
            feedback_s,
            observe_s,
        };
        self.last_timing = Some(timing);
        if let Some(sink) = sink {
            sink.record(&TelemetryRecord {
                slot: t,
                active,
                metrics: env.telemetry().cloned().unwrap_or_default(),
                timing,
                latency,
                sampler: Some(self.sampler_counters()),
            });
        }

        // Reschedule the cohort on each session's own cadence; forward
        // progress is enforced even against a buggy `next_wake`.
        for &index in &self.cohort {
            let next = env.next_wake(index, t).max(t + 1);
            self.wakes.push(Reverse((next, index)));
        }
        self.decisions += active;
        self.slot = t + 1;
        Some(t)
    }

    /// Runs event-driven steps until the clock reaches `until`: every
    /// timestamp strictly below `until` at which anything happens is
    /// materialised (in order), then the clock jumps to `until` — idle gaps
    /// cost nothing. A subsequent [`step_env`](Self::step_env) or
    /// [`run_until`](Self::run_until) continues from slot `until`.
    pub fn run_until(&mut self, env: &mut dyn Environment, until: SlotIndex) {
        self.run_until_with_sink_impl(env, until, None);
    }

    /// [`run_until`](Self::run_until) streaming one [`TelemetryRecord`] per
    /// wake cohort into `sink` (see
    /// [`step_events_with_sink`](Self::step_events_with_sink)).
    pub fn run_until_with_sink(
        &mut self,
        env: &mut dyn Environment,
        until: SlotIndex,
        sink: &mut dyn TelemetrySink,
    ) {
        self.run_until_with_sink_impl(env, until, Some(sink));
    }

    fn run_until_with_sink_impl(
        &mut self,
        env: &mut dyn Environment,
        until: SlotIndex,
        mut sink: Option<&mut dyn TelemetrySink>,
    ) {
        self.prime_wakes(env);
        while let Some(t) = self.next_timestamp(env) {
            if t >= until {
                break;
            }
            match &mut sink {
                Some(sink) => self.step_events_with_sink(env, Some(&mut **sink)),
                None => self.step_events(env),
            };
        }
        if self.slot < until {
            self.slot = until;
        }
    }

    /// Wake-to-decision latency percentiles of the most recent event-driven
    /// cohort ([`step_events`](Self::step_events)), or `None` before the
    /// first cohort, when the last cohort made no decision, or when
    /// [`FleetConfig::wake_latency`] is off. Host timing only — excluded
    /// from the determinism contract and from snapshots.
    #[must_use]
    pub fn last_wake_latency(&self) -> Option<LatencyStats> {
        self.last_latency
    }

    /// Wall-clock phase breakdown of the most recent
    /// [`step_env`](Self::step_env) slot, or `None` before the first
    /// environment-driven step. Host timing only — excluded from the
    /// determinism contract and from snapshots.
    #[must_use]
    pub fn last_slot_timing(&self) -> Option<SlotTiming> {
        self.last_timing
    }

    /// Broadcasts a network-set change to every session (e.g. AP churn in the
    /// area the fleet simulates). Never panics: policies that do not support
    /// dynamism keep their state (see [`Policy::on_networks_changed`]).
    pub fn networks_changed(&mut self, available: &[NetworkId]) {
        let shard_size = self.config.shard_size.max(1);
        let mut work: Vec<ShardSessions<'_>> = Vec::new();
        for segment in &mut self.segments {
            work.extend(segment.shards(shard_size));
        }
        Self::in_pool(&self.pool, || {
            work.into_par_iter().for_each(|shard| {
                with_lane!(shard, |sessions| {
                    for session in sessions {
                        session
                            .policy
                            .on_networks_changed(available, &mut session.rng);
                    }
                });
            });
        });
    }

    /// The most recent choice of every session, in session order (`None`
    /// entries for sessions that have not chosen yet). Zero-alloc: returns a
    /// view of a buffer the step paths keep up to date.
    #[must_use]
    pub fn last_choices(&self) -> &[Option<NetworkId>] {
        &self.last
    }

    /// The policy of session `index` (in session order), for read-only
    /// inspection (name, stats, probabilities).
    #[must_use]
    pub fn policy(&self, index: usize) -> Option<&dyn Policy> {
        let mut index = index;
        for segment in &self.segments {
            let n = segment.len();
            if index < n {
                return Some(match segment {
                    LaneSegment::Exp3(lane) => &lane[index].policy,
                    LaneSegment::Smart(lane) => &lane[index].policy,
                    LaneSegment::Boxed(lane) => &*lane[index].policy,
                });
            }
            index -= n;
        }
        None
    }

    /// The policy kind of session `index` (in session order).
    #[must_use]
    pub fn kind(&self, index: usize) -> Option<PolicyKind> {
        let mut index = index;
        for segment in &self.segments {
            let n = segment.len();
            if index < n {
                return Some(match segment {
                    LaneSegment::Exp3(lane) => lane[index].kind,
                    LaneSegment::Smart(lane) => lane[index].kind,
                    LaneSegment::Boxed(lane) => lane[index].kind,
                });
            }
            index -= n;
        }
        None
    }

    /// Fleet-wide cumulative sampler counters (alias-table rebuilds and
    /// overlay-walk hits), summed in session order. Deterministic at any
    /// thread count; an O(N) scan, so telemetry paths call it once per
    /// recorded slot and only when a sink is attached.
    #[must_use]
    pub fn sampler_counters(&self) -> SamplerCounters {
        let mut totals = SamplerCounters::default();
        for_each_lane_session!(&self.segments, |session| {
            let stats = session.policy.stats();
            totals.rebuilds += stats.sampler_rebuilds;
            totals.overlay_hits += stats.overlay_hits;
        });
        totals
    }

    /// Aggregates fleet-wide metrics.
    ///
    /// Sessions are folded **in session order**, so the floating-point gain
    /// totals are identical across runs and thread counts.
    #[must_use]
    pub fn metrics(&self) -> FleetMetrics {
        let mut per_kind: Vec<(PolicyKind, KindMetrics)> = Vec::new();
        let mut switches = 0u64;
        let mut resets = 0u64;
        for_each_lane_session!(&self.segments, |session| {
            let stats = session.policy.stats();
            switches += stats.switches;
            resets += stats.resets;
            let entry = match per_kind.iter_mut().find(|(k, _)| *k == session.kind) {
                Some((_, entry)) => entry,
                None => {
                    per_kind.push((session.kind, KindMetrics::default()));
                    &mut per_kind.last_mut().expect("just pushed").1
                }
            };
            entry.sessions += 1;
            entry.policy.switches += stats.switches;
            entry.policy.blocks += stats.blocks;
            entry.policy.resets += stats.resets;
            entry.policy.switch_backs += stats.switch_backs;
            entry.policy.greedy_selections += stats.greedy_selections;
            entry.policy.explorations += stats.explorations;
            entry.policy.shared_observations += stats.shared_observations;
            entry.policy.sampler_rebuilds += stats.sampler_rebuilds;
            entry.policy.overlay_hits += stats.overlay_hits;
            entry.gains.merge(&session.gains);
        });
        per_kind.sort_by_key(|(kind, _)| PolicyKind::all().iter().position(|k| k == kind));
        FleetMetrics {
            sessions: self.len(),
            slot: self.slot,
            decisions: self.decisions,
            switches,
            resets,
            per_kind,
        }
    }

    /// Captures the whole fleet for checkpointing.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::UnsupportedPolicy`] when any session runs the
    /// centralized oracle (its state lives in the shared coordinator).
    pub fn snapshot(&self) -> Result<FleetSnapshot, SnapshotError> {
        let mut sessions = Vec::with_capacity(self.len());
        let mut failed: Option<SnapshotError> = None;
        for_each_lane_session!(&self.segments, |session| {
            if failed.is_none() {
                match session.policy.state() {
                    Some(policy) => sessions.push(SessionSnapshot {
                        id: session.id.0,
                        kind: session.kind,
                        policy,
                        rng: session.rng.state(),
                        gains: session.gains.clone(),
                        last_choice: session.last_choice,
                    }),
                    None => {
                        failed = Some(SnapshotError::UnsupportedPolicy {
                            session: session.id,
                            kind: session.kind,
                        });
                    }
                }
            }
        });
        if let Some(error) = failed {
            return Err(error);
        }
        let wake_queue = if self.wakes_primed {
            let mut pending: Vec<WakeEntry> = self
                .wakes
                .iter()
                .map(|Reverse((wake, session))| WakeEntry {
                    wake: *wake,
                    session: *session as u64,
                })
                .collect();
            // Heap iteration order is arbitrary; sort for stable bytes.
            pending.sort_by_key(|entry| (entry.wake, entry.session));
            Some(pending)
        } else {
            None
        };
        Ok(FleetSnapshot {
            version: SNAPSHOT_VERSION,
            config: self.config.clone(),
            slot: self.slot,
            next_id: self.next_id,
            decisions: self.decisions,
            sessions,
            environment: None,
            wake_queue,
        })
    }

    /// Captures the fleet **and** the environment it is being stepped
    /// through, so the pair can resume bit-identically mid-scenario —
    /// pending bandwidth events, mobility positions and the environment RNG
    /// included.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Environment`] when the environment does not
    /// support checkpointing, plus every error [`snapshot`](Self::snapshot)
    /// can produce.
    pub fn snapshot_env(&self, env: &dyn Environment) -> Result<FleetSnapshot, SnapshotError> {
        let state = env.state().ok_or_else(|| {
            SnapshotError::Environment("environment does not support checkpointing".to_string())
        })?;
        let mut snapshot = self.snapshot()?;
        snapshot.environment = Some(state);
        Ok(snapshot)
    }

    /// Restores a fleet from a snapshot taken with
    /// [`snapshot_env`](Self::snapshot_env), applying the embedded
    /// environment state to `env` (a freshly built environment with the same
    /// static configuration).
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Environment`] when the snapshot carries no
    /// environment state or the environment rejects it, plus every error
    /// [`from_snapshot`](Self::from_snapshot) can produce.
    pub fn from_snapshot_env(
        snapshot: FleetSnapshot,
        env: &mut dyn Environment,
    ) -> Result<Self, SnapshotError> {
        // Validate everything that can fail *before* mutating the live
        // environment — a rejected snapshot must leave `env` untouched.
        if snapshot.version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(snapshot.version));
        }
        let state = snapshot.environment.as_deref().ok_or_else(|| {
            SnapshotError::Environment("snapshot carries no environment state".to_string())
        })?;
        env.restore(state)
            .map_err(|error| SnapshotError::Environment(error.to_string()))?;
        Self::from_snapshot(snapshot)
    }

    /// Restores a fleet from a snapshot. The restored fleet continues
    /// bit-identically to the fleet the snapshot was taken from.
    ///
    /// With [`FleetConfig::fleet_lanes`] recorded as on, EXP3-family policy
    /// states are routed back into the monomorphized lanes; otherwise (and
    /// for every other state) they are boxed onto the fallback lane. Either
    /// way the restored sessions hold the same states and RNG streams, so
    /// the routing never changes the trajectory.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::UnsupportedVersion`] for snapshots from an
    /// incompatible engine version.
    pub fn from_snapshot(snapshot: FleetSnapshot) -> Result<Self, SnapshotError> {
        if snapshot.version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(snapshot.version));
        }
        let lanes = snapshot.config.fleet_lanes;
        let mut engine = FleetEngine::new(snapshot.config);
        engine.slot = snapshot.slot;
        engine.decisions = snapshot.decisions;
        for s in snapshot.sessions {
            let id = SessionId(s.id);
            let rng = StdRng::from_state(s.rng);
            engine.last.push(s.last_choice);
            match s.policy {
                PolicyState::Exp3(policy) if lanes => engine.append_exp3(LaneSession {
                    id,
                    kind: s.kind,
                    policy: *policy,
                    rng,
                    gains: s.gains,
                    last_choice: s.last_choice,
                }),
                PolicyState::SmartExp3(policy) if lanes => engine.append_smart(LaneSession {
                    id,
                    kind: s.kind,
                    policy: *policy,
                    rng,
                    gains: s.gains,
                    last_choice: s.last_choice,
                }),
                other => engine.append_boxed(LaneSession {
                    id,
                    kind: s.kind,
                    policy: other.into_policy(),
                    rng,
                    gains: s.gains,
                    last_choice: s.last_choice,
                }),
            }
        }
        engine.next_id = snapshot.next_id;
        if let Some(pending) = snapshot.wake_queue {
            engine.wakes = pending
                .into_iter()
                .map(|entry| Reverse((entry.wake, entry.session as usize)))
                .collect();
            engine.wakes_primed = true;
        }
        Ok(engine)
    }

    /// Serializes a snapshot of the fleet to JSON text.
    ///
    /// # Errors
    ///
    /// Propagates [`snapshot`](Self::snapshot) errors.
    pub fn to_json(&self) -> Result<String, SnapshotError> {
        self.snapshot()?.to_json()
    }

    /// Restores a fleet from JSON text produced by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Malformed`] on parse failures and
    /// [`SnapshotError::UnsupportedVersion`] on version mismatches.
    pub fn from_json(text: &str) -> Result<Self, SnapshotError> {
        // Probe the version first: snapshots from other engine releases may
        // have a different field set (version 2 lacks `environment`), and
        // the accurate diagnostic for those is UnsupportedVersion, not a
        // missing-field parse error.
        #[derive(Deserialize)]
        struct VersionProbe {
            version: u32,
        }
        let probe: VersionProbe =
            serde_json::from_str(text).map_err(|e| SnapshotError::Malformed(e.to_string()))?;
        if probe.version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(probe.version));
        }
        let snapshot: FleetSnapshot =
            serde_json::from_str(text).map_err(|e| SnapshotError::Malformed(e.to_string()))?;
        Self::from_snapshot(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartexp3_core::Observation;

    fn rates() -> Vec<(NetworkId, f64)> {
        vec![
            (NetworkId(0), 4.0),
            (NetworkId(1), 7.0),
            (NetworkId(2), 22.0),
        ]
    }

    fn feedback(ctx: &mut StepContext<'_>) -> Observation {
        // Deterministic per-session environment: network 2 is best, with a
        // session-dependent wobble so sessions do not all look identical.
        let wobble = (ctx.session.0 % 7) as f64 / 100.0;
        let gain = if ctx.chosen == NetworkId(2) {
            0.85 - wobble
        } else {
            0.2 + wobble
        };
        let mut obs = Observation::bandit(ctx.slot, ctx.chosen, gain * 22.0, gain);
        if ctx.previous.is_some_and(|p| p != ctx.chosen) {
            obs = obs.with_switch(0.5);
        }
        obs
    }

    fn build_fleet(threads: Option<usize>, shard_size: usize, sessions: usize) -> FleetEngine {
        let mut config = FleetConfig::with_root_seed(42).with_shard_size(shard_size);
        config.threads = threads;
        let mut factory = PolicyFactory::new(rates()).unwrap();
        let mut fleet = FleetEngine::new(config);
        fleet
            .add_fleet(&mut factory, PolicyKind::SmartExp3, sessions / 2)
            .unwrap();
        fleet
            .add_fleet(&mut factory, PolicyKind::Exp3, sessions / 4)
            .unwrap();
        fleet
            .add_fleet(
                &mut factory,
                PolicyKind::Greedy,
                sessions - sessions / 2 - sessions / 4,
            )
            .unwrap();
        fleet
    }

    #[test]
    fn session_streams_are_decorrelated() {
        use rand::RngCore;
        let mut a = session_rng(1, SessionId(0));
        let mut b = session_rng(1, SessionId(1));
        let mut c = session_rng(2, SessionId(0));
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        assert_ne!(xs, (0..4).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert_ne!(xs, (0..4).map(|_| c.next_u64()).collect::<Vec<_>>());
        // The (root, id) combine must not be symmetric: fleet 1's session 2
        // and fleet 2's session 1 are different streams.
        let mut d = session_rng(1, SessionId(2));
        let mut e = session_rng(2, SessionId(1));
        assert_ne!(
            (0..4).map(|_| d.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| e.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn two_phase_and_fused_stepping_agree() {
        let mut fused = build_fleet(Some(2), 16, 100);
        let mut phased = build_fleet(Some(2), 16, 100);
        for _ in 0..30 {
            fused.step_with(feedback);

            let slot = phased.slot();
            let previous = phased.last_choices().to_vec();
            let choices = phased.choose_all().to_vec();
            let mut scratch = SlotScratch::new();
            let observations: Vec<Observation> = choices
                .iter()
                .enumerate()
                .map(|(i, &chosen)| {
                    feedback(&mut StepContext {
                        session: SessionId(i as u64),
                        slot,
                        chosen,
                        previous: previous[i],
                        scratch: &mut scratch,
                    })
                })
                .collect();
            phased.observe_all(&observations);
        }
        assert_eq!(fused.metrics(), phased.metrics());
    }

    #[test]
    fn metrics_aggregate_per_kind() {
        let mut fleet = build_fleet(Some(1), 32, 80);
        fleet.run_with(50, feedback);
        let metrics = fleet.metrics();
        assert_eq!(metrics.sessions, 80);
        assert_eq!(metrics.decisions, 50 * 80);
        assert_eq!(metrics.slot, 50);
        let smart = metrics.kind(PolicyKind::SmartExp3).unwrap();
        assert_eq!(smart.sessions, 40);
        assert!(smart.mean_gain() > 0.0);
        assert_eq!(
            smart.gains.total_slots(),
            50 * 40,
            "every smart session records every slot"
        );
        // Per-kind order follows PolicyKind::all().
        let kinds: Vec<PolicyKind> = metrics.per_kind.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            kinds,
            vec![PolicyKind::Exp3, PolicyKind::SmartExp3, PolicyKind::Greedy]
        );
        let display = metrics.to_string();
        assert!(display.contains("80 sessions"));
        assert!(display.contains("Smart EXP3"));
    }

    #[test]
    fn scratch_full_gains_buffers_are_recycled() {
        let mut factory = PolicyFactory::new(rates()).unwrap();
        let mut fleet = FleetEngine::new(FleetConfig::with_root_seed(9).with_threads(1));
        fleet
            .add_fleet(&mut factory, PolicyKind::FullInformation, 8)
            .unwrap();
        for _ in 0..30 {
            fleet.step_with(|ctx| {
                let mut gains = ctx.scratch.full_gains_buffer();
                assert!(gains.is_empty(), "recycled buffer must come back clean");
                gains.extend([
                    (NetworkId(0), 0.2),
                    (NetworkId(1), 0.3),
                    (NetworkId(2), 0.9),
                ]);
                let gain = if ctx.chosen == NetworkId(2) {
                    0.9
                } else {
                    0.25
                };
                Observation::bandit(ctx.slot, ctx.chosen, gain * 22.0, gain).with_full_gains(gains)
            });
        }
        let metrics = fleet.metrics();
        assert_eq!(metrics.decisions, 30 * 8);
        let full = metrics.kind(PolicyKind::FullInformation).unwrap();
        assert!(full.mean_gain() > 0.0);
    }

    #[test]
    fn centralized_sessions_cannot_snapshot() {
        let mut factory = PolicyFactory::new(rates()).unwrap();
        let mut fleet = FleetEngine::new(FleetConfig::default());
        fleet
            .add_fleet(&mut factory, PolicyKind::Centralized, 3)
            .unwrap();
        match fleet.snapshot() {
            Err(SnapshotError::UnsupportedPolicy { kind, .. }) => {
                assert_eq!(kind, PolicyKind::Centralized);
            }
            other => panic!("expected UnsupportedPolicy, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_version_is_checked() {
        let fleet = build_fleet(Some(1), 8, 4);
        let mut snapshot = fleet.snapshot().unwrap();
        snapshot.version = 999;
        match FleetEngine::from_snapshot(snapshot) {
            Err(SnapshotError::UnsupportedVersion(999)) => {}
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
        assert!(FleetEngine::from_json("{not json").is_err());
        // Previous-release texts (version 2 lacks the `environment` field,
        // version 3 lacks the cooperative-feedback counters in its policy
        // states, version 4 lacks the partitioned-feedback config switch,
        // version 5 lacks the per-policy sampler strategy, version 6 lacks
        // the fleet-lanes config switch, version 7 lacks the event-engine
        // wake queue, version 8 lacks the alias-sampler state) must be
        // diagnosed as unsupported versions, not malformed.
        for version in [2u32, 3, 4, 5, 6, 7, 8] {
            match FleetEngine::from_json(&format!("{{\"version\":{version},\"sessions\":[]}}")) {
                Err(SnapshotError::UnsupportedVersion(v)) if v == version => {}
                other => panic!("expected UnsupportedVersion({version}), got {other:?}"),
            }
        }
        // Every probed version carries an actionable hint naming the release
        // that can still read the checkpoint; unknown versions stay generic.
        for version in [5u32, 6, 7, 8] {
            let text = SnapshotError::UnsupportedVersion(version).to_string();
            assert!(
                text.contains(&format!("re-run under SNAPSHOT_VERSION {version}")),
                "v{version} hint missing from: {text}"
            );
        }
        let generic = SnapshotError::UnsupportedVersion(999).to_string();
        assert!(
            !generic.contains("re-run under"),
            "unexpected hint: {generic}"
        );
    }

    #[test]
    fn networks_changed_never_panics_and_retargets() {
        let mut fleet = build_fleet(Some(2), 8, 40);
        fleet.run_with(10, feedback);
        // Network 2 disappears; no session may panic, adaptive policies
        // must stop choosing it.
        let remaining = [NetworkId(0), NetworkId(1)];
        fleet.networks_changed(&remaining);
        fleet.step_with(|ctx| {
            let gain = 0.4;
            Observation::bandit(ctx.slot, ctx.chosen, gain * 22.0, gain)
        });
        for index in 0..fleet.len() {
            let kind = fleet.kind(index).unwrap();
            let choice = fleet.last_choices()[index];
            if matches!(kind, PolicyKind::SmartExp3 | PolicyKind::Greedy) {
                assert!(
                    remaining.contains(&choice.unwrap()),
                    "session#{index} still on a vanished network"
                );
            }
        }
    }

    #[test]
    fn lane_fleets_match_boxed_fleets_exactly() {
        // The in-crate smoke version of the lane/boxed equivalence property
        // (the full churn + snapshot matrix lives in tests/lanes.rs): same
        // seed, lanes on vs off, identical trajectory and metrics.
        let lanes = build_fleet(Some(2), 16, 60);
        let mut boxed = FleetEngine::new(lanes.config().clone().with_fleet_lanes(false));
        let mut factory = PolicyFactory::new(rates()).unwrap();
        boxed
            .add_fleet(&mut factory, PolicyKind::SmartExp3, 30)
            .unwrap();
        boxed.add_fleet(&mut factory, PolicyKind::Exp3, 15).unwrap();
        boxed
            .add_fleet(&mut factory, PolicyKind::Greedy, 15)
            .unwrap();
        let mut lanes = lanes;
        for _ in 0..25 {
            lanes.step_with(feedback);
            boxed.step_with(feedback);
            assert_eq!(lanes.last_choices(), boxed.last_choices());
        }
        assert_eq!(lanes.metrics(), boxed.metrics());
    }

    /// Deterministic world for event-engine tests: every session is always
    /// active, feedback is a pure function of `(slot, choice, session)`, the
    /// wake protocol staggers sessions over `cadences` and `events` are
    /// pushed environment timestamps. `begin_slots` records every
    /// state-advance so tests can assert which timestamps materialised.
    struct CadenceEnv {
        sessions: usize,
        cadences: Vec<usize>,
        events: Vec<SlotIndex>,
        begin_slots: Vec<SlotIndex>,
    }

    impl CadenceEnv {
        fn uniform(sessions: usize) -> Self {
            CadenceEnv {
                sessions,
                cadences: vec![1],
                events: Vec::new(),
                begin_slots: Vec::new(),
            }
        }

        fn cadence_of(&self, session: usize) -> usize {
            self.cadences[session % self.cadences.len()].max(1)
        }
    }

    impl Environment for CadenceEnv {
        fn sessions(&self) -> usize {
            self.sessions
        }

        fn begin_slot(&mut self, slot: SlotIndex) {
            self.begin_slots.push(slot);
        }

        fn session_view(
            &self,
            _session: usize,
            _slot: SlotIndex,
        ) -> smartexp3_core::SessionView<'_> {
            smartexp3_core::SessionView::active_static()
        }

        fn feedback(
            &mut self,
            slot: SlotIndex,
            choices: &[Option<NetworkId>],
            out: &mut [Option<Observation>],
        ) {
            for (session, (choice, out)) in choices.iter().zip(out.iter_mut()).enumerate() {
                *out = choice.map(|chosen| {
                    let wobble = ((session + slot) % 5) as f64 / 100.0;
                    let gain = if chosen == NetworkId(2) {
                        0.8 - wobble
                    } else {
                        0.25 + wobble
                    };
                    Observation::bandit(slot, chosen, gain * 22.0, gain)
                });
            }
        }

        fn wake_cadence(&self, session: usize) -> usize {
            self.cadence_of(session)
        }

        fn first_wake(&self, session: usize) -> SlotIndex {
            session % self.cadence_of(session)
        }

        fn next_env_event(&self, from: SlotIndex) -> Option<SlotIndex> {
            self.events.iter().copied().find(|&at| at >= from)
        }
    }

    #[test]
    fn event_stepping_is_bit_identical_to_sync_at_uniform_cadence() {
        // The in-crate smoke version of the correctness anchor (the full
        // world × threads × lanes × partitioning matrix lives in
        // crates/env/tests): uniform cadence 1 makes every cohort the whole
        // fleet, so step_events must reproduce step_env bit-for-bit.
        for threads in [Some(1), Some(2)] {
            let mut sync = build_fleet(threads, 8, 40);
            let mut events = build_fleet(threads, 8, 40);
            let mut sync_env = CadenceEnv::uniform(40);
            let mut events_env = CadenceEnv::uniform(40);
            for step in 0..20 {
                sync.step_env(&mut sync_env);
                assert_eq!(events.step_events(&mut events_env), Some(step));
                assert_eq!(events.last_choices(), sync.last_choices(), "step {step}");
            }
            assert_eq!(events.slot(), sync.slot());
            assert_eq!(events.metrics(), sync.metrics());
            assert_eq!(events_env.begin_slots, sync_env.begin_slots);
            let mut event_snapshot = events.snapshot().unwrap();
            // The event engine additionally carries its wake queue; the
            // session states and RNG streams must match exactly.
            assert!(event_snapshot.wake_queue.is_some());
            event_snapshot.wake_queue = None;
            assert_eq!(
                serde_json::to_string(&event_snapshot).unwrap(),
                serde_json::to_string(&sync.snapshot().unwrap()).unwrap()
            );
        }
    }

    #[test]
    fn heterogeneous_cadences_wake_only_due_cohorts() {
        let mut fleet = build_fleet(Some(2), 8, 40);
        let mut env = CadenceEnv {
            sessions: 40,
            cadences: vec![1, 2, 4, 8],
            events: Vec::new(),
            begin_slots: Vec::new(),
        };
        let until = 16;
        fleet.run_until(&mut env, until);
        assert_eq!(fleet.slot(), until);
        // Each session wakes at first_wake, then every cadence slots; count
        // the wakes strictly below `until` per session.
        let expected: u64 = (0..40)
            .map(|session| {
                let cadence = env.cadence_of(session);
                let first = session % cadence;
                ((until - first).div_ceil(cadence)) as u64
            })
            .sum();
        assert_eq!(fleet.metrics().decisions, expected);
        // Slot 15 wakes the cadence-1 group (10), the cadence-2 group (odd
        // first wakes, 10) and the cadence-8 sessions staggered to 7 mod 8
        // (5) — 25 decisions, never the whole fleet.
        assert_eq!(fleet.last_wake_latency().unwrap().count, 25);
    }

    #[test]
    fn env_event_only_timestamps_advance_state_without_decisions() {
        let mut fleet = build_fleet(Some(1), 8, 8);
        let mut env = CadenceEnv {
            sessions: 8,
            cadences: vec![64],
            events: vec![3, 5],
            begin_slots: Vec::new(),
        };
        // All eight sessions first wake in 0..8 (staggered); the pushed
        // events at 3 and 5 coincide with wakes. Run past every wake, then
        // the next timestamps are event-free: nothing before slot 64.
        fleet.run_until(&mut env, 10);
        assert_eq!(fleet.slot(), 10);
        assert_eq!(env.begin_slots, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(fleet.metrics().decisions, 8);
        // A world with pushed events beyond every wake: the engine
        // materialises the event timestamp, advances state, decides nothing.
        let mut fleet = build_fleet(Some(1), 8, 8);
        let mut env = CadenceEnv {
            sessions: 8,
            cadences: vec![64],
            events: vec![20],
            begin_slots: Vec::new(),
        };
        fleet.run_until(&mut env, 8);
        let decided_by_8 = fleet.metrics().decisions;
        assert_eq!(fleet.step_events(&mut env), Some(20));
        assert_eq!(*env.begin_slots.last().unwrap(), 20);
        assert_eq!(fleet.metrics().decisions, decided_by_8);
        assert_eq!(fleet.slot(), 21);
    }

    #[test]
    fn wake_queue_round_trips_through_snapshots() {
        let mut original = build_fleet(Some(2), 8, 40);
        let mut env = CadenceEnv {
            sessions: 40,
            cadences: vec![1, 3, 5],
            events: Vec::new(),
            begin_slots: Vec::new(),
        };
        for _ in 0..7 {
            original.step_events(&mut env);
        }
        let snapshot = original.snapshot().unwrap();
        let queue = snapshot.wake_queue.clone().expect("queue primed");
        assert_eq!(queue.len(), 40);
        assert!(queue
            .windows(2)
            .all(|w| (w[0].wake, w[0].session) < (w[1].wake, w[1].session)));
        let mut restored = FleetEngine::from_snapshot(snapshot).unwrap();
        // The restored fleet continues on the recorded schedule without
        // re-priming — bit-identical timestamps, choices and bytes.
        let mut restored_env = CadenceEnv {
            sessions: 40,
            cadences: vec![1, 3, 5],
            events: Vec::new(),
            begin_slots: Vec::new(),
        };
        for _ in 0..9 {
            let expected = original.step_events(&mut env);
            assert_eq!(restored.step_events(&mut restored_env), expected);
            assert_eq!(restored.last_choices(), original.last_choices());
        }
        assert_eq!(restored.to_json().unwrap(), original.to_json().unwrap());
    }

    #[test]
    fn wake_latency_off_skips_instrumentation_without_touching_trajectories() {
        let build = |wake_latency: bool| {
            let mut config = FleetConfig::with_root_seed(42)
                .with_shard_size(8)
                .with_wake_latency(wake_latency);
            config.threads = Some(2);
            let mut factory = PolicyFactory::new(rates()).unwrap();
            let mut fleet = FleetEngine::new(config);
            fleet
                .add_fleet(&mut factory, PolicyKind::SmartExp3, 20)
                .unwrap();
            fleet.add_fleet(&mut factory, PolicyKind::Exp3, 20).unwrap();
            fleet
        };
        let mut on = build(true);
        let mut off = build(false);
        let mut on_env = CadenceEnv {
            sessions: 40,
            cadences: vec![1, 2, 4],
            events: Vec::new(),
            begin_slots: Vec::new(),
        };
        let mut off_env = CadenceEnv {
            sessions: 40,
            cadences: vec![1, 2, 4],
            events: Vec::new(),
            begin_slots: Vec::new(),
        };
        for step in 0..12 {
            assert_eq!(off.step_events(&mut off_env), on.step_events(&mut on_env));
            assert_eq!(off.last_choices(), on.last_choices(), "step {step}");
        }
        // Instrumentation is the only difference: the histogram never runs…
        assert!(on.last_wake_latency().is_some());
        assert!(off.last_wake_latency().is_none());
        assert_eq!(off.metrics(), on.metrics());
        // …and the knob lives outside every determinism contract, so the
        // snapshots agree byte-for-byte once it is normalised away.
        let mut off_snapshot = off.snapshot().unwrap();
        off_snapshot.config.wake_latency = true;
        assert_eq!(
            serde_json::to_string(&off_snapshot).unwrap(),
            serde_json::to_string(&on.snapshot().unwrap()).unwrap()
        );
    }

    #[test]
    fn run_until_fast_forwards_idle_tails() {
        let mut fleet = build_fleet(Some(1), 8, 8);
        let mut env = CadenceEnv {
            sessions: 8,
            cadences: vec![100],
            events: Vec::new(),
            begin_slots: Vec::new(),
        };
        // Every session wakes once in 0..8, then nothing until ~100; the
        // clock jumps straight to the horizon.
        fleet.run_until(&mut env, 50);
        assert_eq!(fleet.slot(), 50);
        assert_eq!(fleet.metrics().decisions, 8);
        assert_eq!(env.begin_slots.len(), 8);
        // Latency percentiles were recorded for the last cohort.
        let latency = fleet.last_wake_latency().expect("cohort decided");
        assert_eq!(latency.count, 1);
        assert!(latency.p50_s <= latency.p95_s && latency.p95_s <= latency.p99_s);
    }
}
