//! Fleet-engine guarantees: thread-count determinism, bit-identical
//! snapshot/restore, and graceful handling of environments that deactivate
//! sessions mid-slot.

use smartexp3_core::{
    Environment, NetworkId, Observation, PolicyFactory, PolicyKind, SessionView, SlotIndex,
};
use smartexp3_engine::{FleetConfig, FleetEngine, StepContext};

fn rates() -> Vec<(NetworkId, f64)> {
    netsim::setting1_networks()
        .iter()
        .map(|n| (n.id, n.bandwidth_mbps))
        .collect()
}

fn mixed_fleet(config: FleetConfig, sessions: usize) -> FleetEngine {
    let mut factory = PolicyFactory::new(rates()).unwrap();
    let mut fleet = FleetEngine::new(config);
    for kind in [
        PolicyKind::SmartExp3,
        PolicyKind::Exp3,
        PolicyKind::Greedy,
        PolicyKind::FixedRandom,
    ] {
        fleet.add_fleet(&mut factory, kind, sessions / 4).unwrap();
    }
    fleet
}

/// Congestion feedback: every session choosing network `n` receives an equal
/// share of `n`'s bandwidth (the paper's sharing model), so sessions couple
/// and the two-phase API is required.
fn run_congestion(config: FleetConfig, sessions: usize, slots: usize) -> FleetEngine {
    let bandwidth: Vec<(NetworkId, f64)> = rates();
    let mut fleet = mixed_fleet(config, sessions);
    for _ in 0..slots {
        let slot = fleet.slot();
        let choices = fleet.choose_all().to_vec();
        let mut counts = std::collections::BTreeMap::new();
        for &chosen in &choices {
            *counts.entry(chosen).or_insert(0usize) += 1;
        }
        let observations: Vec<Observation> = choices
            .iter()
            .map(|&chosen| {
                let capacity = bandwidth
                    .iter()
                    .find(|(n, _)| *n == chosen)
                    .map(|(_, mbps)| *mbps)
                    .unwrap_or(0.0);
                let share = capacity / counts[&chosen] as f64;
                Observation::bandit(slot, chosen, share, (share / 22.0).min(1.0))
            })
            .collect();
        fleet.observe_all(&observations);
    }
    fleet
}

fn independent_feedback(ctx: &mut StepContext<'_>) -> Observation {
    let gain = if ctx.chosen == NetworkId(2) {
        0.8 + (ctx.session.0 % 5) as f64 / 50.0
    } else {
        0.25
    };
    Observation::bandit(ctx.slot, ctx.chosen, gain * 22.0, gain.min(1.0))
}

#[test]
fn fleet_results_are_identical_at_1_2_and_8_threads() {
    let reference = run_congestion(FleetConfig::with_root_seed(7).with_threads(1), 400, 60);
    let reference_json = reference.to_json().unwrap();
    let reference_metrics = reference.metrics();

    for threads in [2usize, 8] {
        let fleet = run_congestion(
            FleetConfig::with_root_seed(7).with_threads(threads),
            400,
            60,
        );
        assert_eq!(
            fleet.metrics(),
            reference_metrics,
            "metrics diverged at {threads} threads"
        );
        // The serialized fleets differ only in the recorded thread config;
        // normalising that field, every byte of state must match.
        let json = fleet.to_json().unwrap();
        let normalise = |s: &str, t: usize| s.replace(&format!("\"threads\":{t}"), "\"threads\":1");
        assert_eq!(
            normalise(&json, threads),
            normalise(&reference_json, 1),
            "serialized state diverged at {threads} threads"
        );
    }
}

#[test]
fn fleet_results_are_independent_of_shard_size() {
    let reference = run_congestion(
        FleetConfig::with_root_seed(3)
            .with_threads(4)
            .with_shard_size(1024),
        300,
        40,
    )
    .metrics();
    for shard_size in [1usize, 7, 64] {
        let metrics = run_congestion(
            FleetConfig::with_root_seed(3)
                .with_threads(4)
                .with_shard_size(shard_size),
            300,
            40,
        )
        .metrics();
        assert_eq!(metrics, reference, "diverged at shard size {shard_size}");
    }
}

#[test]
fn snapshot_restore_resumes_the_exact_trajectory() {
    let config = FleetConfig::with_root_seed(11).with_threads(4);
    let total_slots = 80usize;
    let cut = 35usize;

    // Uninterrupted reference run.
    let mut reference = mixed_fleet(config.clone(), 200);
    reference.run_with(total_slots, independent_feedback);

    // Interrupted run: step to `cut`, checkpoint through JSON, resume.
    let mut first_half = mixed_fleet(config, 200);
    first_half.run_with(cut, independent_feedback);
    let checkpoint = first_half.to_json().unwrap();
    drop(first_half);

    let mut resumed = FleetEngine::from_json(&checkpoint).unwrap();
    assert_eq!(resumed.slot(), cut);
    assert_eq!(resumed.len(), 200);
    resumed.run_with(total_slots - cut, independent_feedback);

    assert_eq!(resumed.metrics(), reference.metrics());
    assert_eq!(
        resumed.to_json().unwrap(),
        reference.to_json().unwrap(),
        "resumed fleet must be bit-identical to the uninterrupted one"
    );
}

/// An environment that misbehaves on purpose: every session is reported
/// active for the choose phase, but sessions whose index matches the slot
/// parity are deactivated *between* choose and observe — their feedback slot
/// stays `None` even though they chose. A third of the sessions additionally
/// sit whole slots out the regular way (inactive in `session_view`).
struct MidSlotDeactivator {
    sessions: usize,
    graded: u64,
    dropped: u64,
}

impl Environment for MidSlotDeactivator {
    fn sessions(&self) -> usize {
        self.sessions
    }

    fn begin_slot(&mut self, _slot: SlotIndex) {}

    fn session_view(&self, session: usize, slot: SlotIndex) -> SessionView<'_> {
        SessionView {
            active: session % 3 != 2 || slot.is_multiple_of(2),
            networks_changed: None,
        }
    }

    fn feedback(
        &mut self,
        slot: SlotIndex,
        choices: &[Option<NetworkId>],
        out: &mut [Option<Observation>],
    ) {
        for (index, choice) in choices.iter().enumerate() {
            out[index] = match choice {
                // Mid-slot deactivation: the session chose, but the
                // environment withdraws it before feedback is delivered.
                Some(_) if index % 2 == slot % 2 => None,
                Some(chosen) => {
                    self.graded += 1;
                    Some(Observation::bandit(slot, *chosen, 11.0, 0.5))
                }
                None => {
                    self.dropped += 1;
                    None
                }
            };
        }
    }

    fn wants_top_choices(&self) -> bool {
        // Exercise the top-choice read path alongside the skipped sessions.
        true
    }
}

#[test]
fn mid_slot_deactivation_is_skipped_gracefully() {
    // Regression: the engine used to assume every choosing session observes
    // feedback (`last_choice.expect("choice just made")`); an environment
    // deactivating a session between choose and observe must not panic.
    let mut fleet = mixed_fleet(FleetConfig::with_root_seed(23).with_threads(2), 60);
    let mut env = MidSlotDeactivator {
        sessions: 60,
        graded: 0,
        dropped: 0,
    };
    fleet.run_env(&mut env, 30);
    assert_eq!(fleet.slot(), 30);
    assert!(env.graded > 0, "some sessions must have been graded");
    assert!(env.dropped > 0, "some sessions must have sat slots out");
    // Every session that ever chose keeps its last choice visible; the
    // choose/observe mismatch never corrupts the mirror.
    for (index, choice) in fleet.last_choices().iter().enumerate() {
        assert!(
            choice.is_some(),
            "session {index} chose at least once and must keep its last choice"
        );
    }
    // The two-phase path stays usable after the environment-driven slots.
    let choices = fleet.choose_all().to_vec();
    assert_eq!(choices.len(), 60);
    let observations: Vec<Observation> = choices
        .iter()
        .map(|&chosen| Observation::bandit(fleet.slot(), chosen, 11.0, 0.5))
        .collect();
    fleet.observe_all(&observations);
    assert_eq!(fleet.slot(), 31);
}

#[test]
fn snapshot_of_a_snapshot_is_stable() {
    let mut fleet = mixed_fleet(FleetConfig::with_root_seed(5), 40);
    fleet.run_with(25, independent_feedback);
    let once = fleet.to_json().unwrap();
    let twice = FleetEngine::from_json(&once).unwrap().to_json().unwrap();
    assert_eq!(once, twice);
}
