//! Fleet-engine guarantees: thread-count determinism and bit-identical
//! snapshot/restore.

use smartexp3_core::{NetworkId, Observation, PolicyFactory, PolicyKind};
use smartexp3_engine::{FleetConfig, FleetEngine, StepContext};

fn rates() -> Vec<(NetworkId, f64)> {
    netsim::setting1_networks()
        .iter()
        .map(|n| (n.id, n.bandwidth_mbps))
        .collect()
}

fn mixed_fleet(config: FleetConfig, sessions: usize) -> FleetEngine {
    let mut factory = PolicyFactory::new(rates()).unwrap();
    let mut fleet = FleetEngine::new(config);
    for kind in [
        PolicyKind::SmartExp3,
        PolicyKind::Exp3,
        PolicyKind::Greedy,
        PolicyKind::FixedRandom,
    ] {
        fleet.add_fleet(&mut factory, kind, sessions / 4).unwrap();
    }
    fleet
}

/// Congestion feedback: every session choosing network `n` receives an equal
/// share of `n`'s bandwidth (the paper's sharing model), so sessions couple
/// and the two-phase API is required.
fn run_congestion(config: FleetConfig, sessions: usize, slots: usize) -> FleetEngine {
    let bandwidth: Vec<(NetworkId, f64)> = rates();
    let mut fleet = mixed_fleet(config, sessions);
    for _ in 0..slots {
        let slot = fleet.slot();
        let choices = fleet.choose_all().to_vec();
        let mut counts = std::collections::BTreeMap::new();
        for &chosen in &choices {
            *counts.entry(chosen).or_insert(0usize) += 1;
        }
        let observations: Vec<Observation> = choices
            .iter()
            .map(|&chosen| {
                let capacity = bandwidth
                    .iter()
                    .find(|(n, _)| *n == chosen)
                    .map(|(_, mbps)| *mbps)
                    .unwrap_or(0.0);
                let share = capacity / counts[&chosen] as f64;
                Observation::bandit(slot, chosen, share, (share / 22.0).min(1.0))
            })
            .collect();
        fleet.observe_all(&observations);
    }
    fleet
}

fn independent_feedback(ctx: &mut StepContext<'_>) -> Observation {
    let gain = if ctx.chosen == NetworkId(2) {
        0.8 + (ctx.session.0 % 5) as f64 / 50.0
    } else {
        0.25
    };
    Observation::bandit(ctx.slot, ctx.chosen, gain * 22.0, gain.min(1.0))
}

#[test]
fn fleet_results_are_identical_at_1_2_and_8_threads() {
    let reference = run_congestion(FleetConfig::with_root_seed(7).with_threads(1), 400, 60);
    let reference_json = reference.to_json().unwrap();
    let reference_metrics = reference.metrics();

    for threads in [2usize, 8] {
        let fleet = run_congestion(
            FleetConfig::with_root_seed(7).with_threads(threads),
            400,
            60,
        );
        assert_eq!(
            fleet.metrics(),
            reference_metrics,
            "metrics diverged at {threads} threads"
        );
        // The serialized fleets differ only in the recorded thread config;
        // normalising that field, every byte of state must match.
        let json = fleet.to_json().unwrap();
        let normalise = |s: &str, t: usize| s.replace(&format!("\"threads\":{t}"), "\"threads\":1");
        assert_eq!(
            normalise(&json, threads),
            normalise(&reference_json, 1),
            "serialized state diverged at {threads} threads"
        );
    }
}

#[test]
fn fleet_results_are_independent_of_shard_size() {
    let reference = run_congestion(
        FleetConfig::with_root_seed(3)
            .with_threads(4)
            .with_shard_size(1024),
        300,
        40,
    )
    .metrics();
    for shard_size in [1usize, 7, 64] {
        let metrics = run_congestion(
            FleetConfig::with_root_seed(3)
                .with_threads(4)
                .with_shard_size(shard_size),
            300,
            40,
        )
        .metrics();
        assert_eq!(metrics, reference, "diverged at shard size {shard_size}");
    }
}

#[test]
fn snapshot_restore_resumes_the_exact_trajectory() {
    let config = FleetConfig::with_root_seed(11).with_threads(4);
    let total_slots = 80usize;
    let cut = 35usize;

    // Uninterrupted reference run.
    let mut reference = mixed_fleet(config.clone(), 200);
    reference.run_with(total_slots, independent_feedback);

    // Interrupted run: step to `cut`, checkpoint through JSON, resume.
    let mut first_half = mixed_fleet(config, 200);
    first_half.run_with(cut, independent_feedback);
    let checkpoint = first_half.to_json().unwrap();
    drop(first_half);

    let mut resumed = FleetEngine::from_json(&checkpoint).unwrap();
    assert_eq!(resumed.slot(), cut);
    assert_eq!(resumed.len(), 200);
    resumed.run_with(total_slots - cut, independent_feedback);

    assert_eq!(resumed.metrics(), reference.metrics());
    assert_eq!(
        resumed.to_json().unwrap(),
        reference.to_json().unwrap(),
        "resumed fleet must be bit-identical to the uninterrupted one"
    );
}

#[test]
fn snapshot_of_a_snapshot_is_stable() {
    let mut fleet = mixed_fleet(FleetConfig::with_root_seed(5), 40);
    fleet.run_with(25, independent_feedback);
    let once = fleet.to_json().unwrap();
    let twice = FleetEngine::from_json(&once).unwrap().to_json().unwrap();
    assert_eq!(once, twice);
}
