//! Fleet-lane equivalence properties: a mixed fleet — monomorphized lanes
//! interleaved with boxed fallback sessions in one engine — must agree
//! **decision-for-decision** with an all-boxed engine under session churn
//! (fleets added mid-run) and mid-run snapshot/restore, including restores
//! that cross the [`FleetConfig::fleet_lanes`] toggle in both directions.

use smartexp3_core::{NetworkId, Observation, PolicyFactory, PolicyKind};
use smartexp3_engine::{FleetConfig, FleetEngine, StepContext};

fn rates() -> Vec<(NetworkId, f64)> {
    vec![
        (NetworkId(0), 4.0),
        (NetworkId(1), 7.0),
        (NetworkId(2), 22.0),
        (NetworkId(3), 11.0),
    ]
}

/// Interleaves lane-eligible kinds (Smart EXP3, EXP3, the ablations) with
/// boxed-only baselines so the lanes engine ends up with many alternating
/// segments while the boxed engine holds one long fallback lane.
fn add_mixed_wave(fleet: &mut FleetEngine, factory: &mut PolicyFactory, scale: usize) {
    for (kind, count) in [
        (PolicyKind::SmartExp3, 5 * scale),
        (PolicyKind::Exp3, 3 * scale),
        (PolicyKind::Greedy, 2 * scale),
        (PolicyKind::BlockExp3, 3 * scale),
        (PolicyKind::FixedRandom, scale),
        (PolicyKind::Exp3, 2 * scale),
    ] {
        fleet.add_fleet(factory, kind, count).unwrap();
    }
}

/// Deterministic per-session independent feedback; gains depend on the
/// session id and choice so any routing error changes the trajectory.
fn feedback(ctx: &mut StepContext<'_>) -> Observation {
    let gain = if ctx.chosen == NetworkId(2) {
        0.7 + (ctx.session.0 % 7) as f64 / 40.0
    } else {
        0.2 + ctx.chosen.0 as f64 / 30.0
    };
    Observation::bandit(ctx.slot, ctx.chosen, gain * 22.0, gain.min(1.0))
}

/// Steps both engines one fused slot and asserts every session decided
/// identically.
fn step_both(lanes: &mut FleetEngine, boxed: &mut FleetEngine, label: &str) {
    lanes.step_with(feedback);
    boxed.step_with(feedback);
    assert_eq!(
        lanes.last_choices(),
        boxed.last_choices(),
        "lane and boxed engines diverged {label} (slot {})",
        boxed.slot()
    );
}

/// The lane/boxed split is storage, not behaviour: serialized states must
/// match byte-for-byte once the routing flag itself is normalised.
fn normalised_json(fleet: &FleetEngine) -> String {
    fleet
        .to_json()
        .unwrap()
        .replace("\"fleet_lanes\":false", "\"fleet_lanes\":true")
}

#[test]
fn mixed_lane_fleets_match_all_boxed_fleets_under_churn_and_restore() {
    let mut factory = PolicyFactory::new(rates()).unwrap();
    let mut lanes = FleetEngine::new(
        FleetConfig::with_root_seed(97)
            .with_threads(2)
            .with_shard_size(8),
    );
    let mut boxed = FleetEngine::new(
        FleetConfig::with_root_seed(97)
            .with_threads(2)
            .with_shard_size(8)
            .with_fleet_lanes(false),
    );
    add_mixed_wave(&mut lanes, &mut factory, 4);
    add_mixed_wave(&mut boxed, &mut factory, 4);
    assert_eq!(lanes.len(), boxed.len());

    for _ in 0..12 {
        step_both(&mut lanes, &mut boxed, "before churn");
    }

    // Churn: grow both fleets mid-run — appends must merge/extend lanes
    // without disturbing the established sessions' streams.
    add_mixed_wave(&mut lanes, &mut factory, 2);
    add_mixed_wave(&mut boxed, &mut factory, 2);
    // Direct single-session adds land on the boxed fallback lane in both.
    for _ in 0..3 {
        let policy = factory.build(PolicyKind::Greedy).unwrap();
        lanes.add_session(PolicyKind::Greedy, policy);
        let policy = factory.build(PolicyKind::Greedy).unwrap();
        boxed.add_session(PolicyKind::Greedy, policy);
    }
    assert_eq!(lanes.len(), boxed.len());

    for _ in 0..10 {
        step_both(&mut lanes, &mut boxed, "after churn");
    }

    // Mid-run snapshot/restore, crossing the toggle both ways: the lanes
    // engine restores into a boxed-only engine and vice versa; both resumed
    // copies must keep agreeing decision-for-decision.
    let mut lanes_to_boxed = lanes.snapshot().unwrap();
    lanes_to_boxed.config.fleet_lanes = false;
    let mut lanes = FleetEngine::from_snapshot(lanes_to_boxed).unwrap();
    let mut boxed_to_lanes = boxed.snapshot().unwrap();
    boxed_to_lanes.config.fleet_lanes = true;
    let mut boxed = FleetEngine::from_snapshot(boxed_to_lanes).unwrap();

    for _ in 0..10 {
        step_both(&mut lanes, &mut boxed, "after crossed restore");
    }

    // More churn after the restore, then a plain JSON round-trip of each.
    add_mixed_wave(&mut lanes, &mut factory, 1);
    add_mixed_wave(&mut boxed, &mut factory, 1);
    let mut lanes = FleetEngine::from_json(&lanes.to_json().unwrap()).unwrap();
    let mut boxed = FleetEngine::from_json(&boxed.to_json().unwrap()).unwrap();
    for _ in 0..8 {
        step_both(&mut lanes, &mut boxed, "after round-trip");
    }

    assert_eq!(lanes.metrics(), boxed.metrics());
    assert_eq!(
        normalised_json(&lanes),
        normalised_json(&boxed),
        "serialized state must be independent of lane routing"
    );
}

#[test]
fn two_phase_stepping_agrees_across_the_lane_toggle() {
    // The split choose/observe path (congestion-style coupled feedback) over
    // a mixed fleet: the observation handed to session `i` depends on every
    // session's choice, so segment boundaries in the choices mirror would
    // surface immediately.
    let bandwidth = rates();
    let run = |lanes_enabled: bool| -> (Vec<Option<NetworkId>>, String) {
        let mut factory = PolicyFactory::new(rates()).unwrap();
        let mut fleet = FleetEngine::new(
            FleetConfig::with_root_seed(31)
                .with_threads(8)
                .with_shard_size(5)
                .with_fleet_lanes(lanes_enabled),
        );
        add_mixed_wave(&mut fleet, &mut factory, 3);
        for _ in 0..25 {
            let slot = fleet.slot();
            let choices = fleet.choose_all().to_vec();
            let mut counts = std::collections::BTreeMap::new();
            for &chosen in &choices {
                *counts.entry(chosen).or_insert(0usize) += 1;
            }
            let observations: Vec<Observation> = choices
                .iter()
                .map(|&chosen| {
                    let capacity = bandwidth
                        .iter()
                        .find(|(n, _)| *n == chosen)
                        .map(|(_, mbps)| *mbps)
                        .unwrap_or(0.0);
                    let share = capacity / counts[&chosen] as f64;
                    Observation::bandit(slot, chosen, share, (share / 22.0).min(1.0))
                })
                .collect();
            fleet.observe_all(&observations);
        }
        (fleet.last_choices().to_vec(), normalised_json(&fleet))
    };
    let (lane_choices, lane_json) = run(true);
    let (boxed_choices, boxed_json) = run(false);
    assert_eq!(lane_choices, boxed_choices);
    assert_eq!(lane_json, boxed_json);
}
