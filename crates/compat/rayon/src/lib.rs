//! Offline, API-compatible subset of `rayon`.
//!
//! Provides the data-parallel surface the fleet engine uses — chunked
//! parallel iteration over mutable slices plus a [`ThreadPool`] whose
//! `install` scopes the worker count — implemented on `std::thread::scope`.
//! Workers pull chunks off a shared atomic cursor, so load balancing is
//! dynamic while the *assignment of work to chunks* stays fully deterministic
//! (each chunk is processed exactly once, independently of which worker runs
//! it or in which order).

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    //! Traits imported by `use rayon::prelude::*`.
    pub use crate::{
        IndexedParallelIterator, IntoParallelIterator, ParallelIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

thread_local! {
    static SCOPED_THREADS: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// Number of worker threads a parallel operation started here will use.
///
/// Inside [`ThreadPool::install`] this is the pool's configured size;
/// elsewhere it is the machine's available parallelism.
#[must_use]
pub fn current_num_threads() -> usize {
    SCOPED_THREADS
        .with(std::cell::Cell::get)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Error returned by [`ThreadPoolBuilder::build`] (never produced by this
/// implementation; present for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads (0 = available parallelism).
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    ///
    /// Never fails in this implementation.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = match self.num_threads {
            Some(0) | None => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            Some(n) => n,
        };
        Ok(ThreadPool { threads })
    }
}

/// A scoped worker-count context. Unlike upstream rayon this pool owns no
/// long-lived threads: workers are spawned per parallel call, which keeps the
/// implementation dependency-free while preserving the API and the scaling
/// behaviour for coarse-grained workloads like fleet stepping.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Number of worker threads parallel calls inside `install` will use.
    #[must_use]
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `op` with this pool's worker count in effect for every parallel
    /// operation it performs.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        let previous = SCOPED_THREADS.with(|cell| cell.replace(Some(self.threads)));
        let result = op();
        SCOPED_THREADS.with(|cell| cell.set(previous));
        result
    }
}

/// Runs every work item from `items` on a scoped worker crew, pulling items
/// off an atomic cursor. The item order a worker observes is arbitrary, but
/// every item runs exactly once.
fn drive<T: Send, F: Fn(usize, T) + Sync>(items: Vec<T>, f: F) {
    let total = items.len();
    let workers = current_num_threads().min(total).max(1);
    if workers <= 1 {
        for (index, item) in items.into_iter().enumerate() {
            f(index, item);
        }
        return;
    }
    let cells: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let cells = &cells;
    let cursor = &cursor;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(move || loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= total {
                    return;
                }
                let item = cells[index]
                    .lock()
                    .expect("chunk cell poisoned")
                    .take()
                    .expect("chunk taken twice");
                f(index, item);
            });
        }
    });
}

/// Minimal parallel-iterator interface: consumption adapters only.
pub trait ParallelIterator: Sized {
    /// The items produced by this iterator.
    type Item: Send;

    /// Consumes the iterator, applying `f` to every item in parallel.
    fn for_each<F: Fn(Self::Item) + Sync + Send>(self, f: F);
}

/// Parallel iterators with known length and stable indices.
pub trait IndexedParallelIterator: ParallelIterator {
    /// Pairs every item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { inner: self }
    }
}

/// `par_chunks_mut` over a mutable slice.
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParallelIterator for ParChunksMut<'a, T> {
    type Item = &'a mut [T];

    fn for_each<F: Fn(Self::Item) + Sync + Send>(self, f: F) {
        drive(self.chunks, |_, chunk| f(chunk));
    }
}

impl<T: Send> IndexedParallelIterator for ParChunksMut<'_, T> {}

/// `par_chunks` over a shared slice.
pub struct ParChunks<'a, T> {
    chunks: Vec<&'a [T]>,
}

impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];

    fn for_each<F: Fn(Self::Item) + Sync + Send>(self, f: F) {
        drive(self.chunks, |_, chunk| f(chunk));
    }
}

impl<T: Sync> IndexedParallelIterator for ParChunks<'_, T> {}

/// An indexed parallel iterator produced by
/// [`IndexedParallelIterator::enumerate`].
pub struct Enumerate<I> {
    inner: I,
}

impl<'a, T: Send> ParallelIterator for Enumerate<ParChunksMut<'a, T>> {
    type Item = (usize, &'a mut [T]);

    fn for_each<F: Fn(Self::Item) + Sync + Send>(self, f: F) {
        drive(self.inner.chunks, |index, chunk| f((index, chunk)));
    }
}

impl<'a, T: Sync> ParallelIterator for Enumerate<ParChunks<'a, T>> {
    type Item = (usize, &'a [T]);

    fn for_each<F: Fn(Self::Item) + Sync + Send>(self, f: F) {
        drive(self.inner.chunks, |index, chunk| f((index, chunk)));
    }
}

/// Conversion into a parallel iterator (the subset the workspace uses:
/// owned `Vec`s of work items, e.g. per-shard `(sessions, scratch)` pairs).
pub trait IntoParallelIterator {
    /// The items produced by the resulting iterator.
    type Item: Send;
    /// The resulting parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Parallel iterator over an owned `Vec`.
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IntoParIter<T> {
    type Item = T;

    fn for_each<F: Fn(Self::Item) + Sync + Send>(self, f: F) {
        drive(self.items, |_, item| f(item));
    }
}

impl<T: Send> IndexedParallelIterator for IntoParIter<T> {}

impl<T: Send> ParallelIterator for Enumerate<IntoParIter<T>> {
    type Item = (usize, T);

    fn for_each<F: Fn(Self::Item) + Sync + Send>(self, f: F) {
        drive(self.inner.items, |index, item| f((index, item)));
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IntoParIter<T>;

    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

/// Extension adding `par_chunks` to shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Splits the slice into chunks of at most `chunk_size` elements that can
    /// be processed in parallel.
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParChunks {
            chunks: self.chunks(chunk_size).collect(),
        }
    }
}

/// Extension adding `par_chunks_mut` to mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Splits the slice into mutable chunks of at most `chunk_size` elements
    /// that can be processed in parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParChunksMut {
            chunks: self.chunks_mut(chunk_size).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_chunks_mut_touches_every_element_once() {
        let mut data = vec![0u64; 1000];
        data.par_chunks_mut(64).for_each(|chunk| {
            for x in chunk {
                *x += 1;
            }
        });
        assert!(data.iter().all(|&x| x == 1));
    }

    #[test]
    fn enumerate_reports_stable_chunk_indices() {
        let mut data = vec![0usize; 300];
        data.par_chunks_mut(100)
            .enumerate()
            .for_each(|(index, chunk)| {
                for x in chunk {
                    *x = index;
                }
            });
        assert_eq!(data[0], 0);
        assert_eq!(data[150], 1);
        assert_eq!(data[299], 2);
    }

    #[test]
    fn install_scopes_the_worker_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        let nested = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let inner = pool.install(|| nested.install(current_num_threads));
        assert_eq!(inner, 1);
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn into_par_iter_consumes_every_item_once() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let total = AtomicU64::new(0);
        let items: Vec<u64> = (1..=100).collect();
        items.into_par_iter().for_each(|x| {
            total.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn results_are_identical_across_worker_counts() {
        let run = |threads: usize| {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| {
                let mut data: Vec<u64> = (0..997).collect();
                data.par_chunks_mut(10)
                    .enumerate()
                    .for_each(|(index, chunk)| {
                        for x in chunk {
                            *x = x.wrapping_mul(31).wrapping_add(index as u64);
                        }
                    });
                data
            })
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(8));
    }
}
