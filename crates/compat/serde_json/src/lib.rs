//! Offline JSON front-end for the vendored `serde` subset.
//!
//! Renders a [`serde::Value`] tree to JSON text and parses it back. Floats are
//! printed in Rust's shortest round-trip form (`{:?}`), so every finite `f64`
//! survives a serialize → parse cycle **bit-identically** — the property the
//! fleet-engine snapshot format depends on. Non-finite floats are written as
//! the non-standard tokens `NaN` / `inf` / `-inf` and accepted back.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Error produced when JSON text is malformed or does not match the target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
    offset: Option<usize>,
}

impl Error {
    fn at(message: impl fmt::Display, offset: usize) -> Self {
        Error {
            message: message.to_string(),
            offset: Some(offset),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(offset) => write!(f, "json error at byte {offset}: {}", self.message),
            None => write!(f, "json error: {}", self.message),
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error {
            message: e.to_string(),
            offset: None,
        }
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Infallible for the supported data model; returns `Result` for API
/// compatibility with upstream `serde_json`.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes `value` to human-readable, two-space-indented JSON.
///
/// # Errors
///
/// Infallible for the supported data model; returns `Result` for API
/// compatibility with upstream `serde_json`.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::from_value(&value).map_err(Error::from)
}

/// Rebuilds a `T` from an already-parsed [`Value`] tree.
///
/// # Errors
///
/// Returns an error on a shape mismatch with `T`.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(out: &mut String, value: &Value, indent: usize) {
    match value {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(out, key);
                out.push_str(": ");
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_nan() {
        out.push_str("NaN");
    } else if x.is_infinite() {
        out.push_str(if x > 0.0 { "inf" } else { "-inf" });
    } else {
        // `{:?}` is Rust's shortest representation that parses back to the
        // same bits; it always contains a `.`, an `e`, or both.
        let formatted = format!("{x:?}");
        out.push_str(&formatted);
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::at("trailing characters", parser.pos));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::at(format!("expected `{}`", byte as char), self.pos))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            None => Err(Error::at("unexpected end of input", self.pos)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'N') if self.eat_keyword("NaN") => Ok(Value::F64(f64::NAN)),
            Some(b'i') if self.eat_keyword("inf") => Ok(Value::F64(f64::INFINITY)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::at(format!("unexpected `{}`", b as char), self.pos)),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::at("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::at("expected `,` or `}`", self.pos)),
            }
        }
    }

    /// Reads the four hex digits of a `\u` escape starting at `start`.
    fn hex_escape(&self, start: usize) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(start..start + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| Error::at("truncated \\u escape", start))?;
        u32::from_str_radix(hex, 16).map_err(|_| Error::at("invalid \\u escape", start))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::at("invalid utf-8 in string", start))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex_escape(self.pos + 1)?;
                            self.pos += 4;
                            let code = match code {
                                // UTF-16 high surrogate: a low-surrogate
                                // escape must follow (how upstream
                                // serde_json writes non-BMP characters).
                                0xD800..=0xDBFF => {
                                    if self.bytes.get(self.pos + 1) != Some(&b'\\')
                                        || self.bytes.get(self.pos + 2) != Some(&b'u')
                                    {
                                        return Err(Error::at(
                                            "high surrogate without low surrogate",
                                            self.pos,
                                        ));
                                    }
                                    let low = self.hex_escape(self.pos + 3)?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(Error::at("invalid low surrogate", self.pos));
                                    }
                                    self.pos += 6;
                                    0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                                }
                                0xDC00..=0xDFFF => {
                                    return Err(Error::at("lone low surrogate", self.pos));
                                }
                                code => code,
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::at("invalid codepoint", self.pos))?,
                            );
                        }
                        _ => return Err(Error::at("invalid escape", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::at("unterminated string", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
            if self.eat_keyword("inf") {
                return Ok(Value::F64(f64::NEG_INFINITY));
            }
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::at("invalid number", start))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::at(format!("invalid float `{text}`"), start))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .ok()
                .and_then(|_| text.parse::<i64>().ok())
                .map(Value::I64)
                .ok_or_else(|| Error::at(format!("invalid integer `{text}`"), start))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::at(format!("invalid integer `{text}`"), start))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip_through_text() {
        let cases = vec![
            Value::Null,
            Value::Bool(true),
            Value::U64(18_446_744_073_709_551_615),
            Value::I64(-42),
            Value::F64(0.1 + 0.2),
            Value::F64(1.0),
            Value::F64(1e-300),
            Value::Str("hi \"there\"\n\\ \u{1}".to_string()),
        ];
        for case in cases {
            let text = to_string(&Probe(case.clone())).unwrap();
            let back = parse_value(&text).unwrap();
            match (&case, &back) {
                (Value::F64(a), Value::F64(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                _ => assert_eq!(case, back),
            }
        }
    }

    struct Probe(Value);
    impl Serialize for Probe {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let value = Value::Map(vec![
            ("list".into(), Value::Seq(vec![Value::U64(1), Value::Null])),
            ("empty".into(), Value::Seq(vec![])),
            (
                "nested".into(),
                Value::Map(vec![("x".into(), Value::F64(2.5))]),
            ),
        ]);
        let text = to_string(&Probe(value.clone())).unwrap();
        assert_eq!(parse_value(&text).unwrap(), value);
        let pretty = to_string_pretty(&Probe(value.clone())).unwrap();
        assert_eq!(parse_value(&pretty).unwrap(), value);
    }

    #[test]
    fn non_finite_floats_survive() {
        for x in [f64::INFINITY, f64::NEG_INFINITY] {
            let text = to_string(&Probe(Value::F64(x))).unwrap();
            assert_eq!(parse_value(&text).unwrap(), Value::F64(x));
        }
        let text = to_string(&Probe(Value::F64(f64::NAN))).unwrap();
        match parse_value(&text).unwrap() {
            Value::F64(x) => assert!(x.is_nan()),
            other => panic!("expected NaN, got {other:?}"),
        }
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(
            from_str::<String>("\"\\ud83d\"").is_err(),
            "lone high surrogate"
        );
        assert!(
            from_str::<String>("\"\\ude00\"").is_err(),
            "lone low surrogate"
        );
    }

    #[test]
    fn surrogate_pair_escapes_parse_to_non_bmp_chars() {
        // How upstream serde_json escapes non-BMP characters.
        let parsed: String = from_str("\"\\ud83d\\ude00 ok\"").unwrap();
        assert_eq!(parsed, "😀 ok");
        // Our writer emits raw UTF-8; that round-trips too.
        let text = to_string(&"😀".to_string()).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, "😀");
    }

    #[test]
    fn typed_round_trip() {
        let xs: Vec<(u32, f64)> = vec![(1, 0.125), (2, 1.0 / 3.0)];
        let text = to_string(&xs).unwrap();
        let back: Vec<(u32, f64)> = from_str(&text).unwrap();
        assert_eq!(xs, back);
    }
}
