//! Offline, API-compatible subset of `serde`.
//!
//! The build environment has no crates.io access, so this crate provides the
//! slice of serde the workspace uses: the [`Serialize`] / [`Deserialize`]
//! traits and their derive macros (re-exported from the sibling
//! `serde_derive` proc-macro crate).
//!
//! Instead of upstream's visitor-based data model, serialization goes through
//! an explicit [`Value`] tree — structs become maps, tuples and sequences
//! become sequences, unit enum variants become strings and data-carrying
//! variants become single-entry maps (the externally-tagged convention). The
//! companion `serde_json` crate renders a [`Value`] to JSON text and parses it
//! back, with `f64`s printed in shortest round-trip form so snapshots restore
//! **bit-identically**.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing tree of serialized data (the crate's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absence of a value (`Option::None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer (positive ones normalise to [`Value::U64`]).
    I64(i64),
    /// A double-precision float.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (struct fields, enum tags).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Returns the map entries when this value is a map.
    #[must_use]
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Returns the sequence elements when this value is a sequence.
    #[must_use]
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the string when this value is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric coercion to `f64` (exact for every stored numeric variant that
    /// originated from an `f64`).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::U64(x) => Some(*x as f64),
            Value::I64(x) => Some(*x as f64),
            _ => None,
        }
    }

    /// Numeric coercion to `u64` (rejects negatives and non-integers).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(x) => Some(*x),
            Value::I64(x) => u64::try_from(*x).ok(),
            _ => None,
        }
    }

    /// Numeric coercion to `i64`.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(x) => Some(*x),
            Value::U64(x) => i64::try_from(*x).ok(),
            _ => None,
        }
    }

    /// One-word description of the variant, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Error produced when a [`Value`] tree does not match the target type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    #[must_use]
    pub fn custom(message: impl fmt::Display) -> Self {
        Error {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the serde data model.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds a value from the serde data model.
    ///
    /// # Errors
    ///
    /// Returns an error when the tree's shape does not match `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Looks up field `key` in a struct map and deserializes it (used by the
/// derive macro's generated code).
///
/// # Errors
///
/// Returns an error when the field is missing or has the wrong shape.
pub fn from_field<T: Deserialize>(
    entries: &[(String, Value)],
    key: &str,
    context: &str,
) -> Result<T, Error> {
    let value = entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{key}` in `{context}`")))?;
    T::from_value(value)
        .map_err(|e| Error::custom(format!("field `{key}` of `{context}`: {}", e.message)))
}

/// Fetches element `index` of a sequence and deserializes it (used by the
/// derive macro's generated code for tuple structs and tuple variants).
///
/// # Errors
///
/// Returns an error when the element is missing or has the wrong shape.
pub fn from_element<T: Deserialize>(
    items: &[Value],
    index: usize,
    context: &str,
) -> Result<T, Error> {
    let value = items
        .get(index)
        .ok_or_else(|| Error::custom(format!("missing element {index} in `{context}`")))?;
    T::from_value(value)
        .map_err(|e| Error::custom(format!("element {index} of `{context}`: {}", e.message)))
}

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value.as_u64().ok_or_else(|| {
                    Error::custom(format!(
                        "expected unsigned integer, found {}",
                        value.kind()
                    ))
                })?;
                <$ty>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let wide = i64::from(*self);
                if wide >= 0 {
                    Value::U64(wide as u64)
                } else {
                    Value::I64(wide)
                }
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value.as_i64().ok_or_else(|| {
                    Error::custom(format!("expected integer, found {}", value.kind()))
                })?;
                <$ty>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let raw = value
            .as_u64()
            .ok_or_else(|| Error::custom(format!("expected integer, found {}", value.kind())))?;
        usize::try_from(raw).map_err(|_| Error::custom(format!("{raw} out of range for usize")))
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let raw = i64::from_value(value)?;
        isize::try_from(raw).map_err(|_| Error::custom(format!("{raw} out of range for isize")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, found {}", value.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(value)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom(format!("expected string, found {}", value.kind())))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()
            .ok_or_else(|| Error::custom(format!("expected sequence, found {}", value.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        let found = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected {N} elements, found {found}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_seq().ok_or_else(|| {
                    Error::custom(format!("expected tuple sequence, found {}", value.kind()))
                })?;
                Ok(($(from_element::<$name>(items, $idx, "tuple")?,)+))
            }
        }
    )+};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value.as_seq().ok_or_else(|| {
            Error::custom(format!("expected map entries, found {}", value.kind()))
        })?;
        items
            .iter()
            .map(|entry| {
                let pair = entry.as_seq().ok_or_else(|| {
                    Error::custom(format!(
                        "expected [key, value] pair, found {}",
                        entry.kind()
                    ))
                })?;
                Ok((
                    from_element::<K>(pair, 0, "map key")?,
                    from_element::<V>(pair, 1, "map value")?,
                ))
            })
            .collect()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            Value::U64(self.as_secs()),
            Value::U64(u64::from(self.subsec_nanos())),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_seq()
            .ok_or_else(|| Error::custom("expected [secs, nanos] for Duration"))?;
        let secs = from_element::<u64>(items, 0, "Duration")?;
        let nanos = from_element::<u32>(items, 1, "Duration")?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let x = 0.1f64 + 0.2;
        assert_eq!(
            f64::from_value(&x.to_value()).unwrap().to_bits(),
            x.to_bits()
        );
    }

    #[test]
    fn options_use_null() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        let some = Some(3u32).to_value();
        assert_eq!(Option::<u32>::from_value(&some).unwrap(), Some(3));
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, 0.5f64), (2, 0.25)];
        let back = Vec::<(u32, f64)>::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);

        let mut map = BTreeMap::new();
        map.insert(3u32, "three".to_string());
        let back = BTreeMap::<u32, String>::from_value(&map.to_value()).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn shape_mismatches_error() {
        assert!(u32::from_value(&Value::Str("x".into())).is_err());
        assert!(bool::from_value(&Value::U64(1)).is_err());
        assert!(Vec::<u32>::from_value(&Value::Bool(false)).is_err());
        assert!(u8::from_value(&Value::U64(300)).is_err());
    }
}
