//! Offline, API-compatible subset of `criterion`.
//!
//! Implements the measurement surface the workspace's benches use —
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `Throughput`, `black_box` and the `criterion_group!` / `criterion_main!`
//! macros — with a simple but honest timing loop: a short warm-up, then
//! batched timed iterations until the measurement budget is spent, reporting
//! the mean time per iteration (and throughput when configured).
//!
//! It intentionally skips upstream's statistical machinery (outlier
//! detection, HTML reports); benches print one line per benchmark and are
//! runnable offline with `cargo bench`.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput metadata attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifier for a parameterised benchmark (`function_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    #[must_use]
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter value alone.
    #[must_use]
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Types usable as a benchmark identifier (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Renders the identifier as the display string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The benchmark driver handed to every bench target.
#[derive(Debug)]
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Creates a driver with default settings.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the per-benchmark measurement budget.
    #[must_use]
    pub fn measurement_time(mut self, duration: Duration) -> Self {
        self.measurement_time = duration;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            measurement_time: self.measurement_time,
            throughput: None,
            _criterion: std::marker::PhantomData,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into_id(), self.measurement_time, None, |b| f(b));
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this implementation sizes sampling by
    /// time budget rather than sample count.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Overrides the measurement budget for benchmarks in this group.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement_time = duration;
        self
    }

    /// Declares the work performed per iteration, enabling throughput output.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks a closure under the given id.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into_id());
        run_benchmark(&id, self.measurement_time, self.throughput, |b| f(b));
        self
    }

    /// Benchmarks a closure that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into_id());
        run_benchmark(&id, self.measurement_time, self.throughput, |b| {
            f(b, input);
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Drives the timing loop for one benchmark target.
#[derive(Debug, Default)]
pub struct Bencher {
    total: Duration,
    iterations: u64,
    budget: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly, timing it, until the budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call (fills caches, triggers lazy init).
        black_box(routine());

        let start = Instant::now();
        let mut batch = 1u64;
        while start.elapsed() < self.budget {
            let batch_start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = batch_start.elapsed();
            self.total += elapsed;
            self.iterations += batch;
            // Grow batches until one batch costs ≥ ~1ms, amortising timer
            // overhead for nanosecond-scale routines.
            if elapsed < Duration::from_millis(1) && batch < u64::MAX / 2 {
                batch *= 2;
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    budget: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        budget,
        ..Bencher::default()
    };
    f(&mut bencher);
    if bencher.iterations == 0 {
        println!("{id:<56} (no iterations run)");
        return;
    }
    let mean = bencher.total.as_secs_f64() / bencher.iterations as f64;
    let mut line = format!("{id:<56} time: {}", format_seconds(mean));
    if let Some(t) = throughput {
        let (amount, unit) = match t {
            Throughput::Elements(n) => (n as f64, "elem/s"),
            Throughput::Bytes(n) => (n as f64, "B/s"),
        };
        if mean > 0.0 {
            line.push_str(&format!("  thrpt: {}", format_rate(amount / mean, unit)));
        }
    }
    println!("{line}");
}

fn format_seconds(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

fn format_rate(rate: f64, unit: &str) -> String {
    if rate >= 1e9 {
        format!("{:.3} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.3} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.3} K{unit}", rate / 1e3)
    } else {
        format!("{rate:.1} {unit}")
    }
}

/// Bundles bench functions into a named group runner, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `fn main()` running the given groups, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_reports() {
        let mut c = Criterion::new().measurement_time(Duration::from_millis(10));
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(10)
            .measurement_time(Duration::from_millis(10));
        group.throughput(Throughput::Elements(100));
        let mut counter = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                counter = counter.wrapping_add(1);
                counter
            });
        });
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| n * 2);
        });
        group.finish();
        assert!(counter > 0);
    }

    #[test]
    fn formatting_covers_magnitudes() {
        assert!(format_seconds(2.0).ends_with(" s"));
        assert!(format_seconds(2e-3).ends_with(" ms"));
        assert!(format_seconds(2e-6).ends_with(" µs"));
        assert!(format_seconds(2e-9).ends_with(" ns"));
        assert!(format_rate(5e9, "elem/s").starts_with("5.000 G"));
        assert!(format_rate(5e3, "elem/s").starts_with("5.000 K"));
        assert!(format_rate(5.0, "elem/s").starts_with("5.0 "));
    }
}
