//! Derive macros for the offline `serde` subset.
//!
//! Implemented directly on `proc_macro` token trees (no `syn`/`quote`, which
//! are unavailable offline). Supports the shapes this workspace actually
//! derives on: non-generic named-field structs, tuple structs, unit structs,
//! and enums whose variants are unit, tuple or struct-like. Newtype (1-field
//! tuple) structs and variants serialize transparently, matching upstream
//! serde's externally-tagged representation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives the offline `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives the offline `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item)
            .parse()
            .expect("derive macro generated invalid Rust"),
        Err(message) => format!("::std::compile_error!({message:?});")
            .parse()
            .expect("compile_error! is valid Rust"),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attributes_and_visibility(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos)?;
    let name = expect_ident(&tokens, &mut pos)?;
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde derive (offline subset) does not support generic type `{name}`"
        ));
    }

    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unexpected token after `struct {name}`: {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("unexpected token after `enum {name}`: {other:?}")),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!(
            "serde derive supports structs and enums, found `{other}`"
        )),
    }
}

fn skip_attributes_and_visibility(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 2; // `#` and the following `[...]` group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *pos += 1; // `pub(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> Result<String, String> {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(i)) => {
            *pos += 1;
            Ok(i.to_string().trim_start_matches("r#").to_string())
        }
        other => Err(format!("expected identifier, found {other:?}")),
    }
}

/// Skips one field type: everything up to (but not including) the next comma
/// that sits outside `<...>` and outside any delimiter group.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(token) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *pos += 1;
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos)?;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        skip_type(&tokens, &mut pos);
        pos += 1; // the separating comma, if any
        fields.push(name);
    }
    Ok(fields)
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut pos = 0;
    let mut count = 0;
    while pos < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut pos);
        pos += 1; // the separating comma, if any
        count += 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos)?;
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Fields::Named(parse_named_fields(g.stream())?)
            }
            _ => Fields::Unit,
        };
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => pos += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!(
                    "serde derive (offline subset) does not support discriminants (variant `{name}`)"
                ));
            }
            None => {}
            other => {
                return Err(format!(
                    "unexpected token after variant `{name}`: {other:?}"
                ))
            }
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => (name, serialize_struct_body(fields)),
        Item::Enum { name, variants } => (name, serialize_enum_body(name, variants)),
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, clippy::pedantic)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn serialize_struct_body(fields: &Fields) -> String {
    match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Named(names) => {
            let entries: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
    }
}

fn serialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let tag = &v.name;
            match &v.fields {
                Fields::Unit => format!(
                    "{name}::{tag} => \
                     ::serde::Value::Str(::std::string::String::from({tag:?}))"
                ),
                Fields::Tuple(arity) => {
                    let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                    let payload = if *arity == 1 {
                        "::serde::Serialize::to_value(__f0)".to_string()
                    } else {
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                    };
                    format!(
                        "{name}::{tag}({}) => ::serde::Value::Map(::std::vec![\
                         (::std::string::String::from({tag:?}), {payload})])",
                        binds.join(", ")
                    )
                }
                Fields::Named(field_names) => {
                    let entries: Vec<String> = field_names
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from({f:?}), \
                                 ::serde::Serialize::to_value({f}))"
                            )
                        })
                        .collect();
                    format!(
                        "{name}::{tag} {{ {} }} => ::serde::Value::Map(::std::vec![\
                         (::std::string::String::from({tag:?}), \
                         ::serde::Value::Map(::std::vec![{}]))])",
                        field_names.join(", "),
                        entries.join(", ")
                    )
                }
            }
        })
        .collect();
    format!("match self {{\n{}\n}}", arms.join(",\n"))
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => (name, deserialize_struct_body(name, fields)),
        Item::Enum { name, variants } => (name, deserialize_enum_body(name, variants)),
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, clippy::pedantic)]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}

fn deserialize_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => format!("::std::result::Result::Ok({name})"),
        Fields::Named(names) => {
            let inits: Vec<String> = names
                .iter()
                .map(|f| format!("{f}: ::serde::from_field(__entries, {f:?}, {name:?})?"))
                .collect();
            format!(
                "let __entries = __value.as_map().ok_or_else(|| \
                 ::serde::Error::custom(::std::format!(\
                 \"expected map for struct `{name}`, found {{}}\", __value.kind())))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Fields::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Fields::Tuple(arity) => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::from_element(__items, {i}, {name:?})?"))
                .collect();
            format!(
                "let __items = __value.as_seq().ok_or_else(|| \
                 ::serde::Error::custom(::std::format!(\
                 \"expected sequence for `{name}`, found {{}}\", __value.kind())))?;\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
    }
}

fn deserialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, Fields::Unit))
        .map(|v| {
            let tag = &v.name;
            format!("{tag:?} => ::std::result::Result::Ok({name}::{tag}),")
        })
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter(|v| !matches!(v.fields, Fields::Unit))
        .map(|v| {
            let tag = &v.name;
            let context = format!("{name}::{tag}");
            let build = match &v.fields {
                Fields::Unit => unreachable!("filtered above"),
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}::{tag}(\
                     ::serde::Deserialize::from_value(__payload)?))"
                ),
                Fields::Tuple(arity) => {
                    let inits: Vec<String> = (0..*arity)
                        .map(|i| format!("::serde::from_element(__items, {i}, {context:?})?"))
                        .collect();
                    format!(
                        "{{ let __items = __payload.as_seq().ok_or_else(|| \
                         ::serde::Error::custom(\"expected sequence for `{context}`\"))?;\n\
                         ::std::result::Result::Ok({name}::{tag}({})) }}",
                        inits.join(", ")
                    )
                }
                Fields::Named(field_names) => {
                    let inits: Vec<String> = field_names
                        .iter()
                        .map(|f| format!("{f}: ::serde::from_field(__fields, {f:?}, {context:?})?"))
                        .collect();
                    format!(
                        "{{ let __fields = __payload.as_map().ok_or_else(|| \
                         ::serde::Error::custom(\"expected map for `{context}`\"))?;\n\
                         ::std::result::Result::Ok({name}::{tag} {{ {} }}) }}",
                        inits.join(", ")
                    )
                }
            };
            format!("{tag:?} => {build},")
        })
        .collect();
    format!(
        "match __value {{\n\
             ::serde::Value::Str(__tag) => match __tag.as_str() {{\n\
                 {unit}\n\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown unit variant `{{__other}}` of enum `{name}`\"))),\n\
             }},\n\
             ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __payload) = &__entries[0];\n\
                 let _ = __payload;\n\
                 match __tag.as_str() {{\n\
                     {data}\n\
                     __other => ::std::result::Result::Err(::serde::Error::custom(\
                     ::std::format!(\"unknown variant `{{__other}}` of enum `{name}`\"))),\n\
                 }}\n\
             }},\n\
             __other => ::std::result::Result::Err(::serde::Error::custom(\
             ::std::format!(\"expected enum `{name}`, found {{}}\", __other.kind()))),\n\
         }}",
        unit = unit_arms.join("\n"),
        data = data_arms.join("\n"),
    )
}
