//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate vendors the exact surface the workspace uses: the [`RngCore`] /
//! [`SeedableRng`] / [`Rng`] traits, a deterministic [`rngs::StdRng`]
//! (xoshiro256++ seeded through SplitMix64), the [`rngs::mock::StepRng`] test
//! helper and [`seq::SliceRandom`].
//!
//! Determinism is the only contract that matters here: the same seed always
//! produces the same stream, on every platform and at every optimisation
//! level. The streams do *not* match the upstream `rand` crate's.

#![forbid(unsafe_code)]

/// The core of a random number generator: a source of uniformly distributed
/// raw bits. Object-safe so policies can take `&mut dyn RngCore`.
pub trait RngCore {
    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed material (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it to a full seed with
    /// SplitMix64 (so nearby integer seeds still yield unrelated streams).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

mod sample {
    use super::RngCore;

    /// Types that can be drawn uniformly from an [`RngCore`] (the counterpart
    /// of upstream's `Standard` distribution, folded into one trait).
    pub trait StandardSample: Sized {
        /// Draws one uniformly distributed value.
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl StandardSample for f64 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            // 53 uniform bits in [0, 1), the standard construction.
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl StandardSample for f32 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl StandardSample for u32 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32()
        }
    }

    impl StandardSample for u64 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    impl StandardSample for usize {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() as usize
        }
    }

    impl StandardSample for bool {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32() & 1 == 1
        }
    }
}

pub use sample::StandardSample;

/// Convenience methods layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        self.gen::<f64>() < p
    }

    /// Draws a uniformly distributed index in `[0, bound)` without modulo
    /// bias (rejection sampling on the top of the range).
    ///
    /// # Panics
    ///
    /// Panics when `bound` is 0.
    fn gen_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "gen_index requires a non-empty range");
        let bound = bound as u64;
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let raw = self.next_u64();
            if raw < zone {
                return (raw % bound) as usize;
            }
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Fast, passes BigCrush, and — unlike the upstream `StdRng` — guaranteed
    /// to keep the same stream across releases of this vendored crate, which
    /// the fleet-engine snapshot format relies on.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Returns the raw 256-bit internal state (for snapshots).
        #[must_use]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a previously captured state.
        #[must_use]
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }

    pub mod mock {
        //! Deterministic mock generators for tests.

        use crate::RngCore;

        /// Yields `start`, `start + step`, `start + 2·step`, … as `u64`s.
        #[derive(Debug, Clone)]
        pub struct StepRng {
            current: u64,
            step: u64,
        }

        impl StepRng {
            /// Creates a mock generator counting from `start` by `step`.
            #[must_use]
            pub fn new(start: u64, step: u64) -> Self {
                StepRng {
                    current: start,
                    step,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }

            fn next_u64(&mut self) -> u64 {
                let value = self.current;
                self.current = self.current.wrapping_add(self.step);
                value
            }
        }
    }
}

pub mod seq {
    //! Random sequence operations.

    use super::{Rng, RngCore};

    /// Random operations on slices: uniform choice and Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// Element type of the sequence.
        type Item;

        /// Returns a uniformly chosen reference, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the sequence in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_index(self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_index(i + 1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_index_is_unbiased_enough_and_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[rng.gen_index(5)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts skewed: {counts:?}");
        }
    }

    #[test]
    fn state_snapshot_resumes_identically() {
        let mut rng = StdRng::seed_from_u64(42);
        rng.next_u64();
        let mut resumed = StdRng::from_state(rng.state());
        assert_eq!(rng.next_u64(), resumed.next_u64());
    }

    #[test]
    fn step_rng_counts() {
        let mut rng = StepRng::new(10, 2);
        assert_eq!(rng.next_u64(), 10);
        assert_eq!(rng.next_u64(), 12);
    }

    #[test]
    fn shuffle_permutes_and_choose_picks_members() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut items: Vec<u32> = (0..10).collect();
        items.shuffle(&mut rng);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        assert!(items.choose(&mut rng).is_some());
        let empty: Vec<u32> = Vec::new();
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
