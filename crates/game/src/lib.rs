//! # congestion-game
//!
//! The game-theoretic backbone of the Smart EXP3 reproduction: the wireless
//! network selection problem formulated as a repeated resource-selection
//! (congestion) game (§II-B of the paper), together with every evaluation
//! metric the paper's figures are built from:
//!
//! * [`ResourceSelectionGame`] — networks with bandwidths, equal-share
//!   utilities, allocations of devices to networks;
//! * [`nash_allocation`] — the pure Nash equilibrium allocation, plus
//!   ε-equilibrium tests;
//! * [`metrics`] — Definition 2 (*stable state*), Definition 3 (*distance to
//!   Nash equilibrium*) and Definition 4 (*distance from average bit rate
//!   available*);
//! * [`fairness`] — per-device download dispersion (Figure 5) and Jain's
//!   index;
//! * [`summary`] — the mean/median/std/percentile helpers used by the
//!   experiment harness to aggregate hundreds of runs.
//!
//! The crate is dependency-free (besides `serde`) and fully deterministic, so
//! every metric can be unit- and property-tested in isolation from the
//! simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod equilibrium;
pub mod fairness;
pub mod game;
pub mod metrics;
pub mod summary;

pub use equilibrium::{
    allocation_shares, is_epsilon_equilibrium, is_nash_allocation, max_unilateral_improvement,
    nash_allocation,
};
pub use fairness::{jain_index, standard_deviation};
pub use game::{Allocation, NetworkId, ResourceSelectionGame};
pub use metrics::{
    distance_from_average_bit_rate, distance_to_nash, distance_to_nash_given,
    optimal_distance_from_average_bit_rate, stable_from_slot, DeviceState, StableStateDetector,
};
pub use summary::median;
pub use summary::Summary;
