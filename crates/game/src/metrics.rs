//! The paper's evaluation metrics: stable state (Definition 2), distance to
//! Nash equilibrium (Definition 3) and distance from the average bit rate
//! available (Definition 4).

use crate::equilibrium::nash_allocation;
use crate::game::{NetworkId, ResourceSelectionGame};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A device's situation during one slot: the network it selected and the bit
/// rate (Mbps) it observed there.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceState {
    /// Network the device was associated with.
    pub network: NetworkId,
    /// Bit rate it observed, in Mbps.
    pub observed_rate: f64,
}

/// Definition 3 — distance to Nash equilibrium, in percent.
///
/// For each device, the gain it *would* observe at equilibrium is the
/// equal share of its current network under the Nash allocation; the distance
/// is the maximum percentage by which that equilibrium gain exceeds the
/// device's current gain (devices already doing at least as well as at
/// equilibrium contribute 0). At an exact Nash equilibrium the distance is 0.
///
/// Devices whose observed rate is not a positive finite number are skipped.
#[must_use]
pub fn distance_to_nash(game: &ResourceSelectionGame, devices: &[DeviceState]) -> f64 {
    let equilibrium = nash_allocation(game, devices.len());
    distance_to_nash_given(game, &equilibrium, devices)
}

/// Definition 3 evaluated against a caller-supplied equilibrium allocation.
///
/// Useful when the distance of a *subset* of the devices (e.g. the devices in
/// one service area, or the devices running one particular algorithm) must be
/// measured against the equilibrium of the whole game.
#[must_use]
pub fn distance_to_nash_given(
    game: &ResourceSelectionGame,
    equilibrium: &crate::game::Allocation,
    devices: &[DeviceState],
) -> f64 {
    let mut worst: f64 = 0.0;
    for device in devices {
        if !(device.observed_rate.is_finite() && device.observed_rate > 0.0) {
            continue;
        }
        let ne_devices = equilibrium.get(&device.network).copied().unwrap_or(0);
        let ne_share = game.share(device.network, ne_devices);
        let improvement = (ne_share - device.observed_rate) / device.observed_rate * 100.0;
        worst = worst.max(improvement);
    }
    worst
}

/// Definition 4 — distance from the average bit rate available, in percent.
///
/// `g` is the aggregate (estimated) bandwidth divided by the number of
/// devices; the metric is the average over devices of
/// `max(g − g_j, 0) · 100 / g`.
#[must_use]
pub fn distance_from_average_bit_rate(aggregate_rate: f64, observed_rates: &[f64]) -> f64 {
    if observed_rates.is_empty() || aggregate_rate <= 0.0 {
        return 0.0;
    }
    let fair_share = aggregate_rate / observed_rates.len() as f64;
    let total: f64 = observed_rates
        .iter()
        .map(|&g| (fair_share - g).max(0.0) * 100.0 / fair_share)
        .sum();
    total / observed_rates.len() as f64
}

/// The minimum achievable Definition-4 distance: the distance computed from
/// the shares devices would observe at the Nash equilibrium allocation
/// (the "Optimal" line of Figures 13–15).
#[must_use]
pub fn optimal_distance_from_average_bit_rate(game: &ResourceSelectionGame, devices: usize) -> f64 {
    if devices == 0 {
        return 0.0;
    }
    let equilibrium = nash_allocation(game, devices);
    let mut rates = Vec::with_capacity(devices);
    for (&network, &count) in &equilibrium {
        let share = game.share(network, count);
        for _ in 0..count {
            rates.push(share);
        }
    }
    distance_from_average_bit_rate(game.aggregate_rate(), &rates)
}

/// Definition 2 — earliest slot from which a single device's most probable
/// network keeps probability ≥ `threshold` *and stays the same network* until
/// the end of the run.
///
/// `top_choices` holds, per slot, the device's most probable network and that
/// network's probability. Returns `None` if the device never settles.
#[must_use]
pub fn stable_from_slot(top_choices: &[(NetworkId, f64)], threshold: f64) -> Option<usize> {
    if top_choices.is_empty() {
        return None;
    }
    let (final_network, _) = *top_choices.last().expect("non-empty");
    let mut stable_since: Option<usize> = None;
    for (slot, &(network, probability)) in top_choices.iter().enumerate() {
        if network == final_network && probability >= threshold {
            if stable_since.is_none() {
                stable_since = Some(slot);
            }
        } else {
            stable_since = None;
        }
    }
    stable_since
}

/// Tracks Definition 2 over a whole run (every device), and reports when and
/// where the run stabilised.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StableStateDetector {
    /// `per_device[d][t]` = (most probable network, its probability) of device
    /// `d` at slot `t`.
    per_device: Vec<Vec<(NetworkId, f64)>>,
    threshold: f64,
}

impl StableStateDetector {
    /// Creates a detector for `devices` devices with the paper's threshold of
    /// 0.75 unless overridden.
    #[must_use]
    pub fn new(devices: usize, threshold: f64) -> Self {
        StableStateDetector {
            per_device: vec![Vec::new(); devices],
            threshold,
        }
    }

    /// Records one slot: `top[d]` is device `d`'s most probable network and
    /// probability at this slot. Extra or missing devices are tolerated
    /// (dynamic settings add and remove devices).
    pub fn record_slot(&mut self, top: &[(NetworkId, f64)]) {
        if top.len() > self.per_device.len() {
            self.per_device.resize(top.len(), Vec::new());
        }
        for (device, &choice) in top.iter().enumerate() {
            self.per_device[device].push(choice);
        }
    }

    /// Number of devices with at least one recorded slot.
    #[must_use]
    pub fn devices(&self) -> usize {
        self.per_device.iter().filter(|d| !d.is_empty()).count()
    }

    /// The slot at which the *run* reached a stable state: the latest of the
    /// per-device stabilisation slots, or `None` if any device never settled.
    #[must_use]
    pub fn run_stable_slot(&self) -> Option<usize> {
        let mut latest = 0;
        for device in self.per_device.iter().filter(|d| !d.is_empty()) {
            match stable_from_slot(device, self.threshold) {
                Some(slot) => latest = latest.max(slot),
                None => return None,
            }
        }
        Some(latest)
    }

    /// The network each device locked onto, if the run is stable.
    #[must_use]
    pub fn stable_choices(&self) -> Option<Vec<NetworkId>> {
        self.run_stable_slot()?;
        Some(
            self.per_device
                .iter()
                .filter(|d| !d.is_empty())
                .map(|d| d.last().expect("non-empty").0)
                .collect(),
        )
    }

    /// `true` when the run stabilised *at a Nash equilibrium* of `game`
    /// (the stable per-device choices form an equilibrium allocation).
    #[must_use]
    pub fn stable_at_nash(&self, game: &ResourceSelectionGame) -> bool {
        match self.stable_choices() {
            Some(choices) => {
                let allocation = game.allocation_from_choices(&choices);
                crate::equilibrium::is_nash_allocation(game, &allocation)
            }
            None => false,
        }
    }
}

/// Convenience: how much bandwidth goes unused, in megabits, if `allocation`
/// (devices per network) persists for `slots` slots of `slot_seconds` each.
#[must_use]
pub fn unutilized_megabits(
    game: &ResourceSelectionGame,
    allocation: &BTreeMap<NetworkId, usize>,
    slots: usize,
    slot_seconds: f64,
) -> f64 {
    game.unutilized_rate(allocation) * slots as f64 * slot_seconds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setting1() -> ResourceSelectionGame {
        ResourceSelectionGame::new(vec![
            (NetworkId(0), 4.0),
            (NetworkId(1), 7.0),
            (NetworkId(2), 22.0),
        ])
    }

    #[test]
    fn paper_example_gives_one_hundred_percent() {
        // §VI-A example: 3 devices, 2 networks; devices observe 1, 1 and 4
        // Mbps; at NE each would observe 2 Mbps → distance 100 %.
        let game = ResourceSelectionGame::new(vec![(NetworkId(0), 2.0), (NetworkId(1), 4.0)]);
        let devices = vec![
            DeviceState {
                network: NetworkId(0),
                observed_rate: 1.0,
            },
            DeviceState {
                network: NetworkId(0),
                observed_rate: 1.0,
            },
            DeviceState {
                network: NetworkId(1),
                observed_rate: 4.0,
            },
        ];
        let distance = distance_to_nash(&game, &devices);
        assert!((distance - 100.0).abs() < 1e-9, "distance = {distance}");
    }

    #[test]
    fn distance_is_zero_at_equilibrium() {
        let game = setting1();
        let equilibrium = nash_allocation(&game, 20);
        let mut devices = Vec::new();
        for (&network, &count) in &equilibrium {
            for _ in 0..count {
                devices.push(DeviceState {
                    network,
                    observed_rate: game.share(network, count),
                });
            }
        }
        assert!(distance_to_nash(&game, &devices) < 1e-9);
    }

    #[test]
    fn distance_ignores_non_positive_rates() {
        let game = setting1();
        let devices = vec![DeviceState {
            network: NetworkId(0),
            observed_rate: 0.0,
        }];
        assert_eq!(distance_to_nash(&game, &devices), 0.0);
        assert_eq!(distance_to_nash(&game, &[]), 0.0);
    }

    #[test]
    fn definition4_average_shortfall() {
        // Aggregate 30 Mbps over 3 devices → fair share 10. Observed 5, 10, 20:
        // shortfalls are 50 %, 0 %, 0 % → average 16.67 %.
        let d = distance_from_average_bit_rate(30.0, &[5.0, 10.0, 20.0]);
        assert!((d - 50.0 / 3.0).abs() < 1e-9);
        assert_eq!(distance_from_average_bit_rate(0.0, &[1.0]), 0.0);
        assert_eq!(distance_from_average_bit_rate(30.0, &[]), 0.0);
    }

    #[test]
    fn optimal_definition4_distance_is_attainable_and_nonnegative() {
        let game = setting1();
        let optimal = optimal_distance_from_average_bit_rate(&game, 14);
        assert!((0.0..100.0).contains(&optimal));
        assert_eq!(optimal_distance_from_average_bit_rate(&game, 0), 0.0);
    }

    #[test]
    fn stable_from_slot_requires_persistence() {
        let n0 = NetworkId(0);
        let n1 = NetworkId(1);
        // Settles on n1 from slot 2 onwards.
        let trace = vec![(n0, 0.9), (n1, 0.5), (n1, 0.8), (n1, 0.9), (n1, 0.95)];
        assert_eq!(stable_from_slot(&trace, 0.75), Some(2));
        // A late dip below the threshold destroys stability before it.
        let trace = vec![(n1, 0.9), (n1, 0.9), (n1, 0.6), (n1, 0.9)];
        assert_eq!(stable_from_slot(&trace, 0.75), Some(3));
        // Never stable.
        let trace = vec![(n1, 0.5), (n0, 0.6)];
        assert_eq!(stable_from_slot(&trace, 0.75), None);
        assert_eq!(stable_from_slot(&[], 0.75), None);
    }

    #[test]
    fn detector_reports_run_level_stability_and_nash() {
        let game = setting1();
        let mut detector = StableStateDetector::new(3, 0.75);
        // Three devices all converge: two to network 2, one to network 1 —
        // not the equilibrium of a 3-device game (which is 0/1/2 → actually
        // let's check: NE of 4/7/22 with 3 devices = all on 22? shares:
        // 22/3 = 7.33 > 7 and > 4, so yes all three on network 2).
        for slot in 0..10 {
            let p = if slot < 4 { 0.5 } else { 0.9 };
            detector.record_slot(&[(NetworkId(2), p), (NetworkId(2), p), (NetworkId(1), p)]);
        }
        assert_eq!(detector.run_stable_slot(), Some(4));
        assert!(!detector.stable_at_nash(&game));

        let mut detector = StableStateDetector::new(3, 0.75);
        for _ in 0..10 {
            detector.record_slot(&[
                (NetworkId(2), 0.9),
                (NetworkId(2), 0.9),
                (NetworkId(2), 0.9),
            ]);
        }
        assert_eq!(detector.run_stable_slot(), Some(0));
        assert!(detector.stable_at_nash(&game));
    }

    #[test]
    fn detector_handles_devices_appearing_mid_run() {
        let mut detector = StableStateDetector::new(1, 0.75);
        detector.record_slot(&[(NetworkId(0), 0.9)]);
        detector.record_slot(&[(NetworkId(0), 0.9), (NetworkId(1), 0.9)]);
        assert_eq!(detector.devices(), 2);
        assert!(detector.run_stable_slot().is_some());
    }

    #[test]
    fn unutilized_megabits_scales_with_time() {
        let game = setting1();
        let allocation = game.allocation_from_choices(&[NetworkId(1), NetworkId(2)]);
        let lost = unutilized_megabits(&game, &allocation, 1200, 15.0);
        assert!((lost - 4.0 * 1200.0 * 15.0).abs() < 1e-9);
    }
}
