//! Fairness metrics over per-device cumulative downloads.
//!
//! The paper evaluates fairness as the standard deviation of the cumulative
//! downloads of the individual devices (Figure 5): the lower the standard
//! deviation, the more evenly the available bandwidth was shared. Jain's
//! fairness index is provided as an additional, scale-free measure.

/// Sample standard deviation of `values` (the paper's fairness measure).
///
/// Returns 0.0 for fewer than two values.
#[must_use]
pub fn standard_deviation(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let variance = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
    variance.sqrt()
}

/// Jain's fairness index `(Σx)² / (n·Σx²)` ∈ (0, 1]; 1 means perfectly fair.
///
/// Degenerate populations are **vacuously fair**: both the empty slice and
/// the all-zero slice return 1.0. The two cases are the same situation —
/// nobody received anything, so nobody was favoured — and the all-zero case
/// is also the limit of `jain_index(&[x; n])` (which is exactly 1 for every
/// `x > 0`) as `x → 0`. The streaming telemetry accumulator
/// (`smartexp3_telemetry::SlotMetrics::jain`) follows the same convention.
#[must_use]
pub fn jain_index(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sum_sq: f64 = values.iter().map(|v| v * v).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    sum * sum / (values.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_downloads_are_perfectly_fair() {
        let values = vec![3.2; 20];
        assert!(standard_deviation(&values).abs() < 1e-12);
        assert!((jain_index(&values) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dispersion_increases_both_metrics_in_the_right_direction() {
        let fair = vec![10.0, 10.0, 10.0, 10.0];
        let unfair = vec![1.0, 1.0, 1.0, 37.0];
        assert!(standard_deviation(&unfair) > standard_deviation(&fair));
        assert!(jain_index(&unfair) < jain_index(&fair));
    }

    #[test]
    fn known_standard_deviation() {
        // Sample std of [2, 4, 4, 4, 5, 5, 7, 9] is 2.138…
        let values = vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((standard_deviation(&values) - 2.13809).abs() < 1e-4);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(standard_deviation(&[]), 0.0);
        assert_eq!(standard_deviation(&[5.0]), 0.0);
        // Both degenerate populations are vacuously fair — one convention for
        // "nobody received anything", whether there are zero or n receivers.
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn partial_starvation_is_not_vacuously_fair() {
        // One of two devices starved: the classic Jain value is 1/2, and the
        // all-zero convention must not leak into mixed populations.
        assert!((jain_index(&[0.0, 1.0]) - 0.5).abs() < 1e-12);
    }
}
