//! Fairness metrics over per-device cumulative downloads.
//!
//! The paper evaluates fairness as the standard deviation of the cumulative
//! downloads of the individual devices (Figure 5): the lower the standard
//! deviation, the more evenly the available bandwidth was shared. Jain's
//! fairness index is provided as an additional, scale-free measure.

/// Sample standard deviation of `values` (the paper's fairness measure).
///
/// Returns 0.0 for fewer than two values.
#[must_use]
pub fn standard_deviation(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let variance = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
    variance.sqrt()
}

/// Jain's fairness index `(Σx)² / (n·Σx²)` ∈ (0, 1]; 1 means perfectly fair.
///
/// Returns 1.0 for an empty slice (vacuously fair) and 0.0 if every value is
/// zero.
#[must_use]
pub fn jain_index(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sum_sq: f64 = values.iter().map(|v| v * v).sum();
    if sum_sq == 0.0 {
        return 0.0;
    }
    sum * sum / (values.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_downloads_are_perfectly_fair() {
        let values = vec![3.2; 20];
        assert!(standard_deviation(&values).abs() < 1e-12);
        assert!((jain_index(&values) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dispersion_increases_both_metrics_in_the_right_direction() {
        let fair = vec![10.0, 10.0, 10.0, 10.0];
        let unfair = vec![1.0, 1.0, 1.0, 37.0];
        assert!(standard_deviation(&unfair) > standard_deviation(&fair));
        assert!(jain_index(&unfair) < jain_index(&fair));
    }

    #[test]
    fn known_standard_deviation() {
        // Sample std of [2, 4, 4, 4, 5, 5, 7, 9] is 2.138…
        let values = vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((standard_deviation(&values) - 2.13809).abs() < 1e-4);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(standard_deviation(&[]), 0.0);
        assert_eq!(standard_deviation(&[5.0]), 0.0);
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 0.0);
    }
}
