//! The wireless network selection game Γ = ⟨N, K, (S_j), (U_i)⟩ of §II-B.
//!
//! Devices (players) select one network (resource) each; a network's
//! bandwidth is shared among the devices that selected it. The *gain* of a
//! device is the bit rate it observes, so the utility of a network is a
//! decreasing function of its congestion level. The default utility is the
//! equal-share rule `U_i(n) = rate_i / n` the paper assumes in simulation.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a network — the same type the policies in `smartexp3-core`
/// use, re-exported so that allocations, metrics and policies all speak about
/// the same identifiers.
pub use smartexp3_core::NetworkId;

/// How many devices are associated with each network.
pub type Allocation = BTreeMap<NetworkId, usize>;

/// A resource-selection game instance: the set of networks and their
/// bandwidths (Mbps), with equal-share utilities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceSelectionGame {
    rates: BTreeMap<NetworkId, f64>,
}

impl ResourceSelectionGame {
    /// Creates a game over networks with the given bandwidths.
    ///
    /// Non-finite or negative rates are clamped to 0 (a zero-rate network is
    /// legal: it simply never attracts devices at equilibrium).
    #[must_use]
    pub fn new<I>(network_rates: I) -> Self
    where
        I: IntoIterator<Item = (NetworkId, f64)>,
    {
        let rates = network_rates
            .into_iter()
            .map(|(id, rate)| (id, if rate.is_finite() { rate.max(0.0) } else { 0.0 }))
            .collect();
        ResourceSelectionGame { rates }
    }

    /// The networks of the game, in ascending identifier order.
    #[must_use]
    pub fn networks(&self) -> Vec<NetworkId> {
        self.rates.keys().copied().collect()
    }

    /// Number of networks `k`.
    #[must_use]
    pub fn network_count(&self) -> usize {
        self.rates.len()
    }

    /// Bandwidth (Mbps) of `network`, or `None` if unknown.
    #[must_use]
    pub fn rate(&self, network: NetworkId) -> Option<f64> {
        self.rates.get(&network).copied()
    }

    /// Aggregate bandwidth over all networks (Mbps).
    #[must_use]
    pub fn aggregate_rate(&self) -> f64 {
        self.rates.values().sum()
    }

    /// Equal-share utility `U_i(n) = rate_i / n`: the bit rate each of `n`
    /// devices observes on `network`. Returns the full rate for `n = 0`
    /// (the rate a first device *would* observe).
    #[must_use]
    pub fn share(&self, network: NetworkId, devices: usize) -> f64 {
        let rate = self.rate(network).unwrap_or(0.0);
        rate / devices.max(1) as f64
    }

    /// Builds an [`Allocation`] (devices per network) from a per-device list
    /// of selections. Networks of the game that nobody selected appear with a
    /// count of 0; selections of unknown networks are counted too.
    #[must_use]
    pub fn allocation_from_choices(&self, choices: &[NetworkId]) -> Allocation {
        let mut allocation: Allocation = self.rates.keys().map(|&n| (n, 0)).collect();
        for &choice in choices {
            *allocation.entry(choice).or_insert(0) += 1;
        }
        allocation
    }

    /// Total number of devices in an allocation.
    #[must_use]
    pub fn devices_in(allocation: &Allocation) -> usize {
        allocation.values().sum()
    }

    /// Bandwidth (Mbps) left completely unused by an allocation: the sum of
    /// the rates of networks with zero devices. This is the quantity behind
    /// the paper's "unutilized resources / tragedy of the commons"
    /// discussion of the Greedy baseline.
    #[must_use]
    pub fn unutilized_rate(&self, allocation: &Allocation) -> f64 {
        self.rates
            .iter()
            .filter(|(id, _)| allocation.get(id).copied().unwrap_or(0) == 0)
            .map(|(_, &rate)| rate)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setting1() -> ResourceSelectionGame {
        ResourceSelectionGame::new(vec![
            (NetworkId(0), 4.0),
            (NetworkId(1), 7.0),
            (NetworkId(2), 22.0),
        ])
    }

    #[test]
    fn shares_follow_equal_split() {
        let game = setting1();
        assert_eq!(game.share(NetworkId(2), 2), 11.0);
        assert_eq!(game.share(NetworkId(2), 0), 22.0);
        assert_eq!(game.share(NetworkId(9), 4), 0.0);
        assert_eq!(game.aggregate_rate(), 33.0);
    }

    #[test]
    fn allocation_from_choices_counts_devices() {
        let game = setting1();
        let choices = vec![NetworkId(2), NetworkId(2), NetworkId(0)];
        let allocation = game.allocation_from_choices(&choices);
        assert_eq!(allocation[&NetworkId(2)], 2);
        assert_eq!(allocation[&NetworkId(0)], 1);
        assert_eq!(allocation[&NetworkId(1)], 0);
        assert_eq!(ResourceSelectionGame::devices_in(&allocation), 3);
    }

    #[test]
    fn unutilized_rate_sums_empty_networks() {
        let game = setting1();
        let allocation = game.allocation_from_choices(&[NetworkId(1), NetworkId(2)]);
        assert_eq!(game.unutilized_rate(&allocation), 4.0);
        let full = game.allocation_from_choices(&[NetworkId(0), NetworkId(1), NetworkId(2)]);
        assert_eq!(game.unutilized_rate(&full), 0.0);
    }

    #[test]
    fn invalid_rates_are_clamped() {
        let game = ResourceSelectionGame::new(vec![
            (NetworkId(0), f64::NAN),
            (NetworkId(1), -3.0),
            (NetworkId(2), 5.0),
        ]);
        assert_eq!(game.rate(NetworkId(0)), Some(0.0));
        assert_eq!(game.rate(NetworkId(1)), Some(0.0));
        assert_eq!(game.aggregate_rate(), 5.0);
    }
}
