//! Nash equilibria of the equal-share resource-selection game.
//!
//! With singleton strategies and equal-share utilities, a pure Nash
//! equilibrium always exists (Rosenthal). The equilibrium *allocation* —
//! how many devices sit on each network — can be computed greedily: insert
//! devices one at a time, each onto the network that maximises its marginal
//! share. The resulting allocation is an equilibrium, and for generic rates
//! it is unique.

use crate::game::{Allocation, NetworkId, ResourceSelectionGame};

/// Computes a pure Nash equilibrium allocation of `devices` devices.
///
/// Devices are inserted one at a time onto the network offering the best
/// marginal share `rate / (load + 1)`, breaking ties towards the lower
/// network identifier (which makes the result deterministic).
#[must_use]
pub fn nash_allocation(game: &ResourceSelectionGame, devices: usize) -> Allocation {
    let mut allocation: Allocation = game.networks().into_iter().map(|n| (n, 0)).collect();
    if allocation.is_empty() {
        return allocation;
    }
    for _ in 0..devices {
        let best = allocation
            .iter()
            .map(|(&n, &load)| (n, game.share(n, load + 1)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(n, _)| n)
            .expect("allocation is non-empty");
        *allocation.get_mut(&best).expect("key exists") += 1;
    }
    allocation
}

/// The bit rate each device on each network observes under `allocation`
/// (equal share). Networks with zero devices report the rate a first device
/// would observe.
#[must_use]
pub fn allocation_shares(
    game: &ResourceSelectionGame,
    allocation: &Allocation,
) -> Vec<(NetworkId, f64)> {
    allocation
        .iter()
        .map(|(&n, &load)| (n, game.share(n, load)))
        .collect()
}

/// The largest relative gain (in percent) any single device could obtain by
/// unilaterally moving to another network, given `allocation`.
///
/// Returns 0.0 for the empty allocation.
#[must_use]
pub fn max_unilateral_improvement(game: &ResourceSelectionGame, allocation: &Allocation) -> f64 {
    let mut worst: f64 = 0.0;
    for (&from, &load) in allocation {
        if load == 0 {
            continue;
        }
        let current = game.share(from, load);
        for (&to, &other_load) in allocation {
            if to == from {
                continue;
            }
            let moved = game.share(to, other_load + 1);
            if current > 0.0 {
                worst = worst.max((moved - current) / current * 100.0);
            } else if moved > 0.0 {
                worst = f64::INFINITY;
            }
        }
    }
    worst
}

/// `true` when no device can improve its share at all by unilaterally moving
/// (up to a small numerical tolerance).
#[must_use]
pub fn is_nash_allocation(game: &ResourceSelectionGame, allocation: &Allocation) -> bool {
    is_epsilon_equilibrium(game, allocation, 1e-9)
}

/// `true` when no device can improve its share by more than
/// `epsilon_percent` % by unilaterally moving (the ε-equilibrium of the
/// paper's Figure 4, with ε expressed as a percentage).
#[must_use]
pub fn is_epsilon_equilibrium(
    game: &ResourceSelectionGame,
    allocation: &Allocation,
    epsilon_percent: f64,
) -> bool {
    max_unilateral_improvement(game, allocation) <= epsilon_percent
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setting1() -> ResourceSelectionGame {
        ResourceSelectionGame::new(vec![
            (NetworkId(0), 4.0),
            (NetworkId(1), 7.0),
            (NetworkId(2), 22.0),
        ])
    }

    fn setting2() -> ResourceSelectionGame {
        ResourceSelectionGame::new(vec![
            (NetworkId(0), 11.0),
            (NetworkId(1), 11.0),
            (NetworkId(2), 11.0),
        ])
    }

    #[test]
    fn setting1_equilibrium_is_2_4_14() {
        let allocation = nash_allocation(&setting1(), 20);
        assert_eq!(allocation[&NetworkId(0)], 2);
        assert_eq!(allocation[&NetworkId(1)], 4);
        assert_eq!(allocation[&NetworkId(2)], 14);
        assert!(is_nash_allocation(&setting1(), &allocation));
    }

    #[test]
    fn setting2_equilibrium_is_balanced() {
        let allocation = nash_allocation(&setting2(), 20);
        let mut counts: Vec<usize> = allocation.values().copied().collect();
        counts.sort_unstable();
        assert_eq!(counts, vec![6, 7, 7]);
        assert!(is_nash_allocation(&setting2(), &allocation));
    }

    #[test]
    fn greedy_like_allocation_is_not_an_equilibrium() {
        // Everyone crowds onto the two fastest networks, leaving 4 Mbps unused
        // (the "tragedy of the commons" situation of §VI-A).
        let game = setting1();
        let mut allocation: Allocation = game.networks().into_iter().map(|n| (n, 0)).collect();
        allocation.insert(NetworkId(1), 6);
        allocation.insert(NetworkId(2), 14);
        assert!(!is_nash_allocation(&game, &allocation));
        let improvement = max_unilateral_improvement(&game, &allocation);
        // A device on the 7 Mbps network (share 7/6 ≈ 1.17) could move to the
        // empty 4 Mbps network and more than triple its share.
        assert!(improvement > 200.0, "improvement = {improvement}");
    }

    #[test]
    fn epsilon_relaxation_is_monotone() {
        let game = setting1();
        let mut allocation = nash_allocation(&game, 20);
        // Perturb: move one device from the 22 Mbps to the 4 Mbps network.
        *allocation.get_mut(&NetworkId(2)).unwrap() -= 1;
        *allocation.get_mut(&NetworkId(0)).unwrap() += 1;
        assert!(!is_epsilon_equilibrium(&game, &allocation, 1.0));
        assert!(is_epsilon_equilibrium(&game, &allocation, 100.0));
    }

    #[test]
    fn zero_devices_is_trivially_nash() {
        let allocation = nash_allocation(&setting1(), 0);
        assert_eq!(ResourceSelectionGame::devices_in(&allocation), 0);
        assert!(is_nash_allocation(&setting1(), &allocation));
        assert_eq!(max_unilateral_improvement(&setting1(), &allocation), 0.0);
    }

    #[test]
    fn single_network_puts_everyone_there() {
        let game = ResourceSelectionGame::new(vec![(NetworkId(5), 10.0)]);
        let allocation = nash_allocation(&game, 7);
        assert_eq!(allocation[&NetworkId(5)], 7);
        assert!(is_nash_allocation(&game, &allocation));
    }

    #[test]
    fn shares_at_equilibrium_match_hand_computation() {
        let shares = allocation_shares(&setting1(), &nash_allocation(&setting1(), 20));
        let lookup: std::collections::BTreeMap<NetworkId, f64> = shares.into_iter().collect();
        assert!((lookup[&NetworkId(0)] - 2.0).abs() < 1e-12);
        assert!((lookup[&NetworkId(1)] - 1.75).abs() < 1e-12);
        assert!((lookup[&NetworkId(2)] - 22.0 / 14.0).abs() < 1e-12);
    }
}
