//! Small, dependency-free summary statistics used to aggregate repeated
//! simulation runs (the paper reports means, medians and standard deviations
//! over 500 runs).

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Median (0 for an empty sample).
    pub median: f64,
    /// Sample standard deviation (0 for fewer than two observations).
    pub std_dev: f64,
    /// Minimum (0 for an empty sample).
    pub min: f64,
    /// Maximum (0 for an empty sample).
    pub max: f64,
}

impl Summary {
    /// Computes the summary of `values`. Non-finite values are ignored.
    #[must_use]
    pub fn of(values: &[f64]) -> Self {
        let mut clean: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if clean.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                median: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        clean.sort_by(f64::total_cmp);
        let count = clean.len();
        let mean = clean.iter().sum::<f64>() / count as f64;
        let median = median_of_sorted(&clean);
        let std_dev = crate::fairness::standard_deviation(&clean);
        Summary {
            count,
            mean,
            median,
            std_dev,
            min: clean[0],
            max: clean[count - 1],
        }
    }

    /// The `p`-th percentile (0 ≤ p ≤ 100) of `values`, by linear
    /// interpolation between order statistics. Returns 0 for an empty sample.
    #[must_use]
    pub fn percentile(values: &[f64], p: f64) -> f64 {
        let mut clean: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if clean.is_empty() {
            return 0.0;
        }
        clean.sort_by(f64::total_cmp);
        let p = p.clamp(0.0, 100.0) / 100.0;
        let rank = p * (clean.len() - 1) as f64;
        let low = rank.floor() as usize;
        let high = rank.ceil() as usize;
        if low == high {
            clean[low]
        } else {
            let fraction = rank - low as f64;
            clean[low] * (1.0 - fraction) + clean[high] * fraction
        }
    }
}

/// Median of `values`. Non-finite values are ignored; 0 for an empty sample.
#[must_use]
pub fn median(values: &[f64]) -> f64 {
    Summary::of(values).median
}

fn median_of_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        0.0
    } else if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let summary = Summary::of(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(summary.count, 4);
        assert_eq!(summary.mean, 2.5);
        assert_eq!(summary.median, 2.5);
        assert_eq!(summary.min, 1.0);
        assert_eq!(summary.max, 4.0);
    }

    #[test]
    fn odd_length_median_is_the_middle_element() {
        assert_eq!(median(&[9.0, 1.0, 5.0]), 5.0);
    }

    #[test]
    fn non_finite_values_are_ignored() {
        let summary = Summary::of(&[1.0, f64::NAN, 3.0, f64::INFINITY]);
        assert_eq!(summary.count, 2);
        assert_eq!(summary.mean, 2.0);
    }

    #[test]
    fn empty_sample_is_all_zeros() {
        let summary = Summary::of(&[]);
        assert_eq!(summary.count, 0);
        assert_eq!(summary.mean, 0.0);
        assert_eq!(Summary::percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let values = vec![10.0, 20.0, 30.0, 40.0];
        assert_eq!(Summary::percentile(&values, 0.0), 10.0);
        assert_eq!(Summary::percentile(&values, 100.0), 40.0);
        assert_eq!(Summary::percentile(&values, 50.0), 25.0);
    }
}
