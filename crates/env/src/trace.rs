//! Trace replay as an [`Environment`]: every session rides the synthetic
//! WiFi/cellular trace pairs of §VI-B, shifted by a per-session phase so a
//! million sessions do not all see the same slot of the same trace.

use netsim::DelayModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use smartexp3_core::{EnvStateError, Environment, NetworkId, Observation, SessionView, SlotIndex};
use tracegen::{TracePair, CELLULAR, WIFI};

/// Per-session accounting of a trace replay.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct TraceSessionDyn {
    current: Option<NetworkId>,
    switches: u64,
    download_megabits: f64,
}

/// Serialized dynamic state (see [`Environment::state`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TraceEnvState {
    rng: [u64; 4],
    sessions: Vec<TraceSessionDyn>,
}

/// Replays a set of [`TracePair`]s for an arbitrary number of sessions:
/// session `i` follows pair `i % pairs` with a phase offset derived from its
/// index (traces wrap around), pays sampled switching delays, and receives
/// bandit feedback — the fleet-scale generalisation of
/// [`tracegen::run_policy_on_pair`].
pub struct TraceEnvironment {
    pairs: Vec<TracePair>,
    sessions: Vec<TraceSessionDyn>,
    gain_scale: f64,
    wifi_delay: DelayModel,
    cellular_delay: DelayModel,
    rng: StdRng,
}

impl TraceEnvironment {
    /// Builds a trace world for `sessions` sessions over `pairs` (at least
    /// one), with switching-delay sampling seeded by `env_seed`.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` is empty or any pair has no slots.
    #[must_use]
    pub fn new(pairs: Vec<TracePair>, sessions: usize, env_seed: u64) -> Self {
        assert!(!pairs.is_empty(), "a trace world needs at least one pair");
        assert!(
            pairs.iter().all(|p| !p.is_empty()),
            "trace pairs must have at least one slot"
        );
        let gain_scale = pairs
            .iter()
            .map(|p| p.wifi.peak_rate().max(p.cellular.peak_rate()))
            .fold(1e-9, f64::max);
        TraceEnvironment {
            pairs,
            sessions: vec![TraceSessionDyn::default(); sessions],
            gain_scale,
            wifi_delay: DelayModel::paper_wifi(),
            cellular_delay: DelayModel::paper_cellular(),
            rng: StdRng::seed_from_u64(env_seed),
        }
    }

    /// The (pair, phase-shifted slot) session `session` replays at `slot`.
    fn trace_slot(&self, session: usize, slot: SlotIndex) -> (&TracePair, usize) {
        let pair = &self.pairs[session % self.pairs.len()];
        // Stagger sessions across the trace so the world is heterogeneous.
        let offset = (session / self.pairs.len()) % pair.len();
        (pair, (slot + offset) % pair.len())
    }

    /// Total download across all sessions, in megabits.
    #[must_use]
    pub fn total_download_megabits(&self) -> f64 {
        self.sessions.iter().map(|s| s.download_megabits).sum()
    }

    /// Total switches across all sessions (environment-observed).
    #[must_use]
    pub fn total_switches(&self) -> u64 {
        self.sessions.iter().map(|s| s.switches).sum()
    }
}

impl Environment for TraceEnvironment {
    fn sessions(&self) -> usize {
        self.sessions.len()
    }

    fn begin_slot(&mut self, _slot: SlotIndex) {}

    fn session_view(&self, _session: usize, _slot: SlotIndex) -> SessionView<'_> {
        SessionView::active_static()
    }

    fn feedback(
        &mut self,
        slot: SlotIndex,
        choices: &[Option<NetworkId>],
        out: &mut [Option<Observation>],
    ) {
        for (index, choice) in choices.iter().enumerate() {
            let Some(chosen) = *choice else {
                out[index] = None;
                continue;
            };
            let (pair, trace_slot) = self.trace_slot(index, slot);
            let slot_duration = pair.wifi.slot_duration_s;
            let rate = if chosen == WIFI {
                pair.wifi.rate_at(trace_slot)
            } else if chosen == CELLULAR {
                pair.cellular.rate_at(trace_slot)
            } else {
                0.0
            };
            let session = &mut self.sessions[index];
            let switched = session.current.is_some() && session.current != Some(chosen);
            let delay = if switched {
                session.switches += 1;
                let model = if chosen == CELLULAR {
                    self.cellular_delay
                } else {
                    self.wifi_delay
                };
                model.sample(slot_duration, &mut self.rng)
            } else {
                0.0
            };
            session.current = Some(chosen);
            session.download_megabits += rate * (slot_duration - delay).max(0.0);

            let scaled_gain = (rate / self.gain_scale).clamp(0.0, 1.0);
            let mut observation = Observation::bandit(slot, chosen, rate, scaled_gain);
            if switched {
                observation = observation.with_switch(delay);
            }
            out[index] = Some(observation);
        }
    }

    fn state(&self) -> Option<String> {
        serde_json::to_string(&TraceEnvState {
            rng: self.rng.state(),
            sessions: self.sessions.clone(),
        })
        .ok()
    }

    fn restore(&mut self, state: &str) -> Result<(), EnvStateError> {
        let state: TraceEnvState = serde_json::from_str(state)
            .map_err(|error| EnvStateError(format!("unparseable trace state: {error}")))?;
        if state.sessions.len() != self.sessions.len() {
            return Err(EnvStateError(format!(
                "state describes {} sessions, environment hosts {}",
                state.sessions.len(),
                self.sessions.len()
            )));
        }
        self.rng = StdRng::from_state(state.rng);
        self.sessions = state.sessions;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracegen::paper_trace_pair;

    #[test]
    fn sessions_are_phase_shifted_over_the_pairs() {
        let env = TraceEnvironment::new(
            vec![paper_trace_pair(1, 50, 7), paper_trace_pair(2, 50, 8)],
            5,
            1,
        );
        let (_, slot0) = env.trace_slot(0, 0);
        let (_, slot2) = env.trace_slot(2, 0);
        assert_ne!(slot0, slot2, "same pair, different phase");
        assert_eq!(env.sessions(), 5);
    }

    #[test]
    fn feedback_replays_the_trace_rates() {
        let pair = paper_trace_pair(1, 30, 3);
        let wifi0 = pair.wifi.rate_at(0);
        let mut env = TraceEnvironment::new(vec![pair], 1, 2);
        let mut out = vec![None];
        env.feedback(0, &[Some(WIFI)], &mut out);
        let observation = out[0].as_ref().unwrap();
        assert_eq!(observation.bit_rate_mbps, wifi0);
        assert!(!observation.switched);
        // Switching to cellular pays a delay and counts a switch.
        env.feedback(1, &[Some(CELLULAR)], &mut out);
        assert!(out[0].as_ref().unwrap().switched);
        assert_eq!(env.total_switches(), 1);
        assert!(env.total_download_megabits() > 0.0);
    }

    #[test]
    fn state_round_trips() {
        let mut env = TraceEnvironment::new(vec![paper_trace_pair(3, 40, 5)], 3, 9);
        let mut out = vec![None, None, None];
        env.feedback(0, &[Some(WIFI), Some(CELLULAR), None], &mut out);
        let state = env.state().unwrap();
        let mut restored = TraceEnvironment::new(vec![paper_trace_pair(3, 40, 5)], 3, 0);
        restored.restore(&state).unwrap();
        assert_eq!(restored.total_switches(), env.total_switches());
        assert!(restored.restore("{bad").is_err());
        let donor = TraceEnvironment::new(vec![paper_trace_pair(3, 40, 5)], 2, 0);
        assert!(restored.restore(&donor.state().unwrap()).is_err());
    }
}
