//! Trace replay as an [`Environment`]: every session rides the synthetic
//! WiFi/cellular trace pairs of §VI-B, shifted by a per-session phase so a
//! million sessions do not all see the same slot of the same trace.
//!
//! Sessions are fully independent — the only coupling in the old
//! implementation was one shared RNG for switching-delay sampling — so the
//! world partitions into contiguous **phase groups** of
//! [`partition_sessions`](TraceEnvironment::with_partition_sessions)
//! sessions, each with its own delay-sampling RNG stream advanced in
//! canonical session order. Group 0 keeps the historical single-stream seed
//! derivation, so worlds that fit in one group reproduce the pre-sharding
//! trajectories bit-for-bit.

use netsim::DelayModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use smartexp3_core::{
    EnvStateError, Environment, NetworkId, Observation, PartitionExecutor, PartitionJob,
    SequentialExecutor, SessionRange, SessionView, SlotIndex, SlotMetrics,
};
use tracegen::{TracePair, CELLULAR, WIFI};

/// Default sessions per feedback partition (phase group). Large enough that
/// per-partition bookkeeping is negligible, small enough that a million
/// sessions fan out over hundreds of workers.
pub const TRACE_PARTITION_SESSIONS: usize = 4096;

/// Per-session accounting of a trace replay.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct TraceSessionDyn {
    current: Option<NetworkId>,
    switches: u64,
    download_megabits: f64,
}

/// Serialized dynamic state (see [`Environment::state`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TraceEnvState {
    /// One RNG stream per feedback partition, in partition order.
    rngs: Vec<[u64; 4]>,
    sessions: Vec<TraceSessionDyn>,
}

/// Replays a set of [`TracePair`]s for an arbitrary number of sessions:
/// session `i` follows pair `i % pairs` with a phase offset derived from its
/// index (traces wrap around), pays sampled switching delays, and receives
/// bandit feedback — the fleet-scale generalisation of
/// [`tracegen::run_policy_on_pair`].
pub struct TraceEnvironment {
    pairs: Vec<TracePair>,
    sessions: Vec<TraceSessionDyn>,
    gain_scale: f64,
    wifi_delay: DelayModel,
    cellular_delay: DelayModel,
    env_seed: u64,
    ranges: Vec<SessionRange>,
    rngs: Vec<StdRng>,
    /// Whether phase groups accumulate streaming telemetry while grading.
    telemetry_enabled: bool,
    /// One accumulator per phase group, merged in canonical partition order
    /// into `slot_metrics` after every feedback pass.
    partition_metrics: Vec<SlotMetrics>,
    /// Last slot's fleet-level metrics (telemetry only; never serialized).
    slot_metrics: SlotMetrics,
}

/// Derives phase group `partition`'s delay-sampling stream. Partition 0
/// keeps the historical `seed_from_u64(env_seed)` stream.
fn trace_rng(env_seed: u64, partition: usize) -> StdRng {
    if partition == 0 {
        return StdRng::seed_from_u64(env_seed);
    }
    let mixed = smartexp3_core::splitmix64(env_seed ^ 0x2545_F491_4F6C_DD1D)
        ^ (partition as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25);
    StdRng::seed_from_u64(smartexp3_core::splitmix64(mixed))
}

/// The (pair, phase-shifted slot) session `session` replays at `slot`.
fn trace_slot(pairs: &[TracePair], session: usize, slot: SlotIndex) -> (&TracePair, usize) {
    let pair = &pairs[session % pairs.len()];
    // Stagger sessions across the trace so the world is heterogeneous.
    let offset = (session / pairs.len()) % pair.len();
    (pair, (slot + offset) % pair.len())
}

impl TraceEnvironment {
    /// Builds a trace world for `sessions` sessions over `pairs` (at least
    /// one), with switching-delay sampling seeded by `env_seed`.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` is empty or any pair has no slots.
    #[must_use]
    pub fn new(pairs: Vec<TracePair>, sessions: usize, env_seed: u64) -> Self {
        assert!(!pairs.is_empty(), "a trace world needs at least one pair");
        assert!(
            pairs.iter().all(|p| !p.is_empty()),
            "trace pairs must have at least one slot"
        );
        let gain_scale = pairs
            .iter()
            .map(|p| p.wifi.peak_rate().max(p.cellular.peak_rate()))
            .fold(1e-9, f64::max);
        let mut env = TraceEnvironment {
            pairs,
            sessions: vec![TraceSessionDyn::default(); sessions],
            gain_scale,
            wifi_delay: DelayModel::paper_wifi(),
            cellular_delay: DelayModel::paper_cellular(),
            env_seed,
            ranges: Vec::new(),
            rngs: Vec::new(),
            telemetry_enabled: false,
            partition_metrics: Vec::new(),
            slot_metrics: SlotMetrics::new(),
        };
        env.rebuild_partitions(TRACE_PARTITION_SESSIONS);
        env
    }

    /// Overrides the phase-group size (clamped to ≥ 1) and re-derives the
    /// per-group RNG streams from the environment seed. Smaller groups mean
    /// more feedback parallelism; the trajectory changes with the layout
    /// (each group owns a stream), but is always thread-count independent.
    #[must_use]
    pub fn with_partition_sessions(mut self, sessions_per_partition: usize) -> Self {
        self.rebuild_partitions(sessions_per_partition.max(1));
        self
    }

    fn rebuild_partitions(&mut self, per_partition: usize) {
        let sessions = self.sessions.len();
        let partitions = sessions.div_ceil(per_partition).max(1);
        self.ranges = (0..partitions)
            .map(|p| SessionRange::new(p * per_partition, ((p + 1) * per_partition).min(sessions)))
            .collect();
        self.rngs = (0..partitions)
            .map(|p| trace_rng(self.env_seed, p))
            .collect();
        self.partition_metrics = vec![SlotMetrics::new(); partitions];
    }

    /// Total download across all sessions, in megabits.
    #[must_use]
    pub fn total_download_megabits(&self) -> f64 {
        self.sessions.iter().map(|s| s.download_megabits).sum()
    }

    /// Total switches across all sessions (environment-observed).
    #[must_use]
    pub fn total_switches(&self) -> u64 {
        self.sessions.iter().map(|s| s.switches).sum()
    }
}

/// Grades one phase group: canonical session order, delays from the group's
/// own stream. `start` is the global index of the group's first session;
/// `sessions`, `choices` and `out` are the group's slices. With `telemetry`
/// on, `metrics` additionally accumulates the group's streaming series; the
/// trace world's "distance to equilibrium" is the shortfall against the best
/// rate the session's own trace offered that slot (there is no congestion, so
/// the per-session optimum *is* the equilibrium).
#[allow(clippy::too_many_arguments)]
fn run_partition(
    pairs: &[TracePair],
    gain_scale: f64,
    wifi_delay: DelayModel,
    cellular_delay: DelayModel,
    rng: &mut StdRng,
    start: usize,
    slot: SlotIndex,
    choices: &[Option<NetworkId>],
    sessions: &mut [TraceSessionDyn],
    out: &mut [Option<Observation>],
    telemetry: bool,
    metrics: &mut SlotMetrics,
) {
    if telemetry {
        metrics.clear();
    }
    let mut graded = 0usize;
    let mut shortfall_sum = 0.0;
    for (i, choice) in choices.iter().enumerate() {
        let Some(chosen) = *choice else {
            out[i] = None;
            continue;
        };
        let (pair, trace_slot) = trace_slot(pairs, start + i, slot);
        let slot_duration = pair.wifi.slot_duration_s;
        let rate = if chosen == WIFI {
            pair.wifi.rate_at(trace_slot)
        } else if chosen == CELLULAR {
            pair.cellular.rate_at(trace_slot)
        } else {
            0.0
        };
        let session = &mut sessions[i];
        let switched = session.current.is_some() && session.current != Some(chosen);
        let delay = if switched {
            session.switches += 1;
            let model = if chosen == CELLULAR {
                cellular_delay
            } else {
                wifi_delay
            };
            model.sample(slot_duration, rng)
        } else {
            0.0
        };
        session.current = Some(chosen);
        session.download_megabits += rate * (slot_duration - delay).max(0.0);

        let scaled_gain = (rate / gain_scale).clamp(0.0, 1.0);
        if telemetry {
            graded += 1;
            metrics.record_session(rate, scaled_gain, switched);
            let best = pair
                .wifi
                .rate_at(trace_slot)
                .max(pair.cellular.rate_at(trace_slot));
            if best > 0.0 {
                shortfall_sum += (best - rate).max(0.0) * 100.0 / best;
            }
        }
        let mut observation = Observation::bandit(slot, chosen, rate, scaled_gain);
        if switched {
            observation = observation.with_switch(delay);
        }
        out[i] = Some(observation);
    }
    if telemetry && graded > 0 {
        metrics.finish_area(shortfall_sum / graded as f64);
    }
}

impl Environment for TraceEnvironment {
    fn sessions(&self) -> usize {
        self.sessions.len()
    }

    fn begin_slot(&mut self, _slot: SlotIndex) {}

    fn session_view(&self, _session: usize, _slot: SlotIndex) -> SessionView<'_> {
        SessionView::active_static()
    }

    fn feedback(
        &mut self,
        slot: SlotIndex,
        choices: &[Option<NetworkId>],
        out: &mut [Option<Observation>],
    ) {
        self.feedback_partitioned(slot, choices, out, &SequentialExecutor);
    }

    fn feedback_partitions(&self) -> Option<&[SessionRange]> {
        Some(&self.ranges)
    }

    fn feedback_partitioned(
        &mut self,
        slot: SlotIndex,
        choices: &[Option<NetworkId>],
        out: &mut [Option<Observation>],
        executor: &dyn PartitionExecutor,
    ) {
        let telemetry = self.telemetry_enabled;
        let pairs: &[TracePair] = &self.pairs;
        let gain_scale = self.gain_scale;
        let wifi_delay = self.wifi_delay;
        let cellular_delay = self.cellular_delay;
        let mut jobs: Vec<PartitionJob<'_>> = Vec::with_capacity(self.ranges.len());
        let mut sessions_rest: &mut [TraceSessionDyn] = &mut self.sessions;
        let mut out_rest: &mut [Option<Observation>] = out;
        let mut choices_rest: &[Option<NetworkId>] = choices;
        for ((range, rng), metrics) in self
            .ranges
            .iter()
            .zip(self.rngs.iter_mut())
            .zip(self.partition_metrics.iter_mut())
        {
            let len = range.len();
            let (job_sessions, rest) = sessions_rest.split_at_mut(len);
            sessions_rest = rest;
            let (job_out, rest) = out_rest.split_at_mut(len);
            out_rest = rest;
            let (job_choices, rest) = choices_rest.split_at(len);
            choices_rest = rest;
            let start = range.start;
            jobs.push(Box::new(move || {
                run_partition(
                    pairs,
                    gain_scale,
                    wifi_delay,
                    cellular_delay,
                    rng,
                    start,
                    slot,
                    job_choices,
                    job_sessions,
                    job_out,
                    telemetry,
                    metrics,
                );
            }));
        }
        executor.run(jobs);
        // Canonical-partition-order merge: identical result under any
        // executor, so the telemetry series is thread-count independent.
        if telemetry {
            self.slot_metrics.clear();
            for metrics in &self.partition_metrics {
                self.slot_metrics.merge(metrics);
            }
        }
    }

    fn set_telemetry(&mut self, enabled: bool) -> bool {
        self.telemetry_enabled = enabled;
        if !enabled {
            self.slot_metrics.clear();
        }
        true
    }

    fn telemetry(&self) -> Option<&SlotMetrics> {
        self.telemetry_enabled.then_some(&self.slot_metrics)
    }

    fn state(&self) -> Option<String> {
        serde_json::to_string(&TraceEnvState {
            rngs: self.rngs.iter().map(StdRng::state).collect(),
            sessions: self.sessions.clone(),
        })
        .ok()
    }

    fn restore(&mut self, state: &str) -> Result<(), EnvStateError> {
        let state: TraceEnvState = serde_json::from_str(state)
            .map_err(|error| EnvStateError(format!("unparseable trace state: {error}")))?;
        if state.sessions.len() != self.sessions.len() {
            return Err(EnvStateError(format!(
                "state describes {} sessions, environment hosts {}",
                state.sessions.len(),
                self.sessions.len()
            )));
        }
        if state.rngs.len() != self.rngs.len() {
            return Err(EnvStateError(format!(
                "state carries {} partition RNG streams, environment has {} phase groups",
                state.rngs.len(),
                self.rngs.len()
            )));
        }
        self.rngs = state.rngs.into_iter().map(StdRng::from_state).collect();
        self.sessions = state.sessions;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracegen::paper_trace_pair;

    #[test]
    fn sessions_are_phase_shifted_over_the_pairs() {
        let env = TraceEnvironment::new(
            vec![paper_trace_pair(1, 50, 7), paper_trace_pair(2, 50, 8)],
            5,
            1,
        );
        let (_, slot0) = trace_slot(&env.pairs, 0, 0);
        let (_, slot2) = trace_slot(&env.pairs, 2, 0);
        assert_ne!(slot0, slot2, "same pair, different phase");
        assert_eq!(env.sessions(), 5);
        // Five sessions fit in one default phase group.
        assert_eq!(env.feedback_partitions().unwrap().len(), 1);
    }

    #[test]
    fn feedback_replays_the_trace_rates() {
        let pair = paper_trace_pair(1, 30, 3);
        let wifi0 = pair.wifi.rate_at(0);
        let mut env = TraceEnvironment::new(vec![pair], 1, 2);
        let mut out = vec![None];
        env.feedback(0, &[Some(WIFI)], &mut out);
        let observation = out[0].as_ref().unwrap();
        assert_eq!(observation.bit_rate_mbps, wifi0);
        assert!(!observation.switched);
        // Switching to cellular pays a delay and counts a switch.
        env.feedback(1, &[Some(CELLULAR)], &mut out);
        assert!(out[0].as_ref().unwrap().switched);
        assert_eq!(env.total_switches(), 1);
        assert!(env.total_download_megabits() > 0.0);
    }

    #[test]
    fn state_round_trips() {
        let mut env = TraceEnvironment::new(vec![paper_trace_pair(3, 40, 5)], 3, 9);
        let mut out = vec![None, None, None];
        env.feedback(0, &[Some(WIFI), Some(CELLULAR), None], &mut out);
        let state = env.state().unwrap();
        let mut restored = TraceEnvironment::new(vec![paper_trace_pair(3, 40, 5)], 3, 0);
        restored.restore(&state).unwrap();
        assert_eq!(restored.total_switches(), env.total_switches());
        assert!(restored.restore("{bad").is_err());
        let donor = TraceEnvironment::new(vec![paper_trace_pair(3, 40, 5)], 2, 0);
        assert!(restored.restore(&donor.state().unwrap()).is_err());
        // A different phase-group layout carries a different stream count.
        let mut regrouped = TraceEnvironment::new(vec![paper_trace_pair(3, 40, 5)], 3, 9)
            .with_partition_sessions(1);
        assert_eq!(regrouped.feedback_partitions().unwrap().len(), 3);
        assert!(regrouped.restore(&state).is_err());
    }

    #[test]
    fn phase_groups_partition_the_sessions() {
        let env = TraceEnvironment::new(vec![paper_trace_pair(1, 30, 3)], 10, 4)
            .with_partition_sessions(4);
        let ranges = env.feedback_partitions().unwrap();
        assert_eq!(ranges.len(), 3);
        assert!(SessionRange::tile(ranges, 10));
        assert_eq!(ranges[2], SessionRange::new(8, 10));
    }
}
