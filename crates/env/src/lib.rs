//! # smartexp3-env
//!
//! Fleet-scale **scenario library**: every world the paper evaluates, packaged
//! as an [`Environment`] plus a pre-populated
//! [`FleetEngine`](smartexp3_engine::FleetEngine) so it can be stepped through
//! `run_env` with millions of sessions — sharded over worker threads,
//! bit-identical at any thread count, and checkpointable mid-run.
//!
//! The catalog (one builder per world):
//!
//! | builder | world | dynamics exercised |
//! |---|---|---|
//! | [`equal_share`] | replicated service areas, each a 4/7/22 Mbps shared-bandwidth congestion game | joint-choice coupling |
//! | [`dynamic_bandwidth`] | the same areas, but every area's 22 Mbps network collapses and recovers on schedule | pending [`BandwidthEvent`](netsim::BandwidthEvent)s |
//! | [`area_mobility`] | replicated Figure-1 maps; 8 of every 20 devices walk food court → study area → bus stop | visibility churn, `on_networks_changed` |
//! | [`trace_driven`] | every session replays the §VI-B WiFi/cellular trace pairs, phase-shifted per session | non-stationary rates, switching delays |
//! | [`cooperative`] | the equal-share areas with a Co-Bandit gossip layer: sessions share observed rates within their area | shared feedback, `Policy::observe_shared` |
//! | [`dense_urban`] | dense-spectrum city blocks: one macro cell, a band of small cells and hundreds of weak APs per area (256–1024 networks visible per device) | large-K sampling ([`SamplerStrategy`](smartexp3_core::SamplerStrategy)) |
//! | [`duty_cycle`] | the equal-share areas with heterogeneous wake cadences (1/2/4/8 round-robin, staggered) and periodic cellular bandwidth bursts | event-driven stepping ([`FleetEngine::step_events`](smartexp3_engine::FleetEngine::step_events)), wake-to-decision latency |
//! | [`dense_duty_cycle`] | the [`dense_urban`] city blocks under the [`duty_cycle`] wake protocol: large-K catalogs whose weights freeze across sleep intervals, punctuated by macro-cell bandwidth bursts | amortised-O(1) sampling ([`SamplerStrategy::Alias`](smartexp3_core::SamplerStrategy::Alias)) on static-weight phases |
//!
//! Scale: sessions are grouped into independent replicas (100 devices per
//! congestion area, 20 per mobility map, [`DenseUrbanConfig::devices_per_area`]
//! per city block), so the worlds stay *paper-shaped* at any population — a
//! million sessions is ten thousand food courts, not one network with a
//! million devices.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cooperative;
mod duty_cycle;
mod trace;

pub use cooperative::{CooperativeEnvironment, GossipConfig, GossipMode};
pub use duty_cycle::{DutyCycleConfig, DutyCycleEnvironment};
pub use trace::{TraceEnvironment, TRACE_PARTITION_SESSIONS};

use netsim::{
    AreaId, BandwidthEvent, CongestionEnvironment, DeviceProfile, NetworkSpec, ServiceArea,
    SimulationConfig, Topology,
};
use smartexp3_core::{
    ConfigError, Environment, NetworkId, PolicyFactory, PolicyKind, SamplerStrategy,
};
use smartexp3_engine::{FleetConfig, FleetEngine};
use smartexp3_telemetry::TelemetrySink;
use tracegen::paper_trace_pair;

/// Devices per replicated congestion area (the paper's settings use 20 per
/// 3-network area; 100 keeps per-device shares realistic while letting a
/// million sessions fit in ten thousand areas).
pub const DEVICES_PER_AREA: usize = 100;

/// Devices per replicated Figure-1 mobility map (the paper's setting 3).
pub const DEVICES_PER_MAP: usize = 20;

/// A ready-to-run world: an environment plus the fleet populated to match
/// it, session-for-session.
pub struct Scenario {
    /// Catalog name (also used as the bench/record label).
    pub name: &'static str,
    /// The world.
    pub environment: Box<dyn Environment>,
    /// The fleet hosting one policy session per environment session.
    pub fleet: FleetEngine,
}

impl Scenario {
    /// Steps the scenario `slots` slots through the unified engine path.
    pub fn run(&mut self, slots: usize) {
        self.fleet.run_env(self.environment.as_mut(), slots);
    }

    /// Enables streaming telemetry on the world; returns `false` when the
    /// environment does not support it. Telemetry is pure observation — the
    /// trajectory is unchanged — so it can be toggled mid-run.
    pub fn enable_telemetry(&mut self) -> bool {
        self.environment.set_telemetry(true)
    }

    /// Steps the scenario `slots` slots, delivering one
    /// [`TelemetryRecord`](smartexp3_telemetry::TelemetryRecord) per slot to
    /// `sink`. Call [`enable_telemetry`](Self::enable_telemetry) first if the
    /// records should carry per-slot metrics (without it they still carry
    /// `slot`, `active` and phase timing).
    pub fn run_streaming(&mut self, slots: usize, sink: &mut dyn TelemetrySink) {
        self.fleet
            .run_env_with_sink(self.environment.as_mut(), slots, sink);
    }

    /// Number of sessions in the world.
    #[must_use]
    pub fn sessions(&self) -> usize {
        self.fleet.len()
    }
}

/// The 4/7/22 Mbps network triple of service area `area`, with globally
/// unique ids.
fn area_networks(area: usize) -> Vec<NetworkSpec> {
    let base = (area * 3) as u32;
    vec![
        NetworkSpec::wifi(base, 4.0),
        NetworkSpec::wifi(base + 1, 7.0),
        NetworkSpec::cellular(base + 2, 22.0),
    ]
}

/// Builds the replicated-congestion-area world shared by [`equal_share`],
/// [`dynamic_bandwidth`], [`cooperative`] and [`duty_cycle`]. The worlds
/// whose golden pins predate per-policy samplers pass
/// [`SamplerStrategy::Linear`] (the factory default, so their trajectories
/// are bit-identical to the historical builder).
fn congestion_world(
    sessions: usize,
    kind: PolicyKind,
    config: FleetConfig,
    events: Vec<BandwidthEvent>,
    sampler: SamplerStrategy,
    name: &'static str,
) -> Result<Scenario, ConfigError> {
    assert!(sessions > 0, "a scenario needs at least one session");
    let areas = sessions.div_ceil(DEVICES_PER_AREA);
    let mut networks = Vec::with_capacity(areas * 3);
    let mut service_areas = Vec::with_capacity(areas);
    let mut profiles = Vec::with_capacity(sessions);
    let mut fleet = FleetEngine::new(config);

    for area in 0..areas {
        let specs = area_networks(area);
        let ids: Vec<NetworkId> = specs.iter().map(|n| n.id).collect();
        let rates: Vec<(NetworkId, f64)> = specs.iter().map(|n| (n.id, n.bandwidth_mbps)).collect();
        service_areas.push(ServiceArea {
            id: AreaId(area as u32),
            name: format!("area {area}"),
            networks: ids.clone(),
        });
        networks.extend(specs);

        let population = (sessions - area * DEVICES_PER_AREA).min(DEVICES_PER_AREA);
        let mut factory = PolicyFactory::new(rates)?.with_sampler(sampler);
        fleet.add_fleet(&mut factory, kind, population)?;
        for device in 0..population {
            profiles.push(DeviceProfile::new(
                (area * DEVICES_PER_AREA + device) as u32,
                AreaId(area as u32),
                ids.clone(),
            ));
        }
    }

    let seed = fleet.config().environment_seed();
    let environment = CongestionEnvironment::new(
        networks,
        Topology::new(service_areas),
        events,
        profiles,
        SimulationConfig::default(),
        seed,
    );
    Ok(Scenario {
        name,
        environment: Box::new(environment),
        fleet,
    })
}

/// World 1 — **equal-share congestion**: `sessions` devices partitioned into
/// independent service areas of [`DEVICES_PER_AREA`], each area a 4/7/22 Mbps
/// shared-bandwidth game (the paper's setting 1 at fleet scale).
///
/// # Errors
///
/// Propagates [`ConfigError`] from policy construction.
pub fn equal_share(
    sessions: usize,
    kind: PolicyKind,
    config: FleetConfig,
) -> Result<Scenario, ConfigError> {
    congestion_world(
        sessions,
        kind,
        config,
        Vec::new(),
        SamplerStrategy::Linear,
        "equal_share",
    )
}

/// World 2 — **dynamic bandwidth**: the [`equal_share`] world, but every
/// area's 22 Mbps network collapses to 2 Mbps at `collapse_at` and recovers
/// at `recover_at` (the §VI-A bandwidth-dynamics setting at fleet scale).
///
/// # Errors
///
/// Propagates [`ConfigError`] from policy construction.
pub fn dynamic_bandwidth(
    sessions: usize,
    kind: PolicyKind,
    config: FleetConfig,
    collapse_at: usize,
    recover_at: usize,
) -> Result<Scenario, ConfigError> {
    let areas = sessions.div_ceil(DEVICES_PER_AREA);
    let mut events = Vec::with_capacity(areas * 2);
    for area in 0..areas {
        let cellular = NetworkId((area * 3 + 2) as u32);
        events.push(BandwidthEvent::new(collapse_at, cellular, 2.0));
        events.push(BandwidthEvent::new(recover_at, cellular, 22.0));
    }
    congestion_world(
        sessions,
        kind,
        config,
        events,
        SamplerStrategy::Linear,
        "dynamic_bandwidth",
    )
}

/// World 5 — **cooperative feedback**: the [`equal_share`] congestion areas
/// wrapped in a [`CooperativeEnvironment`] — every service area is one
/// gossip neighbourhood whose sessions share their observed rates between
/// slots (the Co-Bandit workload; policies fold the digests in via
/// `Policy::observe_shared`).
///
/// # Errors
///
/// Propagates [`ConfigError`] from policy construction.
pub fn cooperative(
    sessions: usize,
    kind: PolicyKind,
    config: FleetConfig,
    gossip: GossipConfig,
) -> Result<Scenario, ConfigError> {
    let mut scenario = congestion_world(
        sessions,
        kind,
        config,
        Vec::new(),
        SamplerStrategy::Linear,
        "cooperative",
    )?;
    let membership = (0..sessions).map(|i| i / DEVICES_PER_AREA).collect();
    let gossip_seed = scenario.fleet.config().environment_seed();
    scenario.environment = Box::new(CooperativeEnvironment::new(
        scenario.environment,
        membership,
        gossip,
        gossip_seed,
    ));
    Ok(scenario)
}

/// World 7 — **heterogeneous duty cycles**: the [`equal_share`] congestion
/// areas wrapped in a [`DutyCycleEnvironment`] — session `i` wakes every
/// `cadences[i % cadences.len()]` slots (staggered by index), and every
/// [`DutyCycleConfig::burst_period`] slots each area's cellular network
/// collapses to 2 Mbps, recovering half a period later. Built for the
/// event-driven engine path: step it with
/// [`FleetEngine::run_until`](smartexp3_engine::FleetEngine::run_until) /
/// [`step_events`](smartexp3_engine::FleetEngine::step_events) rather than
/// `run_env` (the slot-synchronous path still works — cadences are then
/// simply ignored).
///
/// Visibility in this world is static by design: `networks_changed`
/// notifications are edge-triggered and would be missed by sleeping
/// sessions, so burstiness comes from scheduled bandwidth collapses (level
/// changes every later wake observes correctly), not mobility.
///
/// # Errors
///
/// Propagates [`ConfigError`] from policy construction.
pub fn duty_cycle(
    sessions: usize,
    kind: PolicyKind,
    config: FleetConfig,
    duty: DutyCycleConfig,
) -> Result<Scenario, ConfigError> {
    let areas = sessions.div_ceil(DEVICES_PER_AREA);
    let mut events = Vec::new();
    if duty.burst_period > 0 {
        let half = (duty.burst_period / 2).max(1);
        for area in 0..areas {
            let cellular = NetworkId((area * 3 + 2) as u32);
            let mut at = duty.burst_period;
            while at <= duty.horizon_slots {
                events.push(BandwidthEvent::new(at, cellular, 2.0));
                events.push(BandwidthEvent::new(at + half, cellular, 22.0));
                at += duty.burst_period;
            }
        }
    }
    let mut scenario =
        congestion_world(sessions, kind, config, events, duty.sampler, "duty_cycle")?;
    scenario.environment = Box::new(DutyCycleEnvironment::new(
        scenario.environment,
        duty.cadences,
    ));
    Ok(scenario)
}

/// Shape of the [`dense_urban`] world: how many networks each city block
/// advertises, how many devices share it, and which CDF-inversion strategy
/// the EXP3-family policies use over that catalog.
#[derive(Debug, Clone, Copy)]
pub struct DenseUrbanConfig {
    /// Networks visible per city block — the per-policy arm count `K`.
    /// The world is meant for 256–1024; anything ≥ 2 builds (tests use
    /// small blocks to stay fast).
    pub networks_per_area: usize,
    /// Devices sharing one city block.
    pub devices_per_area: usize,
    /// CDF-inversion strategy for every EXP3-family policy in the world.
    /// Golden decision pins are **per policy config**: trajectories are
    /// bit-stable for a fixed strategy, but [`SamplerStrategy::Linear`] and
    /// [`SamplerStrategy::Tree`] runs are distinct pinned configurations.
    pub sampler: SamplerStrategy,
}

impl Default for DenseUrbanConfig {
    fn default() -> Self {
        DenseUrbanConfig {
            networks_per_area: 512,
            devices_per_area: 64,
            sampler: SamplerStrategy::Tree,
        }
    }
}

/// The dense-spectrum catalog of city block `area`: network `0` is the
/// macro cell, the next `k/16` are mid-tier small cells, and the rest are
/// weak APs — ids ascend within the block so visibility lists stay sorted.
fn dense_area_networks(area: usize, k: usize) -> Vec<NetworkSpec> {
    let base = (area * k) as u32;
    (0..k)
        .map(|j| {
            let id = base + j as u32;
            if j == 0 {
                NetworkSpec::cellular(id, 22.0)
            } else if j <= k / 16 {
                // Small cells: 7.0–14.5 Mbps in a deterministic ramp.
                NetworkSpec::wifi(id, 7.0 + (j % 4) as f64 * 2.5)
            } else {
                // Weak APs: 1.0–4.5 Mbps.
                NetworkSpec::wifi(id, 1.0 + (j % 8) as f64 * 0.5)
            }
        })
        .collect()
}

/// World 6 — **dense urban spectrum**: `sessions` devices partitioned into
/// city blocks of [`DenseUrbanConfig::devices_per_area`], each block one
/// shared-bandwidth congestion game over
/// [`DenseUrbanConfig::networks_per_area`] networks (one 22 Mbps macro cell,
/// a band of small cells, hundreds of weak APs). This is the large-K
/// stress world for the sublinear sampler: with
/// [`SamplerStrategy::Tree`] each draw costs O(log K) instead of O(K).
///
/// # Errors
///
/// Propagates [`ConfigError`] from policy construction.
///
/// # Panics
///
/// Panics when `sessions == 0`, `networks_per_area < 2` or
/// `devices_per_area == 0`.
pub fn dense_urban(
    sessions: usize,
    kind: PolicyKind,
    config: FleetConfig,
    dense: DenseUrbanConfig,
) -> Result<Scenario, ConfigError> {
    dense_world(sessions, kind, config, dense, Vec::new(), "dense_urban")
}

/// Builds the dense-spectrum city-block world shared by [`dense_urban`] and
/// [`dense_duty_cycle`].
fn dense_world(
    sessions: usize,
    kind: PolicyKind,
    config: FleetConfig,
    dense: DenseUrbanConfig,
    events: Vec<BandwidthEvent>,
    name: &'static str,
) -> Result<Scenario, ConfigError> {
    assert!(sessions > 0, "a scenario needs at least one session");
    assert!(
        dense.networks_per_area >= 2,
        "a bandit needs at least two arms"
    );
    assert!(
        dense.devices_per_area > 0,
        "a block needs at least one device"
    );
    let per_area = dense.devices_per_area;
    let k = dense.networks_per_area;
    let areas = sessions.div_ceil(per_area);
    let mut networks = Vec::with_capacity(areas * k);
    let mut service_areas = Vec::with_capacity(areas);
    let mut profiles = Vec::with_capacity(sessions);
    let mut fleet = FleetEngine::new(config);

    for area in 0..areas {
        let specs = dense_area_networks(area, k);
        let ids: Vec<NetworkId> = specs.iter().map(|n| n.id).collect();
        let rates: Vec<(NetworkId, f64)> = specs.iter().map(|n| (n.id, n.bandwidth_mbps)).collect();
        service_areas.push(ServiceArea {
            id: AreaId(area as u32),
            name: format!("block {area}"),
            networks: ids.clone(),
        });
        networks.extend(specs);

        let population = (sessions - area * per_area).min(per_area);
        let mut factory = PolicyFactory::new(rates)?.with_sampler(dense.sampler);
        fleet.add_fleet(&mut factory, kind, population)?;
        for device in 0..population {
            profiles.push(DeviceProfile::new(
                (area * per_area + device) as u32,
                AreaId(area as u32),
                ids.clone(),
            ));
        }
    }

    let seed = fleet.config().environment_seed();
    let environment = CongestionEnvironment::new(
        networks,
        Topology::new(service_areas),
        events,
        profiles,
        SimulationConfig::default(),
        seed,
    );
    Ok(Scenario {
        name,
        environment: Box::new(environment),
        fleet,
    })
}

/// World 8 — **duty-cycled dense spectrum**: the [`dense_urban`] city blocks
/// wrapped in a [`DutyCycleEnvironment`]. Sessions wake on the
/// [`DutyCycleConfig::cadences`] round-robin, and every
/// [`DutyCycleConfig::burst_period`] slots each block's macro cell collapses
/// to 2 Mbps, recovering half a period later. Between a session's wakes its
/// weight table is untouched — this is the static-weight phase
/// [`SamplerStrategy::Alias`](smartexp3_core::SamplerStrategy::Alias)
/// amortises its table freeze across, which is why this world is the
/// headline benchmark for the alias sampler.
///
/// The policies' sampler comes from `dense.sampler` (one world, one knob);
/// [`DutyCycleConfig::sampler`] is ignored here — it governs only the
/// plain [`duty_cycle`] world.
///
/// # Errors
///
/// Propagates [`ConfigError`] from policy construction.
///
/// # Panics
///
/// Panics when `sessions == 0`, `networks_per_area < 2` or
/// `devices_per_area == 0`.
pub fn dense_duty_cycle(
    sessions: usize,
    kind: PolicyKind,
    config: FleetConfig,
    dense: DenseUrbanConfig,
    duty: DutyCycleConfig,
) -> Result<Scenario, ConfigError> {
    let areas = sessions.div_ceil(dense.devices_per_area.max(1));
    let mut events = Vec::new();
    if duty.burst_period > 0 {
        let half = (duty.burst_period / 2).max(1);
        for area in 0..areas {
            let macro_cell = NetworkId((area * dense.networks_per_area) as u32);
            let mut at = duty.burst_period;
            while at <= duty.horizon_slots {
                events.push(BandwidthEvent::new(at, macro_cell, 2.0));
                events.push(BandwidthEvent::new(at + half, macro_cell, 22.0));
                at += duty.burst_period;
            }
        }
    }
    let mut scenario = dense_world(sessions, kind, config, dense, events, "dense_duty_cycle")?;
    scenario.environment = Box::new(DutyCycleEnvironment::new(
        scenario.environment,
        duty.cadences,
    ));
    Ok(scenario)
}

/// World 3 — **area mobility**: `sessions` devices partitioned into
/// replicated Figure-1 maps of [`DEVICES_PER_MAP`]; in every map, 8 devices
/// walk food court → study area (at `first_move`) → bus stop (at
/// `second_move`) while 12 stay put (the paper's setting 3 at fleet scale).
///
/// # Errors
///
/// Propagates [`ConfigError`] from policy construction.
pub fn area_mobility(
    sessions: usize,
    kind: PolicyKind,
    config: FleetConfig,
    first_move: usize,
    second_move: usize,
) -> Result<Scenario, ConfigError> {
    assert!(sessions > 0, "a scenario needs at least one session");
    let maps = sessions.div_ceil(DEVICES_PER_MAP);
    let mut networks = Vec::with_capacity(maps * 5);
    let mut service_areas = Vec::with_capacity(maps * 3);
    let mut profiles = Vec::with_capacity(sessions);
    let mut fleet = FleetEngine::new(config);

    for map in 0..maps {
        let base = (map * 5) as u32;
        // The Figure-1 network set: cellular everywhere, four WLANs.
        let specs = vec![
            NetworkSpec::cellular(base, 16.0),
            NetworkSpec::wifi(base + 1, 14.0),
            NetworkSpec::wifi(base + 2, 22.0),
            NetworkSpec::wifi(base + 3, 7.0),
            NetworkSpec::wifi(base + 4, 4.0),
        ];
        let id = |offset: u32| NetworkId(base + offset);
        let area_id = |offset: u32| AreaId((map * 3) as u32 + offset);
        let area_sets: [(AreaId, &str, Vec<NetworkId>); 3] = [
            (area_id(0), "food court", vec![id(0), id(1), id(2)]),
            (area_id(1), "study area", vec![id(0), id(2), id(3)]),
            (area_id(2), "bus stop", vec![id(0), id(4)]),
        ];
        for (area, label, ids) in &area_sets {
            service_areas.push(ServiceArea {
                id: *area,
                name: format!("map {map} {label}"),
                networks: ids.clone(),
            });
        }

        // 8 walkers + 2 food court, 5 study area, 5 bus stop — truncated in
        // the final partial map.
        let population = (sessions - map * DEVICES_PER_MAP).min(DEVICES_PER_MAP);
        let mut factories: Vec<PolicyFactory> = area_sets
            .iter()
            .map(|(_, _, ids)| {
                PolicyFactory::new(
                    specs
                        .iter()
                        .filter(|n| ids.contains(&n.id))
                        .map(|n| (n.id, n.bandwidth_mbps))
                        .collect(),
                )
            })
            .collect::<Result<_, _>>()?;
        for device in 0..population {
            let session = map * DEVICES_PER_MAP + device;
            let group = match device {
                0..=7 => 0,
                8..=9 => 1,
                10..=14 => 2,
                _ => 3,
            };
            let start_area = match group {
                0 | 1 => 0,
                2 => 1,
                _ => 2,
            };
            let mut profile = DeviceProfile::new(
                session as u32,
                area_sets[start_area].0,
                area_sets[start_area].2.clone(),
            );
            if group == 0 {
                profile = profile
                    .moving_to(first_move, area_sets[1].0)
                    .moving_to(second_move, area_sets[2].0);
            }
            profiles.push(profile);
            fleet.add_fleet(&mut factories[start_area], kind, 1)?;
        }
        networks.extend(specs);
    }

    let seed = fleet.config().environment_seed();
    let environment = CongestionEnvironment::new(
        networks,
        Topology::new(service_areas),
        Vec::new(),
        profiles,
        SimulationConfig::default(),
        seed,
    );
    Ok(Scenario {
        name: "area_mobility",
        environment: Box::new(environment),
        fleet,
    })
}

/// World 4 — **trace-driven**: every session replays one of the four §VI-B
/// synthetic WiFi/cellular trace pairs (`trace_slots` slots each, generated
/// from the fleet's root seed), phase-shifted by session index.
///
/// # Errors
///
/// Propagates [`ConfigError`] from policy construction.
pub fn trace_driven(
    sessions: usize,
    kind: PolicyKind,
    config: FleetConfig,
    trace_slots: usize,
) -> Result<Scenario, ConfigError> {
    assert!(sessions > 0, "a scenario needs at least one session");
    let pairs: Vec<_> = (1..=4)
        .map(|index| paper_trace_pair(index, trace_slots, config.root_seed ^ index as u64))
        .collect();
    let environment = TraceEnvironment::new(pairs, sessions, config.environment_seed());
    let mut fleet = FleetEngine::new(config);
    let mut factory = PolicyFactory::new(vec![(tracegen::WIFI, 1.0), (tracegen::CELLULAR, 1.0)])?;
    fleet.add_fleet(&mut factory, kind, sessions)?;
    Ok(Scenario {
        name: "trace_driven",
        environment: Box::new(environment),
        fleet,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_share_partitions_sessions_into_areas() {
        let mut scenario =
            equal_share(250, PolicyKind::SmartExp3, FleetConfig::with_root_seed(7)).unwrap();
        assert_eq!(scenario.sessions(), 250);
        assert_eq!(scenario.environment.sessions(), 250);
        scenario.run(5);
        let metrics = scenario.fleet.metrics();
        assert_eq!(metrics.decisions, 5 * 250);
        assert!(metrics.kind(PolicyKind::SmartExp3).unwrap().mean_gain() > 0.0);
    }

    #[test]
    fn dynamic_bandwidth_schedules_two_events_per_area() {
        let scenario = dynamic_bandwidth(
            150,
            PolicyKind::Greedy,
            FleetConfig::with_root_seed(3),
            10,
            20,
        )
        .unwrap();
        assert_eq!(scenario.sessions(), 150);
        assert_eq!(scenario.name, "dynamic_bandwidth");
    }

    #[test]
    fn area_mobility_builds_partial_final_maps() {
        let mut scenario = area_mobility(
            30,
            PolicyKind::SmartExp3,
            FleetConfig::with_root_seed(5),
            4,
            8,
        )
        .unwrap();
        assert_eq!(scenario.sessions(), 30);
        scenario.run(12);
        assert_eq!(scenario.fleet.metrics().decisions, 12 * 30);
    }

    #[test]
    fn cooperative_sessions_hear_their_area_gossip() {
        let mut scenario = cooperative(
            120,
            PolicyKind::SmartExp3,
            FleetConfig::with_root_seed(13),
            GossipConfig::broadcast(),
        )
        .unwrap();
        scenario.run(20);
        let metrics = scenario.fleet.metrics();
        assert_eq!(metrics.decisions, 20 * 120);
        let smart = metrics.kind(PolicyKind::SmartExp3).unwrap();
        assert!(
            smart.policy.shared_observations > 0,
            "broadcast gossip must reach the policies"
        );
        // An isolated fleet on the same world hears nothing.
        let mut isolated =
            equal_share(120, PolicyKind::SmartExp3, FleetConfig::with_root_seed(13)).unwrap();
        isolated.run(20);
        let isolated_metrics = isolated.fleet.metrics();
        assert_eq!(
            isolated_metrics
                .kind(PolicyKind::SmartExp3)
                .unwrap()
                .policy
                .shared_observations,
            0
        );
    }

    #[test]
    fn dense_urban_builds_sorted_large_catalogs() {
        let dense = DenseUrbanConfig {
            networks_per_area: 64,
            devices_per_area: 8,
            ..DenseUrbanConfig::default()
        };
        let mut scenario =
            dense_urban(20, PolicyKind::Exp3, FleetConfig::with_root_seed(17), dense).unwrap();
        assert_eq!(scenario.sessions(), 20);
        assert_eq!(scenario.name, "dense_urban");
        scenario.run(4);
        assert_eq!(scenario.fleet.metrics().decisions, 4 * 20);
        assert!(scenario.fleet.metrics().kind(PolicyKind::Exp3).is_some());
    }

    #[test]
    fn duty_cycle_world_steps_event_driven() {
        let mut scenario = duty_cycle(
            120,
            PolicyKind::SmartExp3,
            FleetConfig::with_root_seed(23),
            DutyCycleConfig {
                cadences: vec![1, 2, 4],
                burst_period: 8,
                horizon_slots: 32,
                ..DutyCycleConfig::default()
            },
        )
        .unwrap();
        assert_eq!(scenario.name, "duty_cycle");
        assert_eq!(scenario.sessions(), 120);
        // Bursts materialise as env events even between wakes.
        assert_eq!(scenario.environment.next_env_event(0), Some(8));
        scenario.fleet.run_until(scenario.environment.as_mut(), 16);
        assert_eq!(scenario.fleet.slot(), 16);
        // 40 cadence-1 sessions decide 16×, 40 cadence-2 decide 8×, 40
        // cadence-4 decide 4×.
        assert_eq!(
            scenario.fleet.metrics().decisions,
            40 * 16 + 40 * 8 + 40 * 4
        );
        assert!(scenario.fleet.last_wake_latency().is_some());
    }

    #[test]
    fn dense_duty_cycle_world_steps_event_driven_with_alias() {
        let dense = DenseUrbanConfig {
            networks_per_area: 64,
            devices_per_area: 10,
            sampler: SamplerStrategy::Alias,
        };
        let mut scenario = dense_duty_cycle(
            30,
            PolicyKind::Exp3,
            FleetConfig::with_root_seed(29),
            dense,
            DutyCycleConfig {
                cadences: vec![2, 4],
                burst_period: 8,
                horizon_slots: 32,
                ..DutyCycleConfig::default()
            },
        )
        .unwrap();
        assert_eq!(scenario.name, "dense_duty_cycle");
        assert_eq!(scenario.sessions(), 30);
        // Macro-cell bursts materialise as env events even between wakes.
        assert_eq!(scenario.environment.next_env_event(0), Some(8));
        scenario.fleet.run_until(scenario.environment.as_mut(), 16);
        assert_eq!(scenario.fleet.slot(), 16);
        // 15 cadence-2 sessions decide 8×, 15 cadence-4 decide 4×.
        assert_eq!(scenario.fleet.metrics().decisions, 15 * 8 + 15 * 4);
        // The alias path actually ran: tables were frozen at least once.
        let metrics = scenario.fleet.metrics();
        let exp3 = metrics.kind(PolicyKind::Exp3).unwrap();
        assert!(exp3.policy.sampler_rebuilds > 0);
    }

    #[test]
    fn trace_driven_feeds_every_session() {
        let mut scenario = trace_driven(
            40,
            PolicyKind::SmartExp3,
            FleetConfig::with_root_seed(11),
            60,
        )
        .unwrap();
        scenario.run(20);
        assert_eq!(scenario.fleet.metrics().decisions, 20 * 40);
    }
}
