//! The Co-Bandit cooperative-feedback layer: a wrapper [`Environment`] that
//! lets sessions gossip their observed rates between slots.
//!
//! *Cooperation Speeds Surfing: Use Co-Bandit!* (Appavoo, Gilbert, Tan 2019)
//! shows that devices which share what they observed converge markedly
//! faster than isolated bandits. [`CooperativeEnvironment`] retrofits that
//! onto **any** existing world: it delegates all world logic (visibility,
//! activity, joint-choice feedback) to the wrapped environment and, during
//! the sequential feedback phase, folds each session's observed rate into
//! its **neighbourhood digest** — a per-network, staleness-decayed
//! [`SharedFeedback`] the whole neighbourhood reads back during the observe
//! phase.
//!
//! Two gossip modes ([`GossipMode`]):
//!
//! * **broadcast** — every graded session's report enters its
//!   neighbourhood's digest each slot (the paper's reliable-broadcast
//!   baseline);
//! * **probabilistic push** — each session gossips with probability `p`,
//!   drawn from its **neighbourhood's own RNG stream** (Co-Bandit's
//!   epidemic dissemination). Per-neighbourhood streams, advanced in
//!   canonical session order, keep sharded replay bit-identical at any
//!   thread count — and are exactly what lets the gossip fold ride the
//!   wrapped environment's **feedback partitions**: when every
//!   neighbourhood lies within one partition, the wrapper forwards the
//!   partitions and folds each partition's gossip in a second parallel
//!   wave, so a cooperative world loses none of the sharded-feedback
//!   speedup.
//!
//! Checkpointing composes: [`Environment::state`] bundles the wrapped
//! environment's state with every digest and every gossip RNG stream, so a
//! mid-run snapshot of a cooperative scenario restores bit-identically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use smartexp3_core::{
    EnvStateError, Environment, NetworkId, Observation, PartitionExecutor, PartitionJob,
    SessionRange, SessionView, SharedFeedback, SlotIndex,
};

/// How reports propagate through a neighbourhood each slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GossipMode {
    /// Every graded session's observed rate enters its neighbourhood digest.
    Broadcast,
    /// Each graded session pushes its report with this probability, drawn
    /// from the neighbourhood's own RNG stream (clamped to `[0, 1]`).
    ProbabilisticPush(f64),
}

/// Configuration of the gossip layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GossipConfig {
    /// Dissemination mode.
    pub mode: GossipMode,
    /// Fraction of a digest entry's weight retained per slot (staleness
    /// decay; see [`SharedFeedback::new`]).
    pub retention: f64,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            mode: GossipMode::Broadcast,
            retention: 0.5,
        }
    }
}

impl GossipConfig {
    /// Broadcast gossip with the default staleness decay.
    #[must_use]
    pub fn broadcast() -> Self {
        GossipConfig::default()
    }

    /// Probabilistic-push gossip (each session reports with probability
    /// `probability`) with the default staleness decay.
    #[must_use]
    pub fn push(probability: f64) -> Self {
        GossipConfig {
            mode: GossipMode::ProbabilisticPush(probability.clamp(0.0, 1.0)),
            ..GossipConfig::default()
        }
    }

    /// Overrides the per-slot digest retention factor.
    #[must_use]
    pub fn with_retention(mut self, retention: f64) -> Self {
        self.retention = retention;
        self
    }
}

use smartexp3_core::splitmix64;

/// Derives neighbourhood `area`'s gossip RNG stream from the gossip seed.
/// The extra constant keeps these streams distinct from the wrapped
/// environment's RNG (seeded with the raw environment seed) and from every
/// per-session stream.
fn gossip_rng(seed: u64, area: usize) -> StdRng {
    let mixed = splitmix64(seed ^ 0x5851_F42D_4C95_7F2D)
        ^ (area as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93);
    StdRng::seed_from_u64(splitmix64(mixed))
}

/// Serialized dynamic state (see [`Environment::state`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CooperativeEnvState {
    inner: String,
    digests: Vec<SharedFeedback>,
    rngs: Vec<[u64; 4]>,
}

/// How the gossip phase rides the wrapped environment's feedback
/// partitions: per inner partition, its session range and the contiguous
/// neighbourhood-id range whose digests and RNG streams its gossip job owns.
struct GossipPlan {
    /// The inner partitions' session ranges, cached at construction (the
    /// layout is fixed for an environment's lifetime).
    ranges: Vec<SessionRange>,
    /// Per partition: `[start, end)` over neighbourhood ids.
    neighbourhoods: Vec<(usize, usize)>,
}

/// Maps every neighbourhood to the partition of its sessions and checks the
/// layout is splittable: no neighbourhood spans two partitions, and
/// neighbourhood ids group contiguously in partition order (empty
/// neighbourhoods attach to the earliest open group). Returns `None` when
/// the gossip topology does not align with the partitions — the wrapper
/// then keeps the sequential path.
fn build_gossip_plan(
    membership: &[usize],
    neighbourhoods: usize,
    ranges: &[SessionRange],
) -> Option<GossipPlan> {
    if !SessionRange::tile(ranges, membership.len()) {
        return None;
    }
    let mut owner: Vec<Option<usize>> = vec![None; neighbourhoods];
    for (partition, range) in ranges.iter().enumerate() {
        for session in range.start..range.end {
            match owner[membership[session]] {
                None => owner[membership[session]] = Some(partition),
                Some(existing) if existing == partition => {}
                Some(_) => return None,
            }
        }
    }
    let mut plan = Vec::with_capacity(ranges.len());
    let mut cursor = 0usize;
    for partition in 0..ranges.len() {
        let start = cursor;
        while cursor < neighbourhoods && owner[cursor].is_none_or(|p| p == partition) {
            cursor += 1;
        }
        plan.push((start, cursor));
    }
    (cursor == neighbourhoods).then_some(GossipPlan {
        ranges: ranges.to_vec(),
        neighbourhoods: plan,
    })
}

/// A cooperative-feedback wrapper around any [`Environment`]. See the
/// [module documentation](self).
pub struct CooperativeEnvironment {
    inner: Box<dyn Environment>,
    config: GossipConfig,
    /// `membership[i]` is the neighbourhood session `i` gossips in.
    membership: Vec<usize>,
    /// One digest per neighbourhood.
    digests: Vec<SharedFeedback>,
    /// One gossip RNG stream per neighbourhood (advanced only by
    /// probabilistic-push draws, in canonical session order).
    rngs: Vec<StdRng>,
    /// `Some` when the gossip topology aligns with the wrapped
    /// environment's feedback partitions — the wrapper then forwards the
    /// partitions and runs the gossip fold as a second partitioned wave.
    plan: Option<GossipPlan>,
}

impl CooperativeEnvironment {
    /// Wraps `inner` with a gossip layer.
    ///
    /// `membership` maps every session to its gossip neighbourhood (dense
    /// indices from 0; typically the session's service area). `gossip_seed`
    /// seeds the per-neighbourhood RNG streams — scenario builders pass the
    /// fleet's environment seed, and the wrapper decorrelates internally.
    ///
    /// # Panics
    ///
    /// Panics when `membership.len() != inner.sessions()` — the gossip layer
    /// and the world must describe the same session set.
    #[must_use]
    pub fn new(
        inner: Box<dyn Environment>,
        membership: Vec<usize>,
        config: GossipConfig,
        gossip_seed: u64,
    ) -> Self {
        assert_eq!(
            membership.len(),
            inner.sessions(),
            "gossip membership describes {} sessions, environment hosts {}",
            membership.len(),
            inner.sessions()
        );
        // Sanitise once here rather than per draw: `GossipConfig`'s fields
        // are public, so a push probability built around the `push()`
        // constructor's clamp (1.5, NaN, …) would otherwise panic inside
        // `gen_bool` on the first graded slot. Non-finite means "never".
        let config = GossipConfig {
            mode: match config.mode {
                GossipMode::ProbabilisticPush(p) => {
                    GossipMode::ProbabilisticPush(if p.is_finite() {
                        p.clamp(0.0, 1.0)
                    } else {
                        0.0
                    })
                }
                GossipMode::Broadcast => GossipMode::Broadcast,
            },
            ..config
        };
        let neighbourhoods = membership.iter().map(|&m| m + 1).max().unwrap_or(0);
        let plan = inner
            .feedback_partitions()
            .and_then(|ranges| build_gossip_plan(&membership, neighbourhoods, ranges));
        CooperativeEnvironment {
            inner,
            config,
            membership,
            digests: (0..neighbourhoods)
                .map(|_| SharedFeedback::new(config.retention))
                .collect(),
            rngs: (0..neighbourhoods)
                .map(|area| gossip_rng(gossip_seed, area))
                .collect(),
            plan,
        }
    }

    /// The gossip configuration.
    #[must_use]
    pub fn config(&self) -> &GossipConfig {
        &self.config
    }

    /// Number of gossip neighbourhoods.
    #[must_use]
    pub fn neighbourhoods(&self) -> usize {
        self.digests.len()
    }

    /// The current digest of neighbourhood `area`.
    #[must_use]
    pub fn digest(&self, area: usize) -> &SharedFeedback {
        &self.digests[area]
    }

    /// Read access to the wrapped environment.
    #[must_use]
    pub fn inner(&self) -> &dyn Environment {
        self.inner.as_ref()
    }
}

impl Environment for CooperativeEnvironment {
    fn sessions(&self) -> usize {
        self.inner.sessions()
    }

    fn begin_slot(&mut self, slot: SlotIndex) {
        self.inner.begin_slot(slot);
    }

    fn begin_slot_partitioned(&mut self, slot: SlotIndex, executor: &dyn PartitionExecutor) {
        // The gossip phase never runs at slot begin, so the wrapped world's
        // sharded refresh is safe regardless of the neighbourhood plan.
        self.inner.begin_slot_partitioned(slot, executor);
    }

    fn session_view(&self, session: usize, slot: SlotIndex) -> SessionView<'_> {
        self.inner.session_view(session, slot)
    }

    fn feedback(
        &mut self,
        slot: SlotIndex,
        choices: &[Option<NetworkId>],
        out: &mut [Option<Observation>],
    ) {
        self.inner.feedback(slot, choices, out);
        // Gossip phase: age every digest one slot, then fold this slot's
        // reports in. Sessions are visited in canonical order and each push
        // draw comes from the session's *neighbourhood* stream, so the
        // trajectory is independent of how the driver sharded the fleet.
        for digest in &mut self.digests {
            digest.decay();
        }
        for (index, observation) in out.iter().enumerate() {
            let Some(observation) = observation else {
                continue;
            };
            let area = self.membership[index];
            let push = match self.config.mode {
                GossipMode::Broadcast => true,
                GossipMode::ProbabilisticPush(probability) => self.rngs[area].gen_bool(probability),
            };
            if push {
                self.digests[area].record(observation.network, observation.scaled_gain);
            }
        }
    }

    fn feedback_partitions(&self) -> Option<&[SessionRange]> {
        // Forward the wrapped environment's partitions only when the gossip
        // topology splits along them; otherwise the feedback phase must stay
        // sequential (one neighbourhood's stream would be shared otherwise).
        self.plan.as_ref()?;
        self.inner.feedback_partitions()
    }

    fn feedback_partitioned(
        &mut self,
        slot: SlotIndex,
        choices: &[Option<NetworkId>],
        out: &mut [Option<Observation>],
        executor: &dyn PartitionExecutor,
    ) {
        let Some(plan) = &self.plan else {
            self.feedback(slot, choices, out);
            return;
        };
        // Wave 1: the wrapped world grades its partitions.
        self.inner
            .feedback_partitioned(slot, choices, out, executor);
        // Wave 2: the gossip fold, one job per partition — each decays and
        // refills its own neighbourhoods' digests, drawing push decisions
        // from the neighbourhoods' streams in canonical session order
        // (bit-identical to the sequential fold in `feedback`).
        let out_view: &[Option<Observation>] = out;
        let membership: &[usize] = &self.membership;
        let mode = self.config.mode;
        let mut jobs: Vec<PartitionJob<'_>> = Vec::with_capacity(plan.ranges.len());
        let mut digests_rest: &mut [SharedFeedback] = &mut self.digests;
        let mut rngs_rest: &mut [StdRng] = &mut self.rngs;
        for (range, &(first, last)) in plan.ranges.iter().zip(&plan.neighbourhoods) {
            let count = last - first;
            let (job_digests, rest) = digests_rest.split_at_mut(count);
            digests_rest = rest;
            let (job_rngs, rest) = rngs_rest.split_at_mut(count);
            rngs_rest = rest;
            let range = *range;
            jobs.push(Box::new(move || {
                for digest in job_digests.iter_mut() {
                    digest.decay();
                }
                for session in range.start..range.end {
                    let Some(observation) = &out_view[session] else {
                        continue;
                    };
                    let local = membership[session] - first;
                    let push = match mode {
                        GossipMode::Broadcast => true,
                        GossipMode::ProbabilisticPush(probability) => {
                            job_rngs[local].gen_bool(probability)
                        }
                    };
                    if push {
                        job_digests[local].record(observation.network, observation.scaled_gain);
                    }
                }
            }));
        }
        executor.run(jobs);
    }

    fn shares_feedback(&self) -> bool {
        true
    }

    fn shared_feedback_into(&self, session: usize, out: &mut SharedFeedback) -> bool {
        let digest = &self.digests[self.membership[session]];
        if digest.is_empty() {
            return false;
        }
        out.copy_from(digest);
        true
    }

    fn wants_top_choices(&self) -> bool {
        self.inner.wants_top_choices()
    }

    fn set_telemetry(&mut self, enabled: bool) -> bool {
        // Gossip is pure information sharing; the graded quantities live in
        // the wrapped world, so telemetry is the inner environment's.
        self.inner.set_telemetry(enabled)
    }

    fn telemetry(&self) -> Option<&smartexp3_core::SlotMetrics> {
        self.inner.telemetry()
    }

    fn end_slot(
        &mut self,
        slot: SlotIndex,
        choices: &[Option<NetworkId>],
        tops: &[Option<(NetworkId, f64)>],
    ) {
        self.inner.end_slot(slot, choices, tops);
    }

    fn state(&self) -> Option<String> {
        let inner = self.inner.state()?;
        let state = CooperativeEnvState {
            inner,
            digests: self.digests.clone(),
            rngs: self.rngs.iter().map(StdRng::state).collect(),
        };
        serde_json::to_string(&state).ok()
    }

    fn restore(&mut self, state: &str) -> Result<(), EnvStateError> {
        let state: CooperativeEnvState = serde_json::from_str(state)
            .map_err(|error| EnvStateError(format!("unparseable cooperative state: {error}")))?;
        if state.digests.len() != self.digests.len() || state.rngs.len() != self.rngs.len() {
            return Err(EnvStateError(format!(
                "state describes {} neighbourhoods, environment hosts {}",
                state.digests.len(),
                self.digests.len()
            )));
        }
        self.inner.restore(&state.inner)?;
        self.digests = state.digests;
        self.rngs = state.rngs.into_iter().map(StdRng::from_state).collect();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-network world: session `i` always gains `0.2 + 0.1·(i % 2)` on
    /// whatever it chose.
    struct TwoNetworks {
        sessions: usize,
    }

    impl Environment for TwoNetworks {
        fn sessions(&self) -> usize {
            self.sessions
        }
        fn begin_slot(&mut self, _slot: SlotIndex) {}
        fn session_view(&self, session: usize, _slot: SlotIndex) -> SessionView<'_> {
            // Odd sessions sit odd slots out... keep everyone active here;
            // inactivity is exercised by the engine-level tests.
            let _ = session;
            SessionView::active_static()
        }
        fn feedback(
            &mut self,
            slot: SlotIndex,
            choices: &[Option<NetworkId>],
            out: &mut [Option<Observation>],
        ) {
            for (index, choice) in choices.iter().enumerate() {
                out[index] = choice.map(|network| {
                    let gain = 0.2 + 0.1 * (index % 2) as f64;
                    Observation::bandit(slot, network, gain * 22.0, gain)
                });
            }
        }
        fn state(&self) -> Option<String> {
            Some("{}".to_string())
        }
        fn restore(&mut self, _state: &str) -> Result<(), EnvStateError> {
            Ok(())
        }
    }

    fn wrap(sessions: usize, config: GossipConfig) -> CooperativeEnvironment {
        let membership = (0..sessions).map(|i| i / 2).collect();
        CooperativeEnvironment::new(Box::new(TwoNetworks { sessions }), membership, config, 9)
    }

    #[test]
    fn broadcast_gossip_fills_neighbourhood_digests() {
        let mut env = wrap(4, GossipConfig::broadcast());
        assert_eq!(env.neighbourhoods(), 2);
        assert!(env.shares_feedback());
        let choices = vec![
            Some(NetworkId(0)),
            Some(NetworkId(1)),
            Some(NetworkId(0)),
            None,
        ];
        let mut out = vec![None, None, None, None];
        env.begin_slot(0);
        env.feedback(0, &choices, &mut out);
        // Neighbourhood 0 heard both its sessions; neighbourhood 1 only the
        // active one.
        let mut digest = SharedFeedback::default();
        assert!(env.shared_feedback_into(0, &mut digest));
        assert_eq!(digest.len(), 2);
        assert!(env.shared_feedback_into(3, &mut digest));
        assert_eq!(digest.len(), 1);
        assert_eq!(
            digest.rate_of(NetworkId(0)).map(|r| r.weight),
            Some(1.0),
            "session 3 sat out, only session 2 reported"
        );
    }

    #[test]
    fn push_mode_draws_from_per_neighbourhood_streams() {
        // probability 0 never gossips, probability 1 always does; both are
        // deterministic regardless of the RNG stream state.
        let choices = vec![Some(NetworkId(0)); 4];
        let mut out = vec![None; 4];
        let mut never = wrap(4, GossipConfig::push(0.0));
        never.begin_slot(0);
        never.feedback(0, &choices, &mut out);
        let mut digest = SharedFeedback::default();
        assert!(!never.shared_feedback_into(0, &mut digest));

        let mut always = wrap(4, GossipConfig::push(1.0));
        always.begin_slot(0);
        always.feedback(0, &choices, &mut out);
        assert!(always.shared_feedback_into(0, &mut digest));
        assert_eq!(digest.rate_of(NetworkId(0)).unwrap().weight, 2.0);
    }

    #[test]
    fn out_of_range_push_probabilities_are_sanitised() {
        // `GossipConfig`'s fields are public, so a probability that bypassed
        // the `push()` constructor's clamp must not panic in `gen_bool`.
        let choices = vec![Some(NetworkId(0)); 4];
        let mut out = vec![None; 4];
        let mut digest = SharedFeedback::default();
        let mut over = wrap(
            4,
            GossipConfig {
                mode: GossipMode::ProbabilisticPush(1.5),
                retention: 0.5,
            },
        );
        over.begin_slot(0);
        over.feedback(0, &choices, &mut out);
        assert!(over.shared_feedback_into(0, &mut digest), "clamped to 1");
        let mut nan = wrap(
            4,
            GossipConfig {
                mode: GossipMode::ProbabilisticPush(f64::NAN),
                retention: 0.5,
            },
        );
        nan.begin_slot(0);
        nan.feedback(0, &choices, &mut out);
        assert!(!nan.shared_feedback_into(0, &mut digest), "NaN means never");
    }

    #[test]
    fn digests_decay_between_slots() {
        let mut env = wrap(2, GossipConfig::broadcast().with_retention(0.0));
        let mut out = vec![None, None];
        env.begin_slot(0);
        env.feedback(0, &[Some(NetworkId(1)), Some(NetworkId(1))], &mut out);
        assert_eq!(env.digest(0).rate_of(NetworkId(1)).unwrap().weight, 2.0);
        // Next slot: nobody reports, retention 0 forgets everything.
        env.begin_slot(1);
        env.feedback(1, &[None, None], &mut out);
        assert!(env.digest(0).is_empty());
    }

    /// A partitioned inner world: every session always gains `0.5` on its
    /// choice, sessions split into fixed-size partitions.
    struct PartitionedInner {
        sessions: usize,
        ranges: Vec<SessionRange>,
    }

    impl PartitionedInner {
        fn new(sessions: usize, per_partition: usize) -> Self {
            let ranges = (0..sessions.div_ceil(per_partition))
                .map(|p| {
                    SessionRange::new(p * per_partition, ((p + 1) * per_partition).min(sessions))
                })
                .collect();
            PartitionedInner { sessions, ranges }
        }
    }

    impl Environment for PartitionedInner {
        fn sessions(&self) -> usize {
            self.sessions
        }
        fn begin_slot(&mut self, _slot: SlotIndex) {}
        fn session_view(&self, _session: usize, _slot: SlotIndex) -> SessionView<'_> {
            SessionView::active_static()
        }
        fn feedback(
            &mut self,
            slot: SlotIndex,
            choices: &[Option<NetworkId>],
            out: &mut [Option<Observation>],
        ) {
            for (index, choice) in choices.iter().enumerate() {
                out[index] = choice.map(|network| Observation::bandit(slot, network, 11.0, 0.5));
            }
        }
        fn feedback_partitions(&self) -> Option<&[SessionRange]> {
            Some(&self.ranges)
        }
        fn feedback_partitioned(
            &mut self,
            slot: SlotIndex,
            choices: &[Option<NetworkId>],
            out: &mut [Option<Observation>],
            _executor: &dyn PartitionExecutor,
        ) {
            self.feedback(slot, choices, out);
        }
        fn state(&self) -> Option<String> {
            Some("{}".to_string())
        }
        fn restore(&mut self, _state: &str) -> Result<(), EnvStateError> {
            Ok(())
        }
    }

    /// Runs partition jobs in reverse order — any shared gossip stream or
    /// digest leak across partitions would diverge from the sequential fold.
    struct ReverseExecutor;

    impl PartitionExecutor for ReverseExecutor {
        fn run(&self, jobs: Vec<PartitionJob<'_>>) {
            for job in jobs.into_iter().rev() {
                job();
            }
        }
    }

    #[test]
    fn aligned_neighbourhoods_forward_the_inner_partitions() {
        // 8 sessions, inner partitions of 4, neighbourhoods of 2: every
        // neighbourhood lies inside one partition, so the plan builds.
        let membership = (0..8).map(|i| i / 2).collect();
        let env = CooperativeEnvironment::new(
            Box::new(PartitionedInner::new(8, 4)),
            membership,
            GossipConfig::push(0.5),
            7,
        );
        let ranges = env.feedback_partitions().expect("aligned gossip splits");
        assert_eq!(ranges.len(), 2);
        let plan = env.plan.as_ref().unwrap();
        assert_eq!(plan.neighbourhoods, vec![(0, 2), (2, 4)]);

        // A neighbourhood spanning two partitions must refuse to split.
        let spanning = vec![0, 0, 0, 1, 1, 1, 2, 2];
        let env = CooperativeEnvironment::new(
            Box::new(PartitionedInner::new(8, 4)),
            spanning,
            GossipConfig::push(0.5),
            7,
        );
        assert!(env.plan.is_none());
        assert!(env.feedback_partitions().is_none());

        // An unpartitioned inner world never advertises partitions.
        let membership = (0..4).map(|i| i / 2).collect();
        let env = CooperativeEnvironment::new(
            Box::new(TwoNetworks { sessions: 4 }),
            membership,
            GossipConfig::push(0.5),
            7,
        );
        assert!(env.feedback_partitions().is_none());
    }

    #[test]
    fn partitioned_gossip_matches_the_sequential_fold_bit_for_bit() {
        let build = || {
            let membership = (0..12).map(|i| i / 3).collect();
            CooperativeEnvironment::new(
                Box::new(PartitionedInner::new(12, 6)),
                membership,
                GossipConfig::push(0.4),
                31,
            )
        };
        let mut sequential = build();
        let mut partitioned = build();
        let mut out_a = vec![None; 12];
        let mut out_b = vec![None; 12];
        for slot in 0..30 {
            let choices: Vec<Option<NetworkId>> = (0..12)
                .map(|i| ((i + slot) % 4 != 3).then(|| NetworkId(((i + slot) % 2) as u32)))
                .collect();
            sequential.feedback(slot, &choices, &mut out_a);
            partitioned.feedback_partitioned(slot, &choices, &mut out_b, &ReverseExecutor);
            assert_eq!(sequential.digests, partitioned.digests, "slot {slot}");
        }
        // The gossip streams advanced identically too.
        assert_eq!(sequential.state(), partitioned.state());
    }

    #[test]
    fn state_round_trips_digests_and_gossip_rngs() {
        let mut env = wrap(4, GossipConfig::push(0.5));
        let mut out = vec![None; 4];
        for slot in 0..5 {
            env.begin_slot(slot);
            env.feedback(slot, &[Some(NetworkId(slot as u32 % 2)); 4], &mut out);
        }
        let state = env.state().expect("cooperative state serializes");

        let mut restored = wrap(4, GossipConfig::push(0.5));
        restored.restore(&state).expect("state restores");
        assert_eq!(restored.digests, env.digests);
        // The gossip streams resume exactly: both copies must make identical
        // push decisions forever after.
        for slot in 5..20 {
            env.begin_slot(slot);
            restored.begin_slot(slot);
            let choices = vec![Some(NetworkId(0)); 4];
            let mut out_b = vec![None; 4];
            env.feedback(slot, &choices, &mut out);
            restored.feedback(slot, &choices, &mut out_b);
            assert_eq!(restored.digests, env.digests, "diverged at slot {slot}");
        }

        // Mismatched neighbourhood counts are rejected.
        let mut other = wrap(6, GossipConfig::push(0.5));
        assert!(other.restore(&state).is_err());
        assert!(env.restore("{broken").is_err());
    }
}
