//! The heterogeneous duty-cycle layer: a wrapper [`Environment`] that gives
//! every session its own wake cadence, for the event-driven engine path
//! ([`FleetEngine::step_events`](smartexp3_engine::FleetEngine::step_events)).
//!
//! The paper's devices do not tick in lock-step — a phone re-evaluates its
//! network at block boundaries, on duty cycles, or when something changes
//! around it. [`DutyCycleEnvironment`] retrofits that onto any existing
//! world: it delegates all world logic (visibility, activity, feedback) to
//! the wrapped environment and overrides only the **wake protocol** —
//! session `i` wakes every `cadences[i % cadences.len()]` slots, staggered
//! by its index so cohorts spread over the cycle instead of thundering in
//! unison. Pushed environment events ([`Environment::next_env_event`])
//! forward to the wrapped world, so bandwidth bursts still materialise at
//! their exact slots even when no session is due.
//!
//! One caveat keeps this wrapper honest: `networks_changed` notifications
//! are **edge-triggered** — the wrapped world raises them entering a slot
//! and any `begin_slot` consumes them — so a session sleeping through a
//! mobility transition would miss its visibility notice. The
//! [`duty_cycle`](crate::duty_cycle) catalog world therefore builds on the
//! equal-share congestion areas (static visibility) and injects burstiness
//! through scheduled **bandwidth collapses** instead, which are level
//! changes every later wake observes correctly.

use smartexp3_core::{
    EnvStateError, Environment, NetworkId, Observation, PartitionExecutor, SamplerStrategy,
    SessionRange, SessionView, SharedFeedback, SlotIndex,
};

/// Shape of the [`duty_cycle`](crate::duty_cycle) world: the wake-cadence
/// mix, the bandwidth-burst schedule, and the policies' sampling strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DutyCycleConfig {
    /// Wake cadences assigned round-robin by session index: session `i`
    /// decides every `cadences[i % cadences.len()]` slots (each clamped to
    /// at least 1). The default mixes 1/2/4/8.
    pub cadences: Vec<usize>,
    /// Every `burst_period` slots each area's cellular network collapses to
    /// 2 Mbps, recovering half a period later — the bursty-wake stimulus.
    /// `0` disables bursts.
    pub burst_period: usize,
    /// Bursts are scheduled up to this slot (events are static, so the
    /// schedule must cover the intended run length).
    pub horizon_slots: usize,
    /// CDF-inversion strategy for every EXP3-family policy in the world.
    /// Sleep intervals are static-weight phases, so
    /// [`SamplerStrategy::Alias`] amortises its table freeze across them;
    /// the default stays [`SamplerStrategy::Linear`] so historical golden
    /// pins stand. (In [`dense_duty_cycle`](crate::dense_duty_cycle) the
    /// dense config's sampler governs instead — one world, one knob.)
    pub sampler: SamplerStrategy,
}

impl Default for DutyCycleConfig {
    fn default() -> Self {
        DutyCycleConfig {
            cadences: vec![1, 2, 4, 8],
            burst_period: 32,
            horizon_slots: 256,
            sampler: SamplerStrategy::Linear,
        }
    }
}

/// A duty-cycle wrapper around any [`Environment`]. See the
/// [module documentation](self).
pub struct DutyCycleEnvironment {
    inner: Box<dyn Environment>,
    /// Cadence assignment, round-robin by session index (never empty, every
    /// entry ≥ 1).
    cadences: Vec<usize>,
}

impl DutyCycleEnvironment {
    /// Wraps `inner` with per-session wake cadences assigned round-robin
    /// from `cadences`. An empty list or zero entries are sanitised to
    /// cadence 1 (slot-synchronous).
    #[must_use]
    pub fn new(inner: Box<dyn Environment>, cadences: Vec<usize>) -> Self {
        let mut cadences: Vec<usize> = cadences.into_iter().map(|c| c.max(1)).collect();
        if cadences.is_empty() {
            cadences.push(1);
        }
        DutyCycleEnvironment { inner, cadences }
    }

    /// The sanitised cadence assignment.
    #[must_use]
    pub fn cadences(&self) -> &[usize] {
        &self.cadences
    }

    /// Read access to the wrapped environment.
    #[must_use]
    pub fn inner(&self) -> &dyn Environment {
        self.inner.as_ref()
    }

    fn cadence_of(&self, session: usize) -> usize {
        self.cadences[session % self.cadences.len()]
    }
}

impl Environment for DutyCycleEnvironment {
    fn sessions(&self) -> usize {
        self.inner.sessions()
    }

    fn begin_slot(&mut self, slot: SlotIndex) {
        self.inner.begin_slot(slot);
    }

    fn begin_slot_partitioned(&mut self, slot: SlotIndex, executor: &dyn PartitionExecutor) {
        self.inner.begin_slot_partitioned(slot, executor);
    }

    fn session_view(&self, session: usize, slot: SlotIndex) -> SessionView<'_> {
        self.inner.session_view(session, slot)
    }

    fn feedback(
        &mut self,
        slot: SlotIndex,
        choices: &[Option<NetworkId>],
        out: &mut [Option<Observation>],
    ) {
        self.inner.feedback(slot, choices, out);
    }

    fn feedback_partitions(&self) -> Option<&[SessionRange]> {
        self.inner.feedback_partitions()
    }

    fn feedback_partitioned(
        &mut self,
        slot: SlotIndex,
        choices: &[Option<NetworkId>],
        out: &mut [Option<Observation>],
        executor: &dyn PartitionExecutor,
    ) {
        self.inner
            .feedback_partitioned(slot, choices, out, executor);
    }

    fn shares_feedback(&self) -> bool {
        self.inner.shares_feedback()
    }

    fn shared_feedback_into(&self, session: usize, out: &mut SharedFeedback) -> bool {
        self.inner.shared_feedback_into(session, out)
    }

    fn wants_top_choices(&self) -> bool {
        self.inner.wants_top_choices()
    }

    fn end_slot(
        &mut self,
        slot: SlotIndex,
        choices: &[Option<NetworkId>],
        tops: &[Option<(NetworkId, f64)>],
    ) {
        self.inner.end_slot(slot, choices, tops);
    }

    fn set_telemetry(&mut self, enabled: bool) -> bool {
        self.inner.set_telemetry(enabled)
    }

    fn telemetry(&self) -> Option<&smartexp3_core::SlotMetrics> {
        self.inner.telemetry()
    }

    fn wake_cadence(&self, session: usize) -> usize {
        self.cadence_of(session)
    }

    fn first_wake(&self, session: usize) -> SlotIndex {
        // Stagger first wakes across the cycle so same-cadence sessions
        // spread over it instead of forming one giant cohort.
        session % self.cadence_of(session)
    }

    fn next_env_event(&self, from: SlotIndex) -> Option<SlotIndex> {
        self.inner.next_env_event(from)
    }

    fn state(&self) -> Option<String> {
        // The cadence assignment is static configuration; the only dynamic
        // state is the wrapped world's.
        self.inner.state()
    }

    fn restore(&mut self, state: &str) -> Result<(), EnvStateError> {
        self.inner.restore(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Flat {
        sessions: usize,
        events: Vec<SlotIndex>,
    }

    impl Environment for Flat {
        fn sessions(&self) -> usize {
            self.sessions
        }
        fn begin_slot(&mut self, _slot: SlotIndex) {}
        fn session_view(&self, _session: usize, _slot: SlotIndex) -> SessionView<'_> {
            SessionView::active_static()
        }
        fn feedback(
            &mut self,
            slot: SlotIndex,
            choices: &[Option<NetworkId>],
            out: &mut [Option<Observation>],
        ) {
            for (index, choice) in choices.iter().enumerate() {
                out[index] = choice.map(|network| {
                    Observation::bandit(slot, network, 11.0, 0.5 + (index % 2) as f64 * 0.1)
                });
            }
        }
        fn next_env_event(&self, from: SlotIndex) -> Option<SlotIndex> {
            self.events.iter().copied().find(|&at| at >= from)
        }
    }

    #[test]
    fn cadences_are_assigned_round_robin_and_staggered() {
        let env = DutyCycleEnvironment::new(
            Box::new(Flat {
                sessions: 8,
                events: Vec::new(),
            }),
            vec![1, 4],
        );
        assert_eq!(env.wake_cadence(0), 1);
        assert_eq!(env.wake_cadence(1), 4);
        assert_eq!(env.first_wake(0), 0);
        assert_eq!(env.first_wake(1), 1);
        assert_eq!(env.first_wake(3), 3);
        assert_eq!(env.first_wake(5), 1);
        assert_eq!(env.next_wake(1, 1), 5);
    }

    #[test]
    fn zero_and_empty_cadences_are_sanitised() {
        let env = DutyCycleEnvironment::new(
            Box::new(Flat {
                sessions: 2,
                events: Vec::new(),
            }),
            vec![0, 3],
        );
        assert_eq!(env.cadences(), &[1, 3]);
        let env = DutyCycleEnvironment::new(
            Box::new(Flat {
                sessions: 2,
                events: Vec::new(),
            }),
            Vec::new(),
        );
        assert_eq!(env.cadences(), &[1]);
        assert_eq!(env.wake_cadence(17), 1);
    }

    #[test]
    fn env_events_forward_to_the_wrapped_world() {
        let env = DutyCycleEnvironment::new(
            Box::new(Flat {
                sessions: 2,
                events: vec![4, 9],
            }),
            vec![8],
        );
        assert_eq!(env.next_env_event(0), Some(4));
        assert_eq!(env.next_env_event(5), Some(9));
        assert_eq!(env.next_env_event(10), None);
    }
}
