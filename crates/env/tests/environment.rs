//! Environment-layer integration tests:
//!
//! * environment-driven runs are **bit-identical at 1/2/8 threads** (and
//!   across shard sizes);
//! * a mid-scenario snapshot/restore round-trips **bit-identically**,
//!   including pending `BandwidthEvent`s, mobility state and the
//!   environment RNG;
//! * a `CongestionEnvironment` driven through `FleetEngine::run_env` agrees
//!   **decision-for-decision** with the sequential `Simulation::run` driver
//!   when policies are deterministic (the two paths use different RNG
//!   models — one shared stream vs per-session streams — so equality over
//!   rng-free policies is exactly what proves the world logic matches).

use netsim::{
    figure1_networks, AreaId, BandwidthEvent, CongestionEnvironment, DeviceProfile, DeviceSetup,
    Simulation, SimulationConfig, Topology,
};
use rand::RngCore;
use smartexp3_core::{
    NetworkId, Observation, Policy, PolicyKind, PolicyStats, SamplerStrategy, SelectionKind,
    SlotIndex,
};
use smartexp3_engine::{FleetConfig, FleetEngine};
use smartexp3_env::{
    area_mobility, cooperative, dense_duty_cycle, dense_urban, duty_cycle, dynamic_bandwidth,
    equal_share, trace_driven, DenseUrbanConfig, DutyCycleConfig, GossipConfig, Scenario,
};

fn scenario_fingerprint(scenario: &Scenario) -> String {
    // Parallelism knobs are part of the snapshot but must never affect the
    // trajectory; normalise them so the fingerprint compares pure state. The
    // wake queue is stripped too: it records *scheduling* state (primed only
    // on the event-driven path), so sync-vs-event comparisons normalise it
    // away and compare session states, RNG streams and the clock — tests
    // that care about the queue itself compare `wake_queue` directly.
    let mut snapshot = scenario
        .fleet
        .snapshot()
        .expect("distributed fleets snapshot");
    snapshot.config.threads = None;
    snapshot.config.shard_size = 0;
    snapshot.config.partitioned_feedback = true;
    snapshot.config.fleet_lanes = true;
    snapshot.wake_queue = None;
    serde_json::to_string(&snapshot).expect("snapshots serialize")
}

fn build(threads: usize, world: &str) -> Scenario {
    build_config(
        FleetConfig::with_root_seed(42)
            .with_threads(threads)
            .with_shard_size(16),
        world,
    )
}

fn build_config(config: FleetConfig, world: &str) -> Scenario {
    match world {
        "equal_share" => equal_share(180, PolicyKind::SmartExp3, config).unwrap(),
        "dynamic_bandwidth" => {
            dynamic_bandwidth(180, PolicyKind::SmartExp3, config, 10, 25).unwrap()
        }
        "area_mobility" => area_mobility(120, PolicyKind::SmartExp3, config, 12, 24).unwrap(),
        "trace_driven" => trace_driven(150, PolicyKind::SmartExp3, config, 80).unwrap(),
        // Probabilistic push so the per-area gossip RNG streams are actually
        // consumed — thread identity and snapshot round-trips must cover them.
        "cooperative" => {
            cooperative(180, PolicyKind::SmartExp3, config, GossipConfig::push(0.4)).unwrap()
        }
        // Large-K world on the Fenwick sampler: covers the tree cache and the
        // sharded `begin_slot` refresh under the thread-identity and
        // snapshot-round-trip matrices.
        "dense_urban" => dense_urban(
            48,
            PolicyKind::Exp3,
            config,
            DenseUrbanConfig {
                networks_per_area: 96,
                devices_per_area: 16,
                ..DenseUrbanConfig::default()
            },
        )
        .unwrap(),
        other => panic!("unknown world {other}"),
    }
}

#[test]
fn every_world_is_bit_identical_at_any_thread_count() {
    for world in [
        "equal_share",
        "dynamic_bandwidth",
        "area_mobility",
        "trace_driven",
        "cooperative",
        "dense_urban",
    ] {
        let mut reference = build(1, world);
        assert!(
            reference.environment.feedback_partitions().is_some(),
            "{world} must advertise feedback partitions"
        );
        reference.run(40);
        let expected = scenario_fingerprint(&reference);
        for threads in [2, 8] {
            let mut scenario = build(threads, world);
            scenario.run(40);
            assert_eq!(
                scenario_fingerprint(&scenario),
                expected,
                "{world} diverged at {threads} threads"
            );
        }
        // The sequential feedback fallback (partitioning disabled) must
        // produce the same trajectory decision-for-decision.
        let mut sequential = build_config(
            FleetConfig::with_root_seed(42)
                .with_threads(2)
                .with_shard_size(16)
                .with_partitioned_feedback(false),
            world,
        );
        sequential.run(40);
        assert_eq!(
            scenario_fingerprint(&sequential),
            expected,
            "{world} diverged with partitioned feedback disabled"
        );
        // The boxed fallback (fleet lanes disabled) must also match: lane
        // routing is a storage decision, never a behavioural one.
        let mut boxed = build_config(
            FleetConfig::with_root_seed(42)
                .with_threads(2)
                .with_shard_size(16)
                .with_fleet_lanes(false),
            world,
        );
        boxed.run(40);
        assert_eq!(
            scenario_fingerprint(&boxed),
            expected,
            "{world} diverged with fleet lanes disabled"
        );
    }
}

#[test]
fn uniform_cadence_event_stepping_is_bit_identical_to_sync_on_every_world() {
    // The tentpole correctness anchor: none of the catalog worlds override
    // the wake protocol, so every session runs the default uniform cadence 1
    // and `step_events` must reproduce `step_env` bit-for-bit — same
    // choices, same RNG streams, same environment state — at 1/2/8 threads,
    // with partitioned feedback on or off and fleet lanes on or off.
    for world in [
        "equal_share",
        "dynamic_bandwidth",
        "area_mobility",
        "trace_driven",
        "cooperative",
        "dense_urban",
    ] {
        let mut reference = build(1, world);
        reference.run(40);
        let expected = scenario_fingerprint(&reference);
        let expected_env = reference.environment.state();
        let event_configs = [
            FleetConfig::with_root_seed(42)
                .with_threads(1)
                .with_shard_size(16),
            FleetConfig::with_root_seed(42)
                .with_threads(2)
                .with_shard_size(16),
            FleetConfig::with_root_seed(42)
                .with_threads(8)
                .with_shard_size(16),
            FleetConfig::with_root_seed(42)
                .with_threads(2)
                .with_shard_size(16)
                .with_partitioned_feedback(false),
            FleetConfig::with_root_seed(42)
                .with_threads(2)
                .with_shard_size(16)
                .with_fleet_lanes(false),
        ];
        for (index, config) in event_configs.into_iter().enumerate() {
            let mut scenario = build_config(config, world);
            scenario.fleet.run_until(scenario.environment.as_mut(), 40);
            assert_eq!(scenario.fleet.slot(), 40, "{world} clock, config {index}");
            assert_eq!(
                scenario_fingerprint(&scenario),
                expected,
                "{world} event stepping diverged from sync (config {index})"
            );
            assert_eq!(
                scenario.environment.state(),
                expected_env,
                "{world} environment state diverged under event stepping (config {index})"
            );
        }
    }
}

fn build_duty_cycle(config: FleetConfig) -> Scenario {
    duty_cycle(
        180,
        PolicyKind::SmartExp3,
        config,
        DutyCycleConfig {
            cadences: vec![1, 2, 4, 8],
            burst_period: 10,
            horizon_slots: 60,
            ..DutyCycleConfig::default()
        },
    )
    .unwrap()
}

#[test]
fn duty_cycle_trajectories_are_identical_at_any_thread_count() {
    let mut reference = build_duty_cycle(
        FleetConfig::with_root_seed(42)
            .with_threads(1)
            .with_shard_size(16),
    );
    reference
        .fleet
        .run_until(reference.environment.as_mut(), 40);
    let expected = scenario_fingerprint(&reference);
    let expected_queue = reference.fleet.snapshot().unwrap().wake_queue;
    let expected_env = reference.environment.state();
    assert!(expected_queue.is_some(), "event runs prime the queue");
    for config in [
        FleetConfig::with_root_seed(42)
            .with_threads(2)
            .with_shard_size(16),
        FleetConfig::with_root_seed(42)
            .with_threads(8)
            .with_shard_size(16),
        FleetConfig::with_root_seed(42)
            .with_threads(2)
            .with_shard_size(16)
            .with_partitioned_feedback(false),
        FleetConfig::with_root_seed(42)
            .with_threads(2)
            .with_shard_size(16)
            .with_fleet_lanes(false),
    ] {
        let mut scenario = build_duty_cycle(config);
        scenario.fleet.run_until(scenario.environment.as_mut(), 40);
        assert_eq!(scenario_fingerprint(&scenario), expected);
        assert_eq!(
            scenario.fleet.snapshot().unwrap().wake_queue,
            expected_queue
        );
        assert_eq!(scenario.environment.state(), expected_env);
    }
}

/// The alias-sampler worlds of the bit-identity matrix: the large-K dense
/// blocks, the bursty duty-cycle areas (sleep phases are exactly the
/// static-weight intervals the overlay must survive), and their composition.
fn build_alias_world(config: FleetConfig, world: &str) -> Scenario {
    match world {
        "dense_urban" => dense_urban(
            48,
            PolicyKind::Exp3,
            config,
            DenseUrbanConfig {
                networks_per_area: 96,
                devices_per_area: 16,
                sampler: SamplerStrategy::Alias,
            },
        )
        .unwrap(),
        "duty_cycle" => duty_cycle(
            120,
            PolicyKind::SmartExp3,
            config,
            DutyCycleConfig {
                cadences: vec![1, 2, 4, 8],
                burst_period: 10,
                horizon_slots: 60,
                sampler: SamplerStrategy::Alias,
            },
        )
        .unwrap(),
        "dense_duty_cycle" => dense_duty_cycle(
            32,
            PolicyKind::SmartExp3,
            config,
            DenseUrbanConfig {
                networks_per_area: 64,
                devices_per_area: 8,
                sampler: SamplerStrategy::Alias,
            },
            DutyCycleConfig {
                cadences: vec![2, 4, 8],
                burst_period: 10,
                horizon_slots: 60,
                ..DutyCycleConfig::default()
            },
        )
        .unwrap(),
        other => panic!("unknown alias world {other}"),
    }
}

#[test]
fn alias_sampler_trajectories_are_bit_identical_at_any_thread_count() {
    // The tentpole determinism anchor: overlay patches, dirty-mass rebuild
    // triggers and the sampler counters are all structural (driven by the
    // per-session update stream), so alias runs must be bit-identical at any
    // thread count, with partitioned feedback on or off and fleet lanes on
    // or off — on the sync path and the event-driven path alike.
    for world in ["dense_urban", "duty_cycle", "dense_duty_cycle"] {
        let mut reference = build_alias_world(
            FleetConfig::with_root_seed(42)
                .with_threads(1)
                .with_shard_size(16),
            world,
        );
        reference
            .fleet
            .run_until(reference.environment.as_mut(), 40);
        let expected = scenario_fingerprint(&reference);
        let expected_env = reference.environment.state();
        for (index, config) in [
            FleetConfig::with_root_seed(42)
                .with_threads(2)
                .with_shard_size(16),
            FleetConfig::with_root_seed(42)
                .with_threads(8)
                .with_shard_size(16),
            FleetConfig::with_root_seed(42)
                .with_threads(2)
                .with_shard_size(16)
                .with_partitioned_feedback(false),
            FleetConfig::with_root_seed(42)
                .with_threads(2)
                .with_shard_size(16)
                .with_fleet_lanes(false),
        ]
        .into_iter()
        .enumerate()
        {
            let mut scenario = build_alias_world(config, world);
            scenario.fleet.run_until(scenario.environment.as_mut(), 40);
            assert_eq!(
                scenario_fingerprint(&scenario),
                expected,
                "{world} alias run diverged (config {index})"
            );
            assert_eq!(
                scenario.environment.state(),
                expected_env,
                "{world} environment diverged under alias (config {index})"
            );
        }
        // The alias path genuinely ran: at least one table freeze per world.
        let metrics = reference.fleet.metrics();
        let stats = metrics
            .kind(PolicyKind::Exp3)
            .or_else(|| metrics.kind(PolicyKind::SmartExp3))
            .expect("alias worlds host an EXP3-family fleet");
        assert!(
            stats.policy.sampler_rebuilds > 0,
            "{world}: no alias rebuilds recorded"
        );
    }
}

#[test]
fn sampler_strategy_survives_snapshot_round_trips() {
    // All three strategies must round-trip through `FleetSnapshot` — the
    // serialized policy state carries the strategy and, for Alias, the
    // frozen table, overlay and counters — and continue bit-identically when
    // restored at a different thread count.
    for sampler in [
        SamplerStrategy::Linear,
        SamplerStrategy::Tree,
        SamplerStrategy::Alias,
    ] {
        let dense = DenseUrbanConfig {
            networks_per_area: 96,
            devices_per_area: 16,
            sampler,
        };
        let mut original = dense_urban(
            48,
            PolicyKind::Exp3,
            FleetConfig::with_root_seed(42)
                .with_threads(2)
                .with_shard_size(16),
            dense,
        )
        .unwrap();
        original.run(15);
        let snapshot = original
            .fleet
            .snapshot_env(original.environment.as_ref())
            .unwrap();
        original.run(25);
        let expected = scenario_fingerprint(&original);

        let mut resumed = dense_urban(
            48,
            PolicyKind::Exp3,
            FleetConfig::with_root_seed(42)
                .with_threads(8)
                .with_shard_size(16),
            dense,
        )
        .unwrap();
        resumed.fleet =
            FleetEngine::from_snapshot_env(snapshot, resumed.environment.as_mut()).unwrap();
        resumed.run(25);
        assert_eq!(
            scenario_fingerprint(&resumed),
            expected,
            "{sampler:?} diverged after snapshot/restore"
        );
    }
}

#[test]
fn mid_queue_snapshots_restore_the_event_schedule_bit_exactly() {
    // Checkpoint an event-driven run while the wake queue holds pending
    // cohorts from every cadence group (1/2/4/8) and two bandwidth events
    // are still unconsumed (bursts at 20/25 and 30/35), then prove the
    // restored pair — remaining queue, per-session RNG streams and env
    // event cursor — continues bit-exactly without re-priming.
    let build = |config: FleetConfig| {
        duty_cycle(
            180,
            PolicyKind::SmartExp3,
            config,
            DutyCycleConfig {
                cadences: vec![1, 2, 4, 8],
                burst_period: 20,
                horizon_slots: 60,
                ..DutyCycleConfig::default()
            },
        )
        .unwrap()
    };
    let mut original = build(
        FleetConfig::with_root_seed(42)
            .with_threads(2)
            .with_shard_size(16),
    );
    original.fleet.run_until(original.environment.as_mut(), 13);
    let snapshot = original
        .fleet
        .snapshot_env(original.environment.as_ref())
        .expect("duty-cycle worlds checkpoint");
    let queue = snapshot.wake_queue.as_ref().expect("queue primed");
    assert_eq!(queue.len(), 180, "every session has one pending wake");
    // The queue spans multiple timestamps: cadence-1 sessions are due at 13,
    // cadence-8 stragglers well past it.
    let wakes: Vec<usize> = queue.iter().map(|e| e.wake).collect();
    assert!(wakes.contains(&13));
    assert!(wakes.iter().any(|&w| w > 14));

    original.fleet.run_until(original.environment.as_mut(), 45);
    let expected = scenario_fingerprint(&original);
    let expected_queue = original.fleet.snapshot().unwrap().wake_queue;
    let expected_env = original.environment.state();

    // Restore at a different thread count; the recorded queue must be used
    // as-is (no re-priming), so the continuation is bit-identical.
    let mut resumed = build(
        FleetConfig::with_root_seed(42)
            .with_threads(8)
            .with_shard_size(16),
    );
    resumed.fleet = FleetEngine::from_snapshot_env(snapshot, resumed.environment.as_mut()).unwrap();
    resumed.fleet.run_until(resumed.environment.as_mut(), 45);
    assert_eq!(scenario_fingerprint(&resumed), expected);
    assert_eq!(resumed.fleet.snapshot().unwrap().wake_queue, expected_queue);
    assert_eq!(resumed.environment.state(), expected_env);
}

#[test]
fn mid_scenario_snapshots_restore_bit_identically() {
    // Snapshot each world mid-run — before the dynamic-bandwidth recovery
    // event fires, mid-walk for the mobility world, and with live gossip
    // digests plus partially consumed per-area gossip RNG streams for the
    // cooperative world — so pending events, mobility state and gossip state
    // must all survive the round-trip.
    for world in [
        "dynamic_bandwidth",
        "area_mobility",
        "trace_driven",
        "cooperative",
        "dense_urban",
    ] {
        let mut original = build(2, world);
        original.run(15);
        let snapshot = original
            .fleet
            .snapshot_env(original.environment.as_ref())
            .unwrap_or_else(|error| panic!("{world} snapshot failed: {error}"));
        original.run(25);
        let expected = scenario_fingerprint(&original);

        let mut resumed = build(8, world);
        resumed.fleet =
            FleetEngine::from_snapshot_env(snapshot.clone(), resumed.environment.as_mut()).unwrap();
        resumed.run(25);
        assert_eq!(
            scenario_fingerprint(&resumed),
            expected,
            "{world} diverged after snapshot/restore"
        );

        // Crossed restore: a snapshot taken with lanes on restores into a
        // boxed-only engine (and continues bit-identically) when the restored
        // config disables lanes — checkpoints are portable across the toggle.
        let mut crossed_snapshot = snapshot;
        crossed_snapshot.config.fleet_lanes = false;
        let mut crossed = build(2, world);
        crossed.fleet =
            FleetEngine::from_snapshot_env(crossed_snapshot, crossed.environment.as_mut()).unwrap();
        crossed.run(25);
        assert_eq!(
            scenario_fingerprint(&crossed),
            expected,
            "{world} diverged after a lanes-on -> lanes-off crossed restore"
        );
    }
}

/// Builds a congestion world with explicit per-area populations (an entry of
/// 0 is an area that exists in the topology but hosts nobody), noisy sharing
/// so every partition consumes RNG draws, and a mixed-policy fleet.
fn degenerate_world(populations: &[usize], config: FleetConfig) -> Scenario {
    use netsim::{NetworkSpec, ServiceArea};
    use smartexp3_core::PolicyFactory;

    let mut networks = Vec::new();
    let mut service_areas = Vec::new();
    let mut profiles = Vec::new();
    let mut fleet = FleetEngine::new(config);
    let mut next_session = 0u32;
    for (area, &population) in populations.iter().enumerate() {
        let base = (area * 3) as u32;
        let specs = vec![
            NetworkSpec::wifi(base, 4.0),
            NetworkSpec::wifi(base + 1, 7.0),
            NetworkSpec::cellular(base + 2, 22.0),
        ];
        let ids: Vec<NetworkId> = specs.iter().map(|n| n.id).collect();
        let rates: Vec<(NetworkId, f64)> = specs.iter().map(|n| (n.id, n.bandwidth_mbps)).collect();
        service_areas.push(ServiceArea {
            id: AreaId(area as u32),
            name: format!("area {area}"),
            networks: ids.clone(),
        });
        networks.extend(specs);
        let mut factory = PolicyFactory::new(rates).unwrap();
        fleet
            .add_fleet(&mut factory, PolicyKind::SmartExp3, population)
            .unwrap();
        for _ in 0..population {
            profiles.push(DeviceProfile::new(
                next_session,
                AreaId(area as u32),
                ids.clone(),
            ));
            next_session += 1;
        }
    }
    let seed = fleet.config().environment_seed();
    let environment = CongestionEnvironment::new(
        networks,
        netsim::Topology::new(service_areas),
        Vec::new(),
        profiles,
        SimulationConfig {
            sharing: netsim::SharingModel::testbed(),
            ..SimulationConfig::default()
        },
        seed,
    );
    Scenario {
        name: "degenerate",
        environment: Box::new(environment),
        fleet,
    }
}

#[test]
fn degenerate_partitions_match_the_sequential_fallback_decision_for_decision() {
    // Empty areas, single-session areas, a giant area, and uniform layouts:
    // whatever the partition shape, the sharded feedback phase at 8 threads
    // must equal the sequential fallback exactly. Noisy sharing makes every
    // graded network draw from its partition stream, so any routing error
    // (wrong stream, wrong order, leaked state) changes the trajectory.
    let layouts: [&[usize]; 4] = [
        &[1; 30],                       // thirty single-session areas
        &[60],                          // one giant area
        &[0, 7, 0, 1, 25, 0, 3, 1, 13], // churn: empty areas between odd sizes
        &[10, 10, 10, 10, 10, 10],      // uniform mid-size areas
    ];
    for layout in layouts {
        let mut partitioned = degenerate_world(
            layout,
            FleetConfig::with_root_seed(77)
                .with_threads(8)
                .with_shard_size(4),
        );
        let mut sequential = degenerate_world(
            layout,
            FleetConfig::with_root_seed(77)
                .with_threads(1)
                .with_partitioned_feedback(false),
        );
        partitioned.run(30);
        sequential.run(30);
        assert_eq!(
            scenario_fingerprint(&partitioned),
            scenario_fingerprint(&sequential),
            "layout {layout:?} diverged between sharded and sequential feedback"
        );
        // The environments' dynamic state (partition RNG positions, goodput
        // accounting) must agree bit-for-bit too.
        assert_eq!(
            partitioned.environment.state(),
            sequential.environment.state(),
            "layout {layout:?}: environment state diverged"
        );
    }
}

#[test]
fn mid_phase_snapshot_restores_partition_rng_streams_exactly() {
    // Snapshot an environment *between* the choose and feedback phases of a
    // slot (the environment does not mutate during choose, so its state at
    // that point is exactly what `state()` captures) and prove the restored
    // copy replays the rest of the slot — share noise and switching delays
    // drawn from every partition's own stream — bit-for-bit.
    let mut original = degenerate_world(
        &[5, 1, 9, 0, 4],
        FleetConfig::with_root_seed(11).with_threads(2),
    );
    original.run(12);

    // Slot 12: advance the environment, then checkpoint mid-slot, after the
    // fleet has chosen but before feedback runs.
    let slot = original.fleet.slot();
    let env = original.environment.as_mut();
    env.begin_slot(slot);
    let sessions = env.sessions();
    let state = env
        .state()
        .expect("recorder-less congestion worlds checkpoint");
    let choices: Vec<Option<NetworkId>> = (0..sessions)
        .map(|i| (i % 7 != 6).then(|| NetworkId(((i / 5) * 3 + i % 3) as u32)))
        .collect();
    let mut out_original: Vec<Option<smartexp3_core::Observation>> = vec![None; sessions];
    env.feedback(slot, &choices, &mut out_original);

    // Restore into a freshly built world and replay the same feedback.
    let mut resumed = degenerate_world(
        &[5, 1, 9, 0, 4],
        FleetConfig::with_root_seed(11).with_threads(8),
    );
    resumed
        .environment
        .restore(&state)
        .expect("mid-phase state restores");
    let mut out_resumed: Vec<Option<smartexp3_core::Observation>> = vec![None; sessions];
    resumed
        .environment
        .feedback(slot, &choices, &mut out_resumed);

    for (session, (a, b)) in out_original.iter().zip(&out_resumed).enumerate() {
        match (a, b) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert_eq!(
                    a.bit_rate_mbps.to_bits(),
                    b.bit_rate_mbps.to_bits(),
                    "session {session}: share bits diverged after mid-phase restore"
                );
                assert_eq!(
                    a.switching_delay_s.to_bits(),
                    b.switching_delay_s.to_bits(),
                    "session {session}: delay bits diverged after mid-phase restore"
                );
            }
            other => panic!("session {session}: presence diverged: {other:?}"),
        }
    }
    // And the partition streams keep agreeing on every later slot.
    for offset in 1..6 {
        let slot = slot + offset;
        original.environment.begin_slot(slot);
        resumed.environment.begin_slot(slot);
        original
            .environment
            .feedback(slot, &choices, &mut out_original);
        resumed
            .environment
            .feedback(slot, &choices, &mut out_resumed);
    }
    assert_eq!(
        original.environment.state(),
        resumed.environment.state(),
        "partition RNG streams drifted after the mid-phase restore"
    );
}

#[test]
fn snapshots_without_environment_state_are_rejected() {
    let mut scenario = build(1, "equal_share");
    scenario.run(2);
    let bare = scenario.fleet.snapshot().unwrap();
    let error = FleetEngine::from_snapshot_env(bare, scenario.environment.as_mut())
        .expect_err("restore must fail without environment state");
    assert!(error.to_string().contains("environment"));
}

/// A deterministic (rng-free) policy: explores its networks once in sorted
/// order, then sticks to the best empirical mean (ties to the lowest id).
struct DeterministicBest {
    networks: Vec<NetworkId>,
    totals: Vec<(NetworkId, f64, u64)>,
    cursor: usize,
    stats: PolicyStats,
    last: Option<NetworkId>,
}

impl DeterministicBest {
    fn new(mut networks: Vec<NetworkId>) -> Self {
        networks.sort();
        DeterministicBest {
            totals: networks.iter().map(|&n| (n, 0.0, 0)).collect(),
            networks,
            cursor: 0,
            stats: PolicyStats::default(),
            last: None,
        }
    }

    fn target(&self) -> NetworkId {
        if self.cursor < self.networks.len() {
            self.networks[self.cursor]
        } else {
            self.totals
                .iter()
                .map(|&(n, gain, slots)| (n, if slots == 0 { 0.0 } else { gain / slots as f64 }))
                .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
                .map(|(n, _)| n)
                .expect("at least one network")
        }
    }
}

impl Policy for DeterministicBest {
    fn name(&self) -> &'static str {
        "Deterministic Best"
    }

    fn choose(&mut self, _slot: SlotIndex, _rng: &mut dyn RngCore) -> NetworkId {
        let chosen = self.target();
        if self.cursor < self.networks.len() {
            self.cursor += 1;
            self.stats.explorations += 1;
        } else {
            self.stats.greedy_selections += 1;
        }
        if self.last.is_some_and(|previous| previous != chosen) {
            self.stats.switches += 1;
        }
        self.last = Some(chosen);
        self.stats.blocks += 1;
        chosen
    }

    fn observe(&mut self, observation: &Observation, _rng: &mut dyn RngCore) {
        if let Some(entry) = self
            .totals
            .iter_mut()
            .find(|(n, _, _)| *n == observation.network)
        {
            entry.1 += observation.scaled_gain;
            entry.2 += 1;
        }
    }

    fn on_networks_changed(&mut self, available: &[NetworkId], _rng: &mut dyn RngCore) {
        self.networks = available.to_vec();
        self.networks.sort();
        self.totals.retain(|(n, _, _)| self.networks.contains(n));
        for &network in &self.networks {
            if !self.totals.iter().any(|(n, _, _)| *n == network) {
                self.totals.push((network, 0.0, 0));
            }
        }
        self.totals.sort_by_key(|&(n, _, _)| n);
        self.cursor = 0;
    }

    fn probabilities(&self) -> Vec<(NetworkId, f64)> {
        let target = self.target();
        self.networks
            .iter()
            .map(|&n| (n, if n == target { 1.0 } else { 0.0 }))
            .collect()
    }

    fn last_selection_kind(&self) -> SelectionKind {
        SelectionKind::Greedy
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}

/// The shared scenario of the cross-check: the Figure-1 map with mobility,
/// activity windows and a bandwidth event.
fn cross_check_config() -> SimulationConfig {
    SimulationConfig {
        total_slots: 60,
        keep_selections: true,
        ..SimulationConfig::default()
    }
}

/// (id, start area, moves, active_from, active_until)
type CrossCheckDevice = (u32, AreaId, Vec<(usize, AreaId)>, usize, Option<usize>);

fn cross_check_devices() -> Vec<CrossCheckDevice> {
    vec![
        (
            0,
            AreaId(0),
            vec![(20, AreaId(1)), (40, AreaId(2))],
            0,
            None,
        ),
        (1, AreaId(0), vec![], 0, None),
        (2, AreaId(1), vec![(30, AreaId(0))], 0, None),
        (3, AreaId(1), vec![], 10, Some(50)),
        (4, AreaId(2), vec![], 0, None),
        (5, AreaId(2), vec![(25, AreaId(0))], 5, None),
    ]
}

fn deterministic_policy(topology: &Topology, area: AreaId) -> DeterministicBest {
    DeterministicBest::new(topology.networks_in(area))
}

#[test]
fn run_env_matches_the_sequential_driver_decision_for_decision() {
    let topology = Topology::figure1();
    let event = BandwidthEvent::new(35, NetworkId(2), 1.0);

    // Path A: the sequential Simulation driver (one shared RNG).
    let mut simulation =
        Simulation::new(figure1_networks(), topology.clone(), cross_check_config());
    for (id, area, moves, from, until) in cross_check_devices() {
        let mut setup = DeviceSetup::new(id, Box::new(deterministic_policy(&topology, area)))
            .in_area(area)
            .active_between(from, until);
        for (slot, destination) in moves {
            setup = setup.moving_to(slot, destination);
        }
        simulation.add_device(setup);
    }
    simulation.add_bandwidth_event(event);
    let sequential = simulation.run(123);

    // Path B: the same world through FleetEngine::run_env (per-session RNG
    // streams, sharded stepping).
    let mut profiles = Vec::new();
    let mut fleet = FleetEngine::new(
        FleetConfig::with_root_seed(999)
            .with_threads(2)
            .with_shard_size(2),
    );
    for (id, area, moves, from, until) in cross_check_devices() {
        let mut profile =
            DeviceProfile::new(id, area, topology.networks_in(area)).active_between(from, until);
        for (slot, destination) in moves {
            profile = profile.moving_to(slot, destination);
        }
        profiles.push(profile);
        fleet.add_session(
            PolicyKind::Greedy,
            Box::new(deterministic_policy(&topology, area)),
        );
    }
    let mut env = CongestionEnvironment::new(
        figure1_networks(),
        topology,
        vec![event],
        profiles,
        cross_check_config(),
        7,
    )
    .with_recorder();
    fleet.run_env(&mut env, cross_check_config().total_slots);
    let outcomes = (0..fleet.len())
        .map(|index| {
            let policy = fleet.policy(index).expect("session exists");
            env.outcome(index, policy.name().to_string(), policy.stats().resets)
        })
        .collect();
    let engine = env.into_result(outcomes).expect("recorder attached");

    // Decisions, observed rates, per-policy top choices, equilibrium metrics
    // and environment-observed switches must agree exactly. (Downloads are
    // excluded: switching-delay *samples* come from differently seeded RNGs
    // and never influence decisions.)
    assert_eq!(engine.slots, sequential.slots);
    assert_eq!(engine.selections, sequential.selections);
    assert_eq!(engine.distance_to_nash, sequential.distance_to_nash);
    assert_eq!(engine.stable_slot, sequential.stable_slot);
    assert_eq!(
        engine.fraction_time_at_nash,
        sequential.fraction_time_at_nash
    );
    assert_eq!(engine.switch_counts(), sequential.switch_counts());
    assert_eq!(
        engine
            .devices
            .iter()
            .map(|d| d.active_slots)
            .collect::<Vec<_>>(),
        sequential
            .devices
            .iter()
            .map(|d| d.active_slots)
            .collect::<Vec<_>>()
    );
}
