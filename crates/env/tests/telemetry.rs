//! Streaming-telemetry integration tests:
//!
//! * the per-slot metric series is **value-identical at 1/2/8 threads** and
//!   with the partitioned feedback phase on or off, for every world in the
//!   catalog — the partition accumulators merge in canonical partition
//!   order, so the f64 sums never depend on scheduling;
//! * the same holds for a trace world split into many small phase groups,
//!   where the merge order actually has something to get wrong;
//! * telemetry is **pure observation** — enabling it changes neither the
//!   fleet trajectory nor the environment state;
//! * every record's envelope (slot, active population, phase timing) is
//!   well-formed.

use smartexp3_core::{Environment, PolicyFactory, PolicyKind};
use smartexp3_engine::{FleetConfig, FleetEngine};
use smartexp3_env::{
    area_mobility, cooperative, dynamic_bandwidth, equal_share, trace_driven, GossipConfig,
    Scenario, TraceEnvironment,
};
use smartexp3_telemetry::{RingSink, SlotMetrics};
use tracegen::paper_trace_pair;

const WORLDS: [&str; 5] = [
    "equal_share",
    "dynamic_bandwidth",
    "area_mobility",
    "trace_driven",
    "cooperative",
];

const SLOTS: usize = 40;

fn build_config(config: FleetConfig, world: &str) -> Scenario {
    match world {
        "equal_share" => equal_share(180, PolicyKind::SmartExp3, config).unwrap(),
        "dynamic_bandwidth" => {
            dynamic_bandwidth(180, PolicyKind::SmartExp3, config, 10, 25).unwrap()
        }
        "area_mobility" => area_mobility(120, PolicyKind::SmartExp3, config, 12, 24).unwrap(),
        "trace_driven" => trace_driven(150, PolicyKind::SmartExp3, config, 80).unwrap(),
        "cooperative" => {
            cooperative(180, PolicyKind::SmartExp3, config, GossipConfig::push(0.4)).unwrap()
        }
        other => panic!("unknown world {other}"),
    }
}

fn config(threads: usize) -> FleetConfig {
    FleetConfig::with_root_seed(42)
        .with_threads(threads)
        .with_shard_size(16)
}

/// Runs `scenario` with telemetry streaming into a ring and returns the
/// full per-slot metric series.
fn metric_series(scenario: &mut Scenario, slots: usize) -> Vec<SlotMetrics> {
    assert!(
        scenario.enable_telemetry(),
        "{} must support streaming telemetry",
        scenario.name
    );
    let mut sink = RingSink::new(slots);
    scenario.run_streaming(slots, &mut sink);
    sink.records().map(|r| r.metrics.clone()).collect()
}

#[test]
fn metric_series_is_identical_across_threads_and_partitioning() {
    for world in WORLDS {
        let mut reference = build_config(config(1), world);
        let expected = metric_series(&mut reference, SLOTS);
        assert_eq!(expected.len(), SLOTS, "{world} dropped slots");
        assert!(
            expected.iter().any(|m| m.sessions > 0),
            "{world} never graded a session"
        );

        for threads in [2, 8] {
            let mut scenario = build_config(config(threads), world);
            assert_eq!(
                metric_series(&mut scenario, SLOTS),
                expected,
                "{world} telemetry diverged at {threads} threads"
            );
        }
        let mut sequential = build_config(config(2).with_partitioned_feedback(false), world);
        assert_eq!(
            metric_series(&mut sequential, SLOTS),
            expected,
            "{world} telemetry diverged with partitioned feedback disabled"
        );
    }
}

/// The catalog's trace world fits one phase group at test sizes; force many
/// small groups so the canonical merge order is actually exercised — with
/// 16-session groups over 100 sessions there are 7 partitions whose f64
/// partial sums must fold left-to-right regardless of which worker finished
/// first.
#[test]
fn many_partition_trace_merge_is_schedule_independent() {
    let series_at = |threads: usize| -> Vec<SlotMetrics> {
        let fleet_config = config(threads);
        let pairs: Vec<_> = (1..=4)
            .map(|index| paper_trace_pair(index, 60, 42 ^ index as u64))
            .collect();
        let mut environment = TraceEnvironment::new(pairs, 100, fleet_config.environment_seed())
            .with_partition_sessions(16);
        assert!(environment.set_telemetry(true));
        let mut fleet = FleetEngine::new(fleet_config);
        let mut factory =
            PolicyFactory::new(vec![(tracegen::WIFI, 1.0), (tracegen::CELLULAR, 1.0)]).unwrap();
        fleet
            .add_fleet(&mut factory, PolicyKind::SmartExp3, 100)
            .unwrap();
        let mut sink = RingSink::new(SLOTS);
        fleet.run_env_with_sink(&mut environment, SLOTS, &mut sink);
        sink.records().map(|r| r.metrics.clone()).collect()
    };
    let expected = series_at(1);
    assert_eq!(expected.len(), SLOTS);
    for threads in [2, 8] {
        assert_eq!(
            series_at(threads),
            expected,
            "trace merge order leaked at {threads} threads"
        );
    }
}

/// Parallelism knobs are part of the snapshot but never affect the
/// trajectory; normalise them so the fingerprint compares pure state.
fn scenario_fingerprint(scenario: &Scenario) -> String {
    let mut snapshot = scenario
        .fleet
        .snapshot()
        .expect("distributed fleets snapshot");
    snapshot.config.threads = None;
    snapshot.config.shard_size = 0;
    snapshot.config.partitioned_feedback = true;
    serde_json::to_string(&snapshot).expect("snapshots serialize")
}

#[test]
fn telemetry_is_pure_observation() {
    for world in WORLDS {
        let mut plain = build_config(config(2), world);
        plain.run(SLOTS);

        let mut observed = build_config(config(2), world);
        let _ = metric_series(&mut observed, SLOTS);

        assert_eq!(
            scenario_fingerprint(&observed),
            scenario_fingerprint(&plain),
            "{world}: enabling telemetry changed the fleet trajectory"
        );
        assert_eq!(
            observed.environment.state(),
            plain.environment.state(),
            "{world}: enabling telemetry changed the environment state"
        );
    }
}

#[test]
fn record_envelopes_are_well_formed() {
    let mut scenario = build_config(config(2), "equal_share");
    assert!(scenario.enable_telemetry());
    let mut sink = RingSink::new(SLOTS);
    scenario.run_streaming(SLOTS, &mut sink);
    for (index, record) in sink.records().enumerate() {
        assert_eq!(record.slot, index, "slots must be contiguous");
        assert_eq!(record.active as usize, scenario.sessions());
        assert_eq!(record.metrics.sessions, record.active);
        let timing = record.timing;
        for phase in [
            timing.begin_slot_s,
            timing.choose_s,
            timing.feedback_s,
            timing.observe_s,
        ] {
            assert!(phase.is_finite() && phase >= 0.0, "bad phase time {phase}");
        }
        let jain = record.metrics.jain();
        assert!((0.0..=1.0).contains(&jain), "jain out of range: {jain}");
        assert!(record.metrics.distance_mean() >= 0.0);
    }
}
