//! Bit-rate traces: one measured (or synthesised) bit rate per 15-second slot
//! for a single network.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error returned when parsing a trace from CSV text fails.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid trace at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

/// A per-slot bit-rate trace of one network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Name of the network the trace was collected from (e.g. `"public WiFi"`).
    pub name: String,
    /// Slot duration in seconds (the paper samples every 15 s).
    pub slot_duration_s: f64,
    /// Observed bit rate per slot, in Mbps.
    pub rates_mbps: Vec<f64>,
}

impl Trace {
    /// Creates a trace, clamping negative or non-finite rates to 0.
    #[must_use]
    pub fn new(name: impl Into<String>, slot_duration_s: f64, rates_mbps: Vec<f64>) -> Self {
        Trace {
            name: name.into(),
            slot_duration_s,
            rates_mbps: rates_mbps
                .into_iter()
                .map(|r| if r.is_finite() { r.max(0.0) } else { 0.0 })
                .collect(),
        }
    }

    /// Number of slots covered by the trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rates_mbps.len()
    }

    /// `true` if the trace has no slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rates_mbps.is_empty()
    }

    /// The bit rate at `slot`, repeating the last value if the trace is
    /// shorter than the requested slot (and 0 for an empty trace).
    #[must_use]
    pub fn rate_at(&self, slot: usize) -> f64 {
        match self.rates_mbps.get(slot) {
            Some(&rate) => rate,
            None => self.rates_mbps.last().copied().unwrap_or(0.0),
        }
    }

    /// Mean bit rate over the trace.
    #[must_use]
    pub fn mean_rate(&self) -> f64 {
        if self.rates_mbps.is_empty() {
            0.0
        } else {
            self.rates_mbps.iter().sum::<f64>() / self.rates_mbps.len() as f64
        }
    }

    /// Largest bit rate in the trace.
    #[must_use]
    pub fn peak_rate(&self) -> f64 {
        self.rates_mbps.iter().copied().fold(0.0, f64::max)
    }

    /// Total volume that could be downloaded by following this trace exactly,
    /// in megabytes.
    #[must_use]
    pub fn total_megabytes(&self) -> f64 {
        self.rates_mbps.iter().sum::<f64>() * self.slot_duration_s / 8.0
    }

    /// Serialises the trace as CSV: a header line followed by
    /// `slot,rate_mbps` rows.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("slot,rate_mbps\n");
        for (slot, rate) in self.rates_mbps.iter().enumerate() {
            out.push_str(&format!("{slot},{rate}\n"));
        }
        out
    }

    /// Parses a trace from the CSV format produced by [`Trace::to_csv`].
    ///
    /// # Errors
    ///
    /// Returns a [`ParseTraceError`] describing the first malformed line.
    pub fn from_csv(
        name: impl Into<String>,
        slot_duration_s: f64,
        csv: &str,
    ) -> Result<Self, ParseTraceError> {
        let mut rates = Vec::new();
        for (index, line) in csv.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || (index == 0 && line.starts_with("slot")) {
                continue;
            }
            let rate_field = line.split(',').nth(1).ok_or_else(|| ParseTraceError {
                line: index + 1,
                message: "expected `slot,rate_mbps`".to_string(),
            })?;
            let rate: f64 = rate_field.trim().parse().map_err(|_| ParseTraceError {
                line: index + 1,
                message: format!("`{rate_field}` is not a number"),
            })?;
            rates.push(rate);
        }
        Ok(Trace::new(name, slot_duration_s, rates))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statistics() {
        let trace = Trace::new("wifi", 15.0, vec![2.0, 4.0, 6.0]);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.mean_rate(), 4.0);
        assert_eq!(trace.peak_rate(), 6.0);
        assert_eq!(trace.rate_at(1), 4.0);
        assert_eq!(trace.rate_at(99), 6.0);
        assert!((trace.total_megabytes() - 12.0 * 15.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_rates_are_sanitised() {
        let trace = Trace::new("x", 15.0, vec![-1.0, f64::NAN, 3.0]);
        assert_eq!(trace.rates_mbps, vec![0.0, 0.0, 3.0]);
    }

    #[test]
    fn csv_round_trip() {
        let trace = Trace::new("cell", 15.0, vec![1.5, 2.25, 0.0]);
        let csv = trace.to_csv();
        let parsed = Trace::from_csv("cell", 15.0, &csv).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn malformed_csv_is_rejected_with_line_number() {
        let err = Trace::from_csv("x", 15.0, "slot,rate_mbps\n0,1.0\n1,abc\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.to_string().contains("abc"));
        let err = Trace::from_csv("x", 15.0, "slot,rate_mbps\njustonefield\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn empty_trace_is_harmless() {
        let trace = Trace::new("x", 15.0, vec![]);
        assert!(trace.is_empty());
        assert_eq!(trace.rate_at(0), 0.0);
        assert_eq!(trace.mean_rate(), 0.0);
    }
}
